#include "rtree/node.h"

#include <cstring>

#include "common/logging.h"

namespace pictdb::rtree {

namespace {

// Page layout: { uint16 level; uint16 count; 4B pad }, then `count`
// packed entries of { double x_lo, y_lo, x_hi, y_hi; uint64 payload }.
constexpr size_t kNodeHeaderSize = 8;
constexpr size_t kEntrySize = 4 * sizeof(double) + sizeof(uint64_t);

}  // namespace

size_t NodePageCapacity(uint32_t page_size) {
  return (page_size - kNodeHeaderSize) / kEntrySize;
}

Node ReadNode(const char* page, uint32_t page_size) {
  Node node;
  uint16_t count;
  std::memcpy(&node.level, page, 2);
  std::memcpy(&count, page + 2, 2);
  PICTDB_CHECK(count <= NodePageCapacity(page_size))
      << "corrupt R-tree node: count " << count;
  node.entries.resize(count);
  const char* p = page + kNodeHeaderSize;
  for (uint16_t i = 0; i < count; ++i, p += kEntrySize) {
    Entry& e = node.entries[i];
    std::memcpy(&e.mbr.lo.x, p, 8);
    std::memcpy(&e.mbr.lo.y, p + 8, 8);
    std::memcpy(&e.mbr.hi.x, p + 16, 8);
    std::memcpy(&e.mbr.hi.y, p + 24, 8);
    std::memcpy(&e.payload, p + 32, 8);
  }
  return node;
}

void WriteNode(const Node& node, char* page, uint32_t page_size) {
  PICTDB_CHECK(node.entries.size() <= NodePageCapacity(page_size))
      << "R-tree node overflow: " << node.entries.size() << " entries";
  const uint16_t count = static_cast<uint16_t>(node.entries.size());
  std::memcpy(page, &node.level, 2);
  std::memcpy(page + 2, &count, 2);
  std::memset(page + 4, 0, 4);
  char* p = page + kNodeHeaderSize;
  for (const Entry& e : node.entries) {
    std::memcpy(p, &e.mbr.lo.x, 8);
    std::memcpy(p + 8, &e.mbr.lo.y, 8);
    std::memcpy(p + 16, &e.mbr.hi.x, 8);
    std::memcpy(p + 24, &e.mbr.hi.y, 8);
    std::memcpy(p + 32, &e.payload, 8);
    p += kEntrySize;
  }
}

}  // namespace pictdb::rtree
