#include "rtree/node.h"

#include <atomic>
#include <cstring>

#include "common/logging.h"
#include "simd/dispatch.h"

namespace pictdb::rtree {

namespace {

// Page layout: { uint16 level; uint16 count; 4B pad }, then `count`
// packed entries of { double x_lo, y_lo, x_hi, y_hi; uint64 payload }.
constexpr size_t kNodeHeaderSize = 8;
constexpr size_t kEntrySize = 4 * sizeof(double) + sizeof(uint64_t);

std::atomic<uint64_t> g_mbr_computes{0};

}  // namespace

geom::Rect Node::Mbr() const {
  g_mbr_computes.fetch_add(1, std::memory_order_relaxed);
  geom::Rect r;
  for (const Entry& e : entries) r.ExpandToInclude(e.mbr);
  return r;
}

geom::Rect SoaNode::Mbr() const {
  g_mbr_computes.fetch_add(1, std::memory_order_relaxed);
  geom::Rect r;
  for (size_t i = 0; i < count(); ++i) r.ExpandToInclude(RectAt(i));
  return r;
}

uint64_t MbrComputeCountForTesting() {
  return g_mbr_computes.load(std::memory_order_relaxed);
}

size_t NodePageCapacity(uint32_t page_size) {
  return (page_size - kNodeHeaderSize) / kEntrySize;
}

Node ReadNode(const char* page, uint32_t page_size) {
  Node node;
  uint16_t count;
  std::memcpy(&node.level, page, 2);
  std::memcpy(&count, page + 2, 2);
  PICTDB_CHECK(count <= NodePageCapacity(page_size))
      << "corrupt R-tree node: count " << count;
  node.entries.resize(count);
  const char* p = page + kNodeHeaderSize;
  for (uint16_t i = 0; i < count; ++i, p += kEntrySize) {
    Entry& e = node.entries[i];
    std::memcpy(&e.mbr.lo.x, p, 8);
    std::memcpy(&e.mbr.lo.y, p + 8, 8);
    std::memcpy(&e.mbr.hi.x, p + 16, 8);
    std::memcpy(&e.mbr.hi.y, p + 24, 8);
    std::memcpy(&e.payload, p + 32, 8);
  }
  return node;
}

void ReadNodeSoa(const char* page, uint32_t page_size, SoaNode* out) {
  uint16_t count;
  std::memcpy(&out->level, page, 2);
  std::memcpy(&count, page + 2, 2);
  PICTDB_CHECK(count <= NodePageCapacity(page_size))
      << "corrupt R-tree node: count " << count;
  out->xmin.resize(count);
  out->ymin.resize(count);
  out->xmax.resize(count);
  out->ymax.resize(count);
  out->payloads.resize(count);
  // The AoS->SoA shuffle is the dominant per-node decode cost, so it is
  // dispatched with the rect kernels (pure data movement — every family
  // is bit-preserving, see simd/rect_kernels.h).
  simd::ActiveKernels().transpose(page + kNodeHeaderSize, count,
                                  out->xmin.data(), out->ymin.data(),
                                  out->xmax.data(), out->ymax.data(),
                                  out->payloads.data());
}

void WriteNode(const Node& node, char* page, uint32_t page_size) {
  PICTDB_CHECK(node.entries.size() <= NodePageCapacity(page_size))
      << "R-tree node overflow: " << node.entries.size() << " entries";
  const uint16_t count = static_cast<uint16_t>(node.entries.size());
  std::memcpy(page, &node.level, 2);
  std::memcpy(page + 2, &count, 2);
  std::memset(page + 4, 0, 4);
  char* p = page + kNodeHeaderSize;
  for (const Entry& e : node.entries) {
    std::memcpy(p, &e.mbr.lo.x, 8);
    std::memcpy(p + 8, &e.mbr.lo.y, 8);
    std::memcpy(p + 16, &e.mbr.hi.x, 8);
    std::memcpy(p + 24, &e.mbr.hi.y, 8);
    std::memcpy(p + 32, &e.payload, 8);
    p += kEntrySize;
  }
}

}  // namespace pictdb::rtree
