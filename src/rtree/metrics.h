#ifndef PICTDB_RTREE_METRICS_H_
#define PICTDB_RTREE_METRICS_H_

#include <cstdint>
#include <string>

#include "common/status_or.h"
#include "rtree/rtree.h"

namespace pictdb::rtree {

/// The quality measures reported in the paper's Table 1, computed over a
/// built tree. Coverage and overlap are defined on *leaf node* MBRs:
/// "Coverage is the total area of all the MBRs of all leaf R-tree nodes,
/// and overlap is the total area contained within two or more leaf MBRs."
struct TreeQuality {
  double coverage = 0.0;  // Σ area(leaf node MBR)       (paper's C)
  double overlap = 0.0;   // area covered by >= 2 leaves (paper's O)
  uint32_t depth = 0;     // edges from root to leaf     (paper's D)
  uint64_t nodes = 0;     // total nodes                 (paper's N)
  uint64_t size = 0;      // leaf entries                (paper's J)
};

/// Measure a tree. Exact computation (slab sweep for overlap).
StatusOr<TreeQuality> MeasureTree(const RTree& tree);

/// Average nodes visited by running the given point queries — the
/// paper's A column.
StatusOr<double> AverageNodesVisited(const RTree& tree,
                                     const std::vector<geom::Point>& queries);

/// One-line summary for logs: "C=38271 O=994 D=3 N=35 J=100".
std::string ToString(const TreeQuality& q);

}  // namespace pictdb::rtree

#endif  // PICTDB_RTREE_METRICS_H_
