#ifndef PICTDB_RTREE_KNN_H_
#define PICTDB_RTREE_KNN_H_

#include <vector>

#include "common/status_or.h"
#include "geom/geometry.h"
#include "rtree/rtree.h"

namespace pictdb::rtree {

/// A k-nearest-neighbour result: leaf entry plus its MBR distance to the
/// query point.
struct Neighbor {
  LeafHit hit;
  double distance = 0.0;
};

/// Branch-and-bound nearest-neighbour search over the R-tree — the
/// natural extension of the paper's direct search, published by the same
/// first author a decade later (Roussopoulos, Kelley & Vincent 1995).
/// Implemented as a best-first traversal with a priority queue ordered
/// by MINDIST: nodes are expanded in increasing distance order and the
/// search stops once the k-th best candidate is closer than the nearest
/// unexpanded node. Distances are to leaf MBRs (exact for points, a
/// lower bound for extended objects; callers refine if needed).
StatusOr<std::vector<Neighbor>> SearchNearest(
    const RTree& tree, const geom::Point& query, size_t k,
    SearchStats* stats = nullptr, const SearchOptions& options = {});

/// Fetches the exact geometry behind a leaf entry (e.g. from the
/// relation tuple the Rid points to).
using GeometryResolver =
    std::function<StatusOr<geom::Geometry>(const storage::Rid&)>;

/// Exact k-NN over extended objects: best-first on MBR MINDIST with
/// lazy refinement — candidate entries are re-queued under their exact
/// distance (computed via `resolver` + geom::DistanceTo) and only
/// finalized when they pop ahead of every unexpanded node and
/// unrefined candidate. Resolves only the geometries it must.
StatusOr<std::vector<Neighbor>> SearchNearestExact(
    const RTree& tree, const geom::Point& query, size_t k,
    const GeometryResolver& resolver, SearchStats* stats = nullptr,
    const SearchOptions& options = {});

}  // namespace pictdb::rtree

#endif  // PICTDB_RTREE_KNN_H_
