#include "wal/record.h"

#include <algorithm>
#include <cstring>

namespace pictdb::wal {
namespace {

// Fixed little-endian-layout sizes of each payload kind (see Encode).
constexpr size_t kRectBytes = 4 * sizeof(double);
constexpr size_t kHeaderBytes = 1 + sizeof(uint64_t);  // type + lsn
constexpr size_t kEntryBytes = kRectBytes + sizeof(uint64_t);
constexpr size_t kInsertDeleteBytes =
    kHeaderBytes + kRectBytes + sizeof(uint64_t);
constexpr size_t kUpdateBytes = kHeaderBytes + 2 * (kRectBytes + 8);
constexpr size_t kSnapshotBeginBytes = kHeaderBytes + 8 + 2 + 2 + 1 + 1;

void AppendRaw(std::string* out, const void* p, size_t n) {
  out->append(reinterpret_cast<const char*>(p), n);
}

template <typename T>
void AppendPod(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(T));
}

void AppendRect(std::string* out, const geom::Rect& r) {
  AppendPod(out, r.lo.x);
  AppendPod(out, r.lo.y);
  AppendPod(out, r.hi.x);
  AppendPod(out, r.hi.y);
}

/// Cursor over a payload; Read* return false past the end.
struct Reader {
  const char* p;
  size_t left;

  template <typename T>
  bool ReadPod(T* v) {
    if (left < sizeof(T)) return false;
    std::memcpy(v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return true;
  }

  bool ReadRect(geom::Rect* r) {
    return ReadPod(&r->lo.x) && ReadPod(&r->lo.y) && ReadPod(&r->hi.x) &&
           ReadPod(&r->hi.y);
  }
};

}  // namespace

std::string EncodeRecordPayload(const Record& record) {
  std::string out;
  out.push_back(static_cast<char>(record.type));
  AppendPod(&out, record.lsn);
  switch (record.type) {
    case RecordType::kInsert:
    case RecordType::kDelete:
      AppendRect(&out, record.a);
      AppendPod(&out, record.rid_a);
      break;
    case RecordType::kUpdate:
      AppendRect(&out, record.a);
      AppendPod(&out, record.rid_a);
      AppendRect(&out, record.b);
      AppendPod(&out, record.rid_b);
      break;
    case RecordType::kSnapshotBegin:
      AppendPod(&out, record.count);
      AppendPod(&out, record.tree_max_entries);
      AppendPod(&out, record.tree_min_entries);
      AppendPod(&out, record.tree_split);
      AppendPod(&out, record.tree_forced_reinsert);
      break;
    case RecordType::kSnapshotChunk: {
      AppendPod(&out, static_cast<uint32_t>(record.entries.size()));
      for (const rtree::Entry& e : record.entries) {
        AppendRect(&out, e.mbr);
        AppendPod(&out, e.payload);
      }
      break;
    }
    case RecordType::kSnapshotEnd:
    case RecordType::kCleanShutdown:
      break;
    case RecordType::kPadding:
      out.append(record.count, '\0');
      break;
  }
  return out;
}

StatusOr<Record> DecodeRecordPayload(std::string_view payload) {
  if (payload.size() < kHeaderBytes) {
    return Status::Corruption("WAL record payload shorter than header");
  }
  Record rec;
  const uint8_t type_byte = static_cast<uint8_t>(payload[0]);
  if (type_byte < static_cast<uint8_t>(RecordType::kInsert) ||
      type_byte > static_cast<uint8_t>(RecordType::kPadding)) {
    return Status::Corruption("unknown WAL record type " +
                              std::to_string(type_byte));
  }
  rec.type = static_cast<RecordType>(type_byte);
  Reader r{payload.data() + 1, payload.size() - 1};
  if (!r.ReadPod(&rec.lsn)) {
    return Status::Corruption("truncated WAL record lsn");
  }

  auto expect_exact = [&payload](size_t want) -> Status {
    if (payload.size() != want) {
      return Status::Corruption("WAL record length mismatch: got " +
                                std::to_string(payload.size()) + ", want " +
                                std::to_string(want));
    }
    return Status::OK();
  };

  switch (rec.type) {
    case RecordType::kInsert:
    case RecordType::kDelete: {
      if (Status st = expect_exact(kInsertDeleteBytes); !st.ok()) return st;
      r.ReadRect(&rec.a);
      r.ReadPod(&rec.rid_a);
      break;
    }
    case RecordType::kUpdate: {
      if (Status st = expect_exact(kUpdateBytes); !st.ok()) return st;
      r.ReadRect(&rec.a);
      r.ReadPod(&rec.rid_a);
      r.ReadRect(&rec.b);
      r.ReadPod(&rec.rid_b);
      break;
    }
    case RecordType::kSnapshotBegin: {
      if (Status st = expect_exact(kSnapshotBeginBytes); !st.ok()) return st;
      r.ReadPod(&rec.count);
      r.ReadPod(&rec.tree_max_entries);
      r.ReadPod(&rec.tree_min_entries);
      r.ReadPod(&rec.tree_split);
      r.ReadPod(&rec.tree_forced_reinsert);
      break;
    }
    case RecordType::kSnapshotChunk: {
      uint32_t n = 0;
      if (!r.ReadPod(&n)) {
        return Status::Corruption("truncated WAL snapshot chunk count");
      }
      if (Status st = expect_exact(kHeaderBytes + 4 + n * kEntryBytes);
          !st.ok()) {
        return st;
      }
      rec.entries.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        rtree::Entry e;
        r.ReadRect(&e.mbr);
        r.ReadPod(&e.payload);
        rec.entries.push_back(e);
      }
      break;
    }
    case RecordType::kSnapshotEnd:
    case RecordType::kCleanShutdown: {
      if (Status st = expect_exact(kHeaderBytes); !st.ok()) return st;
      break;
    }
    case RecordType::kPadding:
      rec.count = payload.size() - kHeaderBytes;
      break;
  }
  return rec;
}

std::vector<Record> BuildSnapshotRecords(
    const std::vector<rtree::Entry>& entries,
    const rtree::RTreeOptions& options, uint64_t lsn) {
  std::vector<Record> records;
  records.reserve(2 + (entries.size() + kSnapshotChunkEntries - 1) /
                          kSnapshotChunkEntries);

  Record begin;
  begin.type = RecordType::kSnapshotBegin;
  begin.lsn = lsn;
  begin.count = entries.size();
  begin.tree_max_entries = static_cast<uint16_t>(options.max_entries);
  begin.tree_min_entries = static_cast<uint16_t>(options.min_entries);
  begin.tree_split = static_cast<uint8_t>(options.split);
  begin.tree_forced_reinsert = options.forced_reinsert ? 1 : 0;
  records.push_back(std::move(begin));

  for (size_t off = 0; off < entries.size(); off += kSnapshotChunkEntries) {
    Record chunk;
    chunk.type = RecordType::kSnapshotChunk;
    chunk.lsn = lsn;
    const size_t end = std::min(off + kSnapshotChunkEntries, entries.size());
    chunk.entries.assign(entries.begin() + static_cast<ptrdiff_t>(off),
                         entries.begin() + static_cast<ptrdiff_t>(end));
    records.push_back(std::move(chunk));
  }

  Record end_rec;
  end_rec.type = RecordType::kSnapshotEnd;
  end_rec.lsn = lsn;
  records.push_back(end_rec);
  return records;
}

}  // namespace pictdb::wal
