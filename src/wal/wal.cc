#include "wal/wal.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "storage/page.h"

namespace pictdb::wal {
namespace {

// Chain pages: [u32 magic][u32 next_page][payload ...].
constexpr uint32_t kChainMagic = 0x57414C50u;  // "WALP"
constexpr uint32_t kChainHeaderBytes = 8;

// Anchor page: two generation-stamped slots at fixed offsets. Each slot
// is  [u32 magic][u32 crc][u64 generation][u32 head_page][u32 pad]
// with the CRC covering the 16 bytes after it (generation..pad).
constexpr uint32_t kAnchorMagic = 0x57414C41u;  // "WALA"
constexpr size_t kAnchorSlotBytes = 24;
constexpr size_t kAnchorSlotOffset[2] = {0, 64};

// Transient-IOError retry budget for raw page I/O. The WAL bypasses the
// buffer pool, so it owes itself the same bounded-retry envelope the
// pool gives everyone else.
constexpr int kIoRetries = 8;

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool AllZero(const char* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

void EncodeAnchorSlot(char* slot, uint64_t generation,
                      storage::PageId head) {
  StoreU64(slot + 8, generation);
  StoreU32(slot + 16, head);
  StoreU32(slot + 20, 0);
  StoreU32(slot, kAnchorMagic);
  StoreU32(slot + 4, storage::Crc32(slot + 8, kAnchorSlotBytes - 8));
}

bool DecodeAnchorSlot(const char* slot, uint64_t* generation,
                      storage::PageId* head) {
  if (LoadU32(slot) != kAnchorMagic) return false;
  if (LoadU32(slot + 4) != storage::Crc32(slot + 8, kAnchorSlotBytes - 8)) {
    return false;
  }
  *generation = LoadU64(slot + 8);
  *head = LoadU32(slot + 16);
  return true;
}

/// Frame `payload` as [u32 len][u32 crc][payload] appended to `out`.
void AppendFrame(std::string* out, const std::string& payload) {
  char hdr[8];
  StoreU32(hdr, static_cast<uint32_t>(payload.size()));
  StoreU32(hdr + 4, storage::Crc32(payload.data(), payload.size()));
  out->append(hdr, sizeof(hdr));
  out->append(payload);
}

/// Parse the framed record stream. Fills records/committed_bytes and
/// flags a torn tail; never fails (a torn tail is an answer, not an
/// error).
void ParseStream(const std::string& stream, ScanResult* out) {
  size_t pos = 0;
  while (pos + 8 <= stream.size()) {
    const uint32_t len = LoadU32(stream.data() + pos);
    if (len == 0) break;  // zero-fill past the tail: clean end
    if (len < 9 || len > kMaxRecordPayload ||
        pos + 8 + len > stream.size()) {
      out->tail_torn = true;
      break;
    }
    const char* payload = stream.data() + pos + 8;
    if (LoadU32(stream.data() + pos + 4) != storage::Crc32(payload, len)) {
      out->tail_torn = true;
      break;
    }
    StatusOr<Record> rec =
        DecodeRecordPayload(std::string_view(payload, len));
    if (!rec.ok()) {
      out->tail_torn = true;
      break;
    }
    out->records.push_back(std::move(rec).value());
    pos += 8 + len;
  }
  out->committed_bytes = pos;
  if (out->tail_torn) {
    // Report only the bytes that were actually written (trim the
    // zero-fill) so "discarded" measures the torn suffix, not slack.
    size_t last = stream.size();
    while (last > pos && stream[last - 1] == 0) --last;
    out->discarded_bytes = last - pos;
  }
}

Status RetryRead(storage::DiskManager* disk, storage::PageId id, char* out) {
  Status st;
  for (int attempt = 0; attempt <= kIoRetries; ++attempt) {
    st = disk->ReadPage(id, out);
    if (st.ok() || !st.IsIOError()) return st;
  }
  return st;
}

Status RetryWrite(storage::DiskManager* disk, storage::PageId id,
                  const char* data) {
  Status st;
  for (int attempt = 0; attempt <= kIoRetries; ++attempt) {
    st = disk->WritePage(id, data);
    if (st.ok() || !st.IsIOError()) return st;
  }
  return st;
}

}  // namespace

uint32_t Wal::PagePayload() const {
  return disk_->page_size() - kChainHeaderBytes;
}

Status Wal::ReadPageRetry(storage::PageId id, char* out) const {
  return RetryRead(disk_, id, out);
}

Status Wal::WritePageRetry(storage::PageId id, const char* data) const {
  return RetryWrite(disk_, id, data);
}

StatusOr<Wal> Wal::Create(storage::DiskManager* disk) {
  const storage::PageId anchor = disk->AllocatePage();
  const storage::PageId head = disk->AllocatePage();

  Wal wal(disk, anchor);
  wal.chain_.push_back(head);
  wal.tail_image_.assign(disk->page_size(), '\0');
  StoreU32(wal.tail_image_.data(), kChainMagic);
  StoreU32(wal.tail_image_.data() + 4, storage::kInvalidPageId);
  if (Status st = wal.FlushTail(); !st.ok()) return st;

  std::string anchor_image(disk->page_size(), '\0');
  EncodeAnchorSlot(anchor_image.data() + kAnchorSlotOffset[0],
                   /*generation=*/0, head);
  if (Status st = RetryWrite(disk, anchor, anchor_image.data()); !st.ok()) {
    return st;
  }
  if (Status st = disk->Sync(); !st.ok()) return st;
  return wal;
}

Status Wal::ScanChain(storage::DiskManager* disk, storage::PageId head,
                      ScanResult* out, std::vector<storage::PageId>* pages,
                      std::string* stream) {
  const uint32_t page_size = disk->page_size();
  std::string page(page_size, '\0');
  std::unordered_set<storage::PageId> visited;
  storage::PageId cur = head;
  while (cur != storage::kInvalidPageId) {
    if (cur >= disk->page_count() || !visited.insert(cur).second) {
      // A link outside the file or a cycle means the chain metadata
      // itself is damaged past this point — treat it as a torn tail.
      out->tail_torn = true;
      break;
    }
    if (Status st = RetryRead(disk, cur, page.data()); !st.ok()) {
      out->tail_torn = true;
      break;
    }
    if (LoadU32(page.data()) != kChainMagic) {
      if (AllZero(page.data(), page_size)) {
        // A freshly allocated page the crash beat us to writing: the
        // stream simply ends here (its frame, if any, is torn and the
        // parser will say so).
        break;
      }
      out->tail_torn = true;
      break;
    }
    pages->push_back(cur);
    stream->append(page.data() + kChainHeaderBytes,
                   page_size - kChainHeaderBytes);
    cur = LoadU32(page.data() + 4);
  }
  ParseStream(*stream, out);
  return Status::OK();
}

StatusOr<Wal> Wal::Open(storage::DiskManager* disk,
                        storage::PageId anchor_page, ScanResult* scan) {
  std::string anchor(disk->page_size(), '\0');
  if (Status st = RetryRead(disk, anchor_page, anchor.data()); !st.ok()) {
    return st;
  }

  // Pick the valid slot with the highest generation; a rotation crash
  // leaves the older slot intact, so at least one must decode.
  bool found = false;
  uint64_t generation = 0;
  storage::PageId head = storage::kInvalidPageId;
  for (size_t slot_offset : kAnchorSlotOffset) {
    uint64_t gen;
    storage::PageId h;
    if (DecodeAnchorSlot(anchor.data() + slot_offset, &gen, &h) &&
        (!found || gen > generation)) {
      found = true;
      generation = gen;
      head = h;
    }
  }
  if (!found) {
    return Status::Corruption("WAL anchor page " +
                              std::to_string(anchor_page) +
                              " has no valid slot");
  }

  Wal wal(disk, anchor_page);
  wal.generation_ = generation;

  std::string stream;
  std::vector<storage::PageId> pages;
  if (Status st = ScanChain(disk, head, scan, &pages, &stream); !st.ok()) {
    return st;
  }
  if (pages.empty()) {
    // Even the head page was unreadable. The committed prefix is empty;
    // rebuild the head in place so the log can accept appends again.
    pages.push_back(head);
    stream.assign(disk->page_size() - kChainHeaderBytes, '\0');
  }

  // Truncate the torn tail physically: keep only the pages holding the
  // committed prefix, rewrite the new tail page without the torn bytes,
  // and free the rest of the chain.
  const uint32_t payload = wal.PagePayload();
  const uint64_t committed = scan->committed_bytes;
  size_t tail_index = static_cast<size_t>(committed / payload);
  wal.tail_used_ = static_cast<uint32_t>(committed % payload);
  if (tail_index >= pages.size()) {
    // The committed prefix exactly fills every scanned page and no empty
    // successor was linked yet (crash mid-append): reuse the last page
    // as a full tail; the next append will chain a fresh one.
    tail_index = pages.size() - 1;
    wal.tail_used_ = payload;
  }
  for (size_t i = tail_index + 1; i < pages.size(); ++i) {
    disk->DeallocatePage(pages[i]);
  }
  pages.resize(tail_index + 1);
  wal.chain_ = pages;
  wal.chain_bytes_ = committed;

  wal.tail_image_.assign(disk->page_size(), '\0');
  StoreU32(wal.tail_image_.data(), kChainMagic);
  StoreU32(wal.tail_image_.data() + 4, storage::kInvalidPageId);
  if (wal.tail_used_ > 0) {
    std::memcpy(wal.tail_image_.data() + kChainHeaderBytes,
                stream.data() + tail_index * payload, wal.tail_used_);
  }
  if (Status st = wal.FlushTail(); !st.ok()) return st;
  if (Status st = disk->Sync(); !st.ok()) return st;
  return wal;
}

Status Wal::FlushTail() {
  return WritePageRetry(chain_.back(), tail_image_.data());
}

Status Wal::Append(const Record& record) {
  std::string frame;
  AppendFrame(&frame, EncodeRecordPayload(record));

  const uint32_t payload = PagePayload();
  size_t pos = 0;
  while (pos < frame.size()) {
    if (tail_used_ == payload) {
      // Tail full: chain a fresh page. The old tail is flushed WITH the
      // link first — if we crash before the new page gets content, it
      // reads back all-zero and the scan treats the stream as ending
      // there (mid-frame = torn tail, before the frame = clean end).
      const storage::PageId next = disk_->AllocatePage();
      StoreU32(tail_image_.data() + 4, next);
      if (Status st = FlushTail(); !st.ok()) return st;
      chain_.push_back(next);
      tail_image_.assign(disk_->page_size(), '\0');
      StoreU32(tail_image_.data(), kChainMagic);
      StoreU32(tail_image_.data() + 4, storage::kInvalidPageId);
      tail_used_ = 0;
    }
    const size_t take =
        std::min<size_t>(payload - tail_used_, frame.size() - pos);
    std::memcpy(tail_image_.data() + kChainHeaderBytes + tail_used_,
                frame.data() + pos, take);
    tail_used_ += static_cast<uint32_t>(take);
    pos += take;
  }
  if (Status st = FlushTail(); !st.ok()) return st;

  chain_bytes_ += frame.size();
  stats_.appended_records++;
  stats_.appended_bytes += frame.size();
  return Status::OK();
}

Status Wal::Sync() {
  Status st = disk_->Sync();
  if (st.ok()) stats_.syncs++;
  return st;
}

Status Wal::WriteChain(const std::string& stream,
                       std::vector<storage::PageId>* pages) const {
  // One page past the stream is always written empty and pre-linked:
  // appends continue there, so they never rewrite (and thus can never
  // tear) a page holding rotation-time bytes. Rotate pads its stream to
  // a page boundary for the same reason.
  const uint32_t payload = PagePayload();
  const size_t n_pages = (stream.size() + payload - 1) / payload + 1;
  pages->reserve(n_pages);
  for (size_t i = 0; i < n_pages; ++i) pages->push_back(disk_->AllocatePage());

  std::string image(disk_->page_size(), '\0');
  for (size_t i = 0; i < n_pages; ++i) {
    std::fill(image.begin(), image.end(), '\0');
    StoreU32(image.data(), kChainMagic);
    StoreU32(image.data() + 4, i + 1 < n_pages
                                   ? (*pages)[i + 1]
                                   : storage::kInvalidPageId);
    const size_t off = i * payload;
    const size_t take =
        off < stream.size() ? std::min<size_t>(payload, stream.size() - off)
                            : 0;
    if (take > 0) {
      std::memcpy(image.data() + kChainHeaderBytes, stream.data() + off, take);
    }
    if (Status st = WritePageRetry((*pages)[i], image.data()); !st.ok()) {
      return st;
    }
  }
  return Status::OK();
}

Status Wal::WriteAnchor(storage::PageId head) {
  // Rebuild the whole anchor image from memory: the surviving slot
  // keeps the CURRENT generation/head, the other slot advances. Never
  // read-modify-write the on-disk anchor — its other slot might hold a
  // torn image we would then faithfully preserve.
  std::string image(disk_->page_size(), '\0');
  EncodeAnchorSlot(image.data() + kAnchorSlotOffset[generation_ % 2],
                   generation_, chain_.front());
  EncodeAnchorSlot(image.data() + kAnchorSlotOffset[(generation_ + 1) % 2],
                   generation_ + 1, head);
  if (Status st = WritePageRetry(anchor_page_, image.data()); !st.ok()) {
    return st;
  }
  if (Status st = disk_->Sync(); !st.ok()) return st;

  // Read back and confirm the new slot decodes — a silently torn anchor
  // write is the one failure the dual-slot scheme cannot absorb later.
  std::string check(disk_->page_size(), '\0');
  if (Status st = ReadPageRetry(anchor_page_, check.data()); !st.ok()) {
    return st;
  }
  uint64_t gen;
  storage::PageId got_head;
  if (!DecodeAnchorSlot(check.data() + kAnchorSlotOffset[(generation_ + 1) % 2],
                        &gen, &got_head) ||
      gen != generation_ + 1 || got_head != head) {
    return Status::IOError("WAL anchor write verification failed");
  }
  return Status::OK();
}

Status Wal::Rotate(const std::vector<Record>& snapshot) {
  const uint32_t payload = PagePayload();
  std::string stream;
  size_t expected_records = snapshot.size();
  for (const Record& rec : snapshot) {
    AppendFrame(&stream, EncodeRecordPayload(rec));
  }
  // Pad to a page boundary so the snapshot owns its pages outright —
  // appends (which rewrite the tail page in place) then start on the
  // pre-linked empty page past it and can never tear snapshot bytes.
  // A padding frame needs 8 (frame) + 9 (record header) bytes; when the
  // gap is smaller, pad through the next page instead.
  if (const size_t rem = stream.size() % payload; rem != 0) {
    size_t pad_total = payload - rem;
    if (pad_total < 17) pad_total += payload;
    Record pad;
    pad.type = RecordType::kPadding;
    pad.count = pad_total - 17;
    AppendFrame(&stream, EncodeRecordPayload(pad));
    expected_records++;
  }

  // Write + sync + read-back-verify the new chain, bounded retries. A
  // verification failure means the disk tore our freshly synced write;
  // start over on fresh pages rather than trusting a rewrite in place.
  std::vector<storage::PageId> new_pages;
  constexpr int kRotateAttempts = 3;
  Status st;
  for (int attempt = 0; attempt < kRotateAttempts; ++attempt) {
    if (attempt > 0) stats_.rotation_retries++;
    for (storage::PageId id : new_pages) disk_->DeallocatePage(id);
    new_pages.clear();

    st = WriteChain(stream, &new_pages);
    if (!st.ok()) continue;
    st = disk_->Sync();
    if (!st.ok()) continue;

    ScanResult verify;
    std::vector<storage::PageId> verify_pages;
    std::string verify_stream;
    st = ScanChain(disk_, new_pages.front(), &verify, &verify_pages,
                   &verify_stream);
    if (!st.ok()) continue;
    if (verify.tail_torn || verify.records.size() != expected_records ||
        verify.committed_bytes != stream.size()) {
      st = Status::IOError("WAL rotation read-back verification failed");
      continue;
    }
    break;
  }
  if (!st.ok()) {
    for (storage::PageId id : new_pages) disk_->DeallocatePage(id);
    return st;  // old chain still anchored and intact
  }

  if (Status ast = WriteAnchor(new_pages.front()); !ast.ok()) {
    for (storage::PageId id : new_pages) disk_->DeallocatePage(id);
    return ast;
  }
  generation_++;

  for (storage::PageId id : chain_) disk_->DeallocatePage(id);
  chain_ = std::move(new_pages);
  chain_bytes_ = stream.size();

  // Appends continue on the pre-linked empty page WriteChain added past
  // the (page-aligned) snapshot.
  tail_used_ = 0;
  tail_image_.assign(disk_->page_size(), '\0');
  StoreU32(tail_image_.data(), kChainMagic);
  StoreU32(tail_image_.data() + 4, storage::kInvalidPageId);

  stats_.rotations++;
  return Status::OK();
}

}  // namespace pictdb::wal
