#ifndef PICTDB_WAL_DURABLE_TREE_H_
#define PICTDB_WAL_DURABLE_TREE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/status_or.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/epoch.h"
#include "wal/wal.h"

namespace pictdb::wal {

struct DurableOptions {
  /// Checkpoint (WAL rotation onto a fresh snapshot) after this many
  /// committed mutations. Bounds both log growth and replay time.
  uint64_t checkpoint_every = 4096;

  /// Run a full TreeValidator pass over the rebuilt tree at the end of
  /// recovery; violations fail the open with Corruption.
  bool validate_after_recovery = true;
};

/// What Open() did and found. `recovered` false means the clean-shutdown
/// fast path reattached to the on-disk tree without a rebuild.
struct RecoveryInfo {
  bool opened = false;
  bool clean_shutdown = false;
  bool recovered = false;  // tree was rebuilt from snapshot + redo
  bool tail_torn = false;
  uint64_t snapshot_entries = 0;
  uint64_t replayed_ops = 0;
  uint64_t discarded_bytes = 0;
  std::chrono::microseconds elapsed{0};
};

/// Plain-value image of the mutation counters.
struct MutationStatsSnapshot {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t updates = 0;
  uint64_t checkpoints = 0;
  uint64_t retired_pages = 0;
  uint64_t reclaimed_pages = 0;
};

/// An R-tree whose mutations are durable: every Insert/Delete/Update is
/// appended to a write-ahead log and synced BEFORE it is applied to the
/// tree, so a crash at any instant loses at most unacknowledged
/// operations. Open() replays the log — after an unclean shutdown the
/// on-disk tree pages are treated as a disposable cache and the tree is
/// rebuilt (PACK) from the logged snapshot + redo ops.
///
/// Concurrency contract: any number of threads may run read-only queries
/// through tree() concurrently with ONE mutator at a time (the mutex
/// serializes mutators; readers are latch-coordinated, never blocked for
/// the duration of a whole operation). Readers must hold an epoch guard
/// (ReaderEpoch()) across each query so pages unlinked by concurrent
/// restructuring are not reused under them.
class DurableRTree {
 public:
  /// Create a fresh durable tree on `pool`: allocates the tree, the WAL
  /// anchor, and writes an initial (empty) snapshot chain.
  static StatusOr<std::unique_ptr<DurableRTree>> Create(
      storage::BufferPool* pool, const rtree::RTreeOptions& tree_options = {},
      const DurableOptions& options = {});

  /// Reattach after a shutdown or crash. Scans the WAL, discards any
  /// torn tail, and either fast-paths onto the validated on-disk tree
  /// (clean shutdown) or rebuilds it from snapshot + redo. The outcome
  /// is reported by recovery_info().
  static StatusOr<std::unique_ptr<DurableRTree>> Open(
      storage::BufferPool* pool, storage::PageId meta_page,
      storage::PageId anchor_page, const DurableOptions& options = {});

  // --- Logged mutations ---------------------------------------------------

  Status Insert(const geom::Rect& mbr, const storage::Rid& rid)
      EXCLUDES(mu_);
  /// NotFound (without logging anything) if (mbr, rid) is absent.
  Status Delete(const geom::Rect& mbr, const storage::Rid& rid)
      EXCLUDES(mu_);
  /// Atomically (one logged record) move an entry. NotFound if the old
  /// entry is absent.
  Status Update(const geom::Rect& old_mbr, const storage::Rid& old_rid,
                const geom::Rect& new_mbr, const storage::Rid& new_rid)
      EXCLUDES(mu_);

  /// Seed an EMPTY durable tree via the PACK bulk loader, then
  /// checkpoint so the load is durable as a snapshot.
  Status BulkLoad(std::vector<rtree::Entry> entries) EXCLUDES(mu_);

  /// Rotate the WAL onto a fresh snapshot of the current tree. Failure
  /// leaves the previous (still valid) chain in place.
  Status Checkpoint() EXCLUDES(mu_);

  /// Checkpoint, flush the pool, sync, and stamp the clean-shutdown
  /// marker so the next Open() can skip the rebuild. Further mutations
  /// are refused.
  Status Close() EXCLUDES(mu_);

  // --- Read side ----------------------------------------------------------

  /// The underlying tree, for read-only queries. Safe to search from any
  /// thread while mutations run, PROVIDED the caller holds a ReaderEpoch
  /// guard for the duration of each query.
  const rtree::RTree& tree() const { return *tree_; }

  /// Pin the reclamation epoch for one query's lifetime.
  storage::EpochGate::ReadGuard ReaderEpoch() { return gate_.Enter(); }

  // --- Introspection ------------------------------------------------------

  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  MutationStatsSnapshot stats() const EXCLUDES(mu_);
  WalStats wal_stats() const EXCLUDES(mu_);
  uint64_t wal_chain_bytes() const EXCLUDES(mu_);
  storage::PageId meta_page() const { return meta_page_; }
  storage::PageId anchor_page() const { return anchor_page_; }
  /// True once a commit-path failure has made the in-memory tree
  /// untrustworthy; every further mutation is refused (reopen recovers).
  bool poisoned() const EXCLUDES(mu_);

  DurableRTree(const DurableRTree&) = delete;
  DurableRTree& operator=(const DurableRTree&) = delete;

 private:
  /// Passkey: only the static factories can name this, which keeps the
  /// constructor effectively private while still std::make_unique-able.
  struct Passkey {
    explicit Passkey() = default;
  };

 public:
  DurableRTree(Passkey, storage::BufferPool* pool,
               const DurableOptions& options)
      : pool_(pool), options_(options) {}

 private:

  /// Wire the retire hook + latched reads into tree_ (call after tree_
  /// is emplaced; the hook captures `this`).
  void AttachTree();

  Status CheckWritableLocked() REQUIRES(mu_);
  /// Append + sync + apply one record; any failure poisons the tree
  /// (the log and the in-memory state may disagree).
  Status CommitLocked(const Record& record) REQUIRES(mu_);
  Status CheckpointLocked() REQUIRES(mu_);
  /// Free retired pages no active reader can still reach.
  void DrainRetired() EXCLUDES(retired_mu_, mu_);

  /// Replay a committed record stream into a leaf-entry multiset.
  struct ReplayResult {
    std::vector<rtree::Entry> entries;
    bool have_options = false;
    rtree::RTreeOptions tree_options;
    uint64_t snapshot_entries = 0;
    uint64_t replayed_ops = 0;
    uint64_t max_lsn = 0;
  };
  static StatusOr<ReplayResult> Replay(const std::vector<Record>& records);

  storage::BufferPool* pool_;
  DurableOptions options_;
  storage::PageId meta_page_ = storage::kInvalidPageId;
  storage::PageId anchor_page_ = storage::kInvalidPageId;
  RecoveryInfo recovery_info_;

  /// Serializes mutators and guards the log + commit bookkeeping.
  /// Lock order (DESIGN.md §10): mu_ -> pool shard mutex -> frame latch;
  /// retired_mu_ is a leaf taken from the retire hook and DrainRetired.
  mutable Mutex mu_;
  std::optional<Wal> wal_ GUARDED_BY(mu_);
  uint64_t next_lsn_ GUARDED_BY(mu_) = 1;
  uint64_t ops_since_checkpoint_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
  bool poisoned_ GUARDED_BY(mu_) = false;
  MutationStatsSnapshot stats_ GUARDED_BY(mu_);

  /// Internally synchronized (atomics + latches); readers use it without
  /// mu_. Mutating entry points are called only under mu_.
  std::optional<rtree::RTree> tree_;

  storage::EpochGate gate_;
  mutable Mutex retired_mu_;
  /// (retire epoch, page) pairs awaiting reclamation.
  std::vector<std::pair<uint64_t, storage::PageId>> retired_
      GUARDED_BY(retired_mu_);
};

}  // namespace pictdb::wal

#endif  // PICTDB_WAL_DURABLE_TREE_H_
