#include "wal/durable_tree.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "check/invariants.h"
#include "common/logging.h"
#include "pack/pack.h"
#include "rtree/node.h"
#include "rtree/split.h"

namespace pictdb::wal {
namespace {

rtree::Entry LeafEntry(const geom::Rect& mbr, uint64_t payload) {
  rtree::Entry e;
  e.mbr = mbr;
  e.payload = payload;
  return e;
}

/// Erase the first entry matching (mbr, payload) from `entries`; false
/// if absent.
bool EraseEntry(std::vector<rtree::Entry>* entries, const geom::Rect& mbr,
                uint64_t payload) {
  for (auto it = entries->begin(); it != entries->end(); ++it) {
    if (it->payload == payload && it->mbr == mbr) {
      entries->erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace

void DurableRTree::AttachTree() {
  tree_->EnableConcurrentReads(true);
  tree_->SetPageRetireHook([this](storage::PageId id) {
    const uint64_t epoch = gate_.Advance();
    MutexLock lock(&retired_mu_);
    retired_.emplace_back(epoch, id);
    return Status::OK();
  });
}

StatusOr<std::unique_ptr<DurableRTree>> DurableRTree::Create(
    storage::BufferPool* pool, const rtree::RTreeOptions& tree_options,
    const DurableOptions& options) {
  auto tree = rtree::RTree::Create(pool, tree_options);
  if (!tree.ok()) return tree.status();

  auto wal = Wal::Create(pool->disk());
  if (!wal.ok()) return wal.status();

  auto dt = std::make_unique<DurableRTree>(Passkey{}, pool, options);
  dt->meta_page_ = tree->meta_page();
  dt->anchor_page_ = wal->anchor_page();
  dt->tree_.emplace(std::move(tree).value());
  dt->AttachTree();
  {
    MutexLock lock(&dt->mu_);
    dt->wal_.emplace(std::move(wal).value());
    // Anchor an initial (empty) snapshot so the chain is never without
    // one — recovery always finds a base state to replay onto.
    if (Status st = dt->CheckpointLocked(); !st.ok()) return st;
  }
  dt->recovery_info_.opened = true;
  return dt;
}

StatusOr<std::unique_ptr<DurableRTree>> DurableRTree::Open(
    storage::BufferPool* pool, storage::PageId meta_page,
    storage::PageId anchor_page, const DurableOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  ScanResult scan;
  auto wal = Wal::Open(pool->disk(), anchor_page, &scan);
  if (!wal.ok()) return wal.status();

  auto replay = Replay(scan.records);
  if (!replay.ok()) return replay.status();

  auto dt = std::make_unique<DurableRTree>(Passkey{}, pool, options);
  dt->meta_page_ = meta_page;
  dt->anchor_page_ = anchor_page;
  dt->recovery_info_.opened = true;
  dt->recovery_info_.tail_torn = scan.tail_torn;
  dt->recovery_info_.discarded_bytes = scan.discarded_bytes;
  dt->recovery_info_.snapshot_entries = replay->snapshot_entries;
  dt->recovery_info_.replayed_ops = replay->replayed_ops;

  const bool clean = !scan.tail_torn && !scan.records.empty() &&
                     scan.records.back().type == RecordType::kCleanShutdown;
  bool reattached = false;
  if (clean) {
    // Fast path: the marker promises the on-disk tree equals the logged
    // state — but verify before trusting it (the final flush itself may
    // have torn; then the marker lies and we rebuild anyway).
    auto tree = rtree::RTree::Open(pool, meta_page);
    if (tree.ok() && tree->Validate().ok() &&
        tree->Size() == replay->entries.size()) {
      dt->tree_.emplace(std::move(tree).value());
      dt->recovery_info_.clean_shutdown = true;
      reattached = true;
    }
  }

  if (!reattached) {
    // Rebuild: the on-disk tree is just a cache of the log. Reclaim its
    // pages when it is still readable; otherwise leak them (a leak is
    // safe, reusing a page that is secretly live is not).
    {
      auto old = rtree::RTree::Open(pool, meta_page);
      if (old.ok() && old->Validate().ok()) {
        if (Status st = old->Clear(); !st.ok()) {
          PICTDB_LOG_WARN()
              << "recovery could not free old tree pages: " << st.ToString();
        }
      } else {
        PICTDB_LOG_WARN() << "recovery leaks pages of unreadable old tree "
                             "at meta page "
                          << meta_page;
      }
    }

    rtree::RTreeOptions topts = replay->tree_options;
    if (!replay->have_options) {
      // No complete snapshot in the log (crash during the very first
      // checkpoint): fall back to the meta page if readable, else
      // defaults. The entry multiset is empty either way.
      auto old = rtree::RTree::Open(pool, meta_page);
      if (old.ok()) topts = old->options();
    }

    auto tree = rtree::RTree::CreateAt(pool, meta_page, topts);
    if (!tree.ok()) return tree.status();
    dt->tree_.emplace(std::move(tree).value());
    if (!replay->entries.empty()) {
      if (Status st =
              pack::PackSortChunk(&*dt->tree_, replay->entries,
                                  {.criterion = pack::SortCriterion::kHilbert});
          !st.ok()) {
        return st;
      }
    }
    dt->recovery_info_.recovered = true;
  }

  dt->AttachTree();
  {
    MutexLock lock(&dt->mu_);
    dt->wal_.emplace(std::move(wal).value());
    dt->next_lsn_ = replay->max_lsn + 1;
    if (!reattached) {
      // Re-anchor the log on a fresh snapshot of the rebuilt tree so the
      // replayed ops are folded in and a repeated crash replays from
      // here (recovery is idempotent).
      if (Status st = dt->CheckpointLocked(); !st.ok()) return st;
    } else {
      dt->ops_since_checkpoint_ = replay->replayed_ops;
    }
  }

  if (options.validate_after_recovery && !reattached) {
    check::ValidationReport report = check::TreeValidator().Check(*dt->tree_);
    if (!report.ok()) {
      return Status::Corruption("rebuilt tree failed validation:\n" +
                                report.ToString());
    }
  }

  dt->recovery_info_.elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start);
  return dt;
}

StatusOr<DurableRTree::ReplayResult> DurableRTree::Replay(
    const std::vector<Record>& records) {
  ReplayResult out;
  bool in_snapshot = false;
  std::vector<rtree::Entry> pending;
  rtree::RTreeOptions pending_opts;

  for (const Record& rec : records) {
    out.max_lsn = std::max(out.max_lsn, rec.lsn);
    switch (rec.type) {
      case RecordType::kSnapshotBegin:
        in_snapshot = true;
        pending.clear();
        pending.reserve(rec.count);
        pending_opts.max_entries = rec.tree_max_entries;
        pending_opts.min_entries = rec.tree_min_entries;
        pending_opts.split = static_cast<rtree::SplitAlgorithm>(rec.tree_split);
        pending_opts.forced_reinsert = rec.tree_forced_reinsert != 0;
        break;
      case RecordType::kSnapshotChunk:
        if (in_snapshot) {
          pending.insert(pending.end(), rec.entries.begin(),
                         rec.entries.end());
        }
        break;
      case RecordType::kSnapshotEnd:
        if (in_snapshot) {
          in_snapshot = false;
          out.entries = std::move(pending);
          pending.clear();
          out.tree_options = pending_opts;
          out.have_options = true;
          out.snapshot_entries = out.entries.size();
          out.replayed_ops = 0;  // ops before this snapshot are folded in
        }
        break;
      case RecordType::kInsert:
        out.entries.push_back(LeafEntry(rec.a, rec.rid_a));
        out.replayed_ops++;
        break;
      case RecordType::kDelete:
        if (!EraseEntry(&out.entries, rec.a, rec.rid_a)) {
          // Cannot happen for a log produced by this layer (presence is
          // pre-checked before logging); tolerate rather than fail.
          PICTDB_LOG_WARN() << "WAL replay: delete of absent entry at lsn "
                            << rec.lsn;
        }
        out.replayed_ops++;
        break;
      case RecordType::kUpdate:
        if (!EraseEntry(&out.entries, rec.a, rec.rid_a)) {
          PICTDB_LOG_WARN() << "WAL replay: update of absent entry at lsn "
                            << rec.lsn;
        }
        out.entries.push_back(LeafEntry(rec.b, rec.rid_b));
        out.replayed_ops++;
        break;
      case RecordType::kCleanShutdown:
      case RecordType::kPadding:
        break;
    }
  }
  if (in_snapshot) {
    // The snapshot group occupies pages appends never rewrite, so a
    // half-group can only mean external damage to anchored pages.
    return Status::Corruption("WAL ends inside a snapshot group");
  }
  return out;
}

Status DurableRTree::CheckWritableLocked() {
  if (closed_) return Status::Internal("durable tree is closed");
  if (poisoned_) {
    return Status::Internal(
        "durable tree poisoned by an earlier commit failure; reopen to "
        "recover from the log");
  }
  return Status::OK();
}

Status DurableRTree::CommitLocked(const Record& record) {
  // Log-then-apply. The sync is the commit point: after it the op
  // survives any crash; before it the op never happened. A failure in
  // EITHER half leaves log and memory potentially disagreeing, so the
  // tree is poisoned until a reopen replays the truth.
  if (Status st = wal_->Append(record); !st.ok()) {
    poisoned_ = true;
    return st;
  }
  if (Status st = wal_->Sync(); !st.ok()) {
    poisoned_ = true;
    return st;
  }

  Status applied;
  switch (record.type) {
    case RecordType::kInsert:
      applied = tree_->Insert(record.a,
                              LeafEntry(record.a, record.rid_a).AsRid());
      break;
    case RecordType::kDelete:
      applied = tree_->Delete(record.a,
                              LeafEntry(record.a, record.rid_a).AsRid());
      break;
    case RecordType::kUpdate:
      applied = tree_->Update(record.a, LeafEntry(record.a, record.rid_a).AsRid(),
                              record.b, LeafEntry(record.b, record.rid_b).AsRid());
      break;
    default:
      applied = Status::Internal("unexpected record type in commit");
      break;
  }
  if (!applied.ok()) {
    poisoned_ = true;
    return applied;
  }
  next_lsn_++;
  ops_since_checkpoint_++;
  return Status::OK();
}

Status DurableRTree::Insert(const geom::Rect& mbr, const storage::Rid& rid) {
  {
    MutexLock lock(&mu_);
    if (Status st = CheckWritableLocked(); !st.ok()) return st;

    Record rec;
    rec.type = RecordType::kInsert;
    rec.lsn = next_lsn_;
    rec.a = mbr;
    rec.rid_a = rtree::Entry::PayloadFromRid(rid);
    if (Status st = CommitLocked(rec); !st.ok()) return st;
    stats_.inserts++;
    if (ops_since_checkpoint_ >= options_.checkpoint_every) {
      if (Status st = CheckpointLocked(); !st.ok()) {
        PICTDB_LOG_WARN() << "checkpoint failed (will retry): "
                          << st.ToString();
      }
    }
  }
  DrainRetired();
  return Status::OK();
}

Status DurableRTree::Delete(const geom::Rect& mbr, const storage::Rid& rid) {
  {
    MutexLock lock(&mu_);
    if (Status st = CheckWritableLocked(); !st.ok()) return st;

    // Presence pre-check BEFORE logging: a logged-but-inapplicable
    // delete would diverge replayed state from applied state.
    auto present = tree_->Contains(mbr, rid);
    if (!present.ok()) return present.status();
    if (!present.value()) {
      return Status::NotFound("no entry with the given (mbr, rid)");
    }

    Record rec;
    rec.type = RecordType::kDelete;
    rec.lsn = next_lsn_;
    rec.a = mbr;
    rec.rid_a = rtree::Entry::PayloadFromRid(rid);
    if (Status st = CommitLocked(rec); !st.ok()) return st;
    stats_.deletes++;
    if (ops_since_checkpoint_ >= options_.checkpoint_every) {
      if (Status st = CheckpointLocked(); !st.ok()) {
        PICTDB_LOG_WARN() << "checkpoint failed (will retry): "
                          << st.ToString();
      }
    }
  }
  DrainRetired();
  return Status::OK();
}

Status DurableRTree::Update(const geom::Rect& old_mbr,
                            const storage::Rid& old_rid,
                            const geom::Rect& new_mbr,
                            const storage::Rid& new_rid) {
  {
    MutexLock lock(&mu_);
    if (Status st = CheckWritableLocked(); !st.ok()) return st;

    auto present = tree_->Contains(old_mbr, old_rid);
    if (!present.ok()) return present.status();
    if (!present.value()) {
      return Status::NotFound("no entry with the given old (mbr, rid)");
    }

    Record rec;
    rec.type = RecordType::kUpdate;
    rec.lsn = next_lsn_;
    rec.a = old_mbr;
    rec.rid_a = rtree::Entry::PayloadFromRid(old_rid);
    rec.b = new_mbr;
    rec.rid_b = rtree::Entry::PayloadFromRid(new_rid);
    if (Status st = CommitLocked(rec); !st.ok()) return st;
    stats_.updates++;
    if (ops_since_checkpoint_ >= options_.checkpoint_every) {
      if (Status st = CheckpointLocked(); !st.ok()) {
        PICTDB_LOG_WARN() << "checkpoint failed (will retry): "
                          << st.ToString();
      }
    }
  }
  DrainRetired();
  return Status::OK();
}

Status DurableRTree::BulkLoad(std::vector<rtree::Entry> entries) {
  MutexLock lock(&mu_);
  if (Status st = CheckWritableLocked(); !st.ok()) return st;
  if (tree_->Size() != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  if (Status st = pack::PackSortChunk(
          &*tree_, std::move(entries),
          {.criterion = pack::SortCriterion::kHilbert});
      !st.ok()) {
    return st;
  }
  return CheckpointLocked();
}

Status DurableRTree::CheckpointLocked() {
  auto leaves = tree_->CollectAllEntries();
  if (!leaves.ok()) return leaves.status();
  std::vector<rtree::Entry> entries;
  entries.reserve(leaves->size());
  for (const rtree::LeafHit& hit : leaves.value()) {
    entries.push_back(LeafEntry(hit.mbr, rtree::Entry::PayloadFromRid(hit.rid)));
  }
  if (Status st = wal_->Rotate(
          BuildSnapshotRecords(entries, tree_->options(), next_lsn_));
      !st.ok()) {
    return st;
  }
  next_lsn_++;
  ops_since_checkpoint_ = 0;
  stats_.checkpoints++;
  return Status::OK();
}

Status DurableRTree::Checkpoint() {
  MutexLock lock(&mu_);
  if (Status st = CheckWritableLocked(); !st.ok()) return st;
  return CheckpointLocked();
}

Status DurableRTree::Close() {
  MutexLock lock(&mu_);
  if (closed_) return Status::OK();
  if (poisoned_) {
    closed_ = true;
    return Status::Internal(
        "closed a poisoned durable tree without a clean-shutdown marker; "
        "the next open recovers from the log");
  }
  closed_ = true;

  if (Status st = CheckpointLocked(); !st.ok()) return st;
  if (Status st = pool_->FlushAll(); !st.ok()) return st;
  if (Status st = pool_->disk()->Sync(); !st.ok()) return st;

  // Only now — with every tree page durably equal to the snapshot — may
  // the marker promise that reopen can trust the on-disk tree.
  Record rec;
  rec.type = RecordType::kCleanShutdown;
  rec.lsn = next_lsn_;
  if (Status st = wal_->Append(rec); !st.ok()) return st;
  if (Status st = wal_->Sync(); !st.ok()) return st;
  next_lsn_++;
  return Status::OK();
}

void DurableRTree::DrainRetired() {
  const uint64_t min_active = gate_.MinActive();
  std::vector<storage::PageId> free_now;
  {
    MutexLock lock(&retired_mu_);
    auto keep = retired_.begin();
    for (auto& [epoch, page] : retired_) {
      if (epoch < min_active) {
        free_now.push_back(page);
      } else {
        *keep++ = {epoch, page};
      }
    }
    retired_.erase(keep, retired_.end());
  }
  if (free_now.empty()) return;
  for (storage::PageId id : free_now) {
    if (Status st = pool_->FreePage(id); !st.ok()) {
      PICTDB_LOG_WARN() << "failed to free retired page " << id << ": "
                        << st.ToString();
    }
  }
  MutexLock lock(&mu_);
  stats_.reclaimed_pages += free_now.size();
}

MutationStatsSnapshot DurableRTree::stats() const {
  MutexLock lock(&mu_);
  MutationStatsSnapshot s = stats_;
  MutexLock rlock(&retired_mu_);
  s.retired_pages = s.reclaimed_pages + retired_.size();
  return s;
}

WalStats DurableRTree::wal_stats() const {
  MutexLock lock(&mu_);
  return wal_->stats();
}

uint64_t DurableRTree::wal_chain_bytes() const {
  MutexLock lock(&mu_);
  return wal_->chain_bytes();
}

bool DurableRTree::poisoned() const {
  MutexLock lock(&mu_);
  return poisoned_;
}

}  // namespace pictdb::wal
