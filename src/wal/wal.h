#ifndef PICTDB_WAL_WAL_H_
#define PICTDB_WAL_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "storage/disk_manager.h"
#include "wal/record.h"

namespace pictdb::wal {

/// Counters for the log's physical behaviour.
struct WalStats {
  uint64_t appended_records = 0;
  uint64_t appended_bytes = 0;
  uint64_t syncs = 0;
  uint64_t rotations = 0;
  uint64_t rotation_retries = 0;
};

/// What Open() found while scanning the chain.
struct ScanResult {
  std::vector<Record> records;  // committed prefix, in append order
  uint64_t committed_bytes = 0;
  uint64_t discarded_bytes = 0;  // torn tail dropped at open
  bool tail_torn = false;
};

/// Append-only write-ahead log on a chain of raw disk pages.
///
/// The log talks to the DiskManager directly, bypassing the buffer pool:
/// WAL records carry their own CRC framing, so the pool's page trailer
/// would be redundant, and the log must control exactly when bytes reach
/// the disk (Sync is the commit barrier).
///
/// Physical layout. Each chain page is
///   [u32 magic][u32 next_page][payload bytes ...]
/// and the record stream runs across the payload areas in chain order.
/// Records are framed as [u32 len][u32 crc32(payload)][payload]; a zero
/// len terminates the stream (pages are zero-allocated, so the space
/// past the tail reads as end-of-log). A frame whose length is absurd or
/// whose CRC mismatches marks a torn tail: everything before it is the
/// committed prefix, everything from it on is discarded.
///
/// The anchor page holds two generation-stamped slots naming the head of
/// the current chain. Rotation writes the NEW chain completely, syncs,
/// re-reads it to verify (catching silently torn writes), and only then
/// overwrites the older slot — a crash anywhere leaves at least one slot
/// pointing at a complete, valid chain.
class Wal {
 public:
  /// Allocate an anchor page and an empty first chain on `disk`.
  /// The caller should immediately Rotate() an initial snapshot so the
  /// chain is never without one.
  static StatusOr<Wal> Create(storage::DiskManager* disk);

  /// Attach to the log anchored at `anchor_page`, scan the current
  /// chain, and report the committed record prefix in `*scan`. A torn
  /// tail is physically truncated (the tail page is rewritten without
  /// the torn bytes) so subsequent appends extend the committed prefix.
  static StatusOr<Wal> Open(storage::DiskManager* disk,
                            storage::PageId anchor_page, ScanResult* scan);

  Wal(Wal&&) = default;
  Wal& operator=(Wal&&) = default;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one framed record to the tail. NOT durable until Sync().
  Status Append(const Record& record);

  /// Durability barrier: all appended records survive a crash after OK.
  Status Sync();

  /// Replace the chain with a fresh one holding `snapshot` (typically a
  /// snapshot group from BuildSnapshotRecords). Verifies the new chain
  /// by read-back before re-anchoring; on any failure the old chain
  /// remains anchored and the log keeps appending to it.
  Status Rotate(const std::vector<Record>& snapshot);

  storage::PageId anchor_page() const { return anchor_page_; }
  /// Bytes of committed+appended record stream in the current chain.
  uint64_t chain_bytes() const { return chain_bytes_; }
  uint64_t chain_pages() const { return chain_.size(); }
  const WalStats& stats() const { return stats_; }

 private:
  Wal(storage::DiskManager* disk, storage::PageId anchor_page)
      : disk_(disk), anchor_page_(anchor_page) {}

  /// Payload bytes per chain page (page_size minus the chain header).
  uint32_t PagePayload() const;

  /// Read a chain page with bounded retry of transient IOErrors.
  Status ReadPageRetry(storage::PageId id, char* out) const;
  Status WritePageRetry(storage::PageId id, const char* data) const;

  /// Scan the chain starting at `head` into a contiguous stream; parse
  /// the committed prefix. Used by Open and by rotation verification.
  static Status ScanChain(storage::DiskManager* disk, storage::PageId head,
                          ScanResult* out, std::vector<storage::PageId>* pages,
                          std::string* stream);

  /// Write `stream` as a fresh chain; returns the page ids used.
  Status WriteChain(const std::string& stream,
                    std::vector<storage::PageId>* pages) const;

  /// Flush the in-memory tail page image to disk.
  Status FlushTail();

  /// Point the anchor's older slot at `head` with the next generation.
  Status WriteAnchor(storage::PageId head);

  storage::DiskManager* disk_;
  storage::PageId anchor_page_;
  uint64_t generation_ = 0;

  std::vector<storage::PageId> chain_;  // head first
  uint64_t chain_bytes_ = 0;            // framed stream bytes in chain
  /// In-memory image of the last chain page (header + payload), mirrored
  /// to disk by FlushTail after each append.
  std::string tail_image_;
  uint32_t tail_used_ = 0;  // payload bytes used in the tail page

  WalStats stats_;
};

}  // namespace pictdb::wal

#endif  // PICTDB_WAL_WAL_H_
