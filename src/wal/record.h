#ifndef PICTDB_WAL_RECORD_H_
#define PICTDB_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "geom/rect.h"
#include "rtree/node.h"
#include "rtree/rtree.h"

namespace pictdb::wal {

/// Logical record types in the write-ahead log.
///
/// The log is a snapshot + redo design: every chain starts with a
/// complete snapshot group (kSnapshotBegin / kSnapshotChunk* /
/// kSnapshotEnd) capturing the full leaf-entry multiset at rotation
/// time, followed by op records in commit order. Recovery never trusts
/// the on-disk tree pages after an unclean shutdown — it rebuilds from
/// snapshot + ops, which sidesteps the classic redo-against-torn-base
/// problem without LSNs on every page.
enum class RecordType : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kUpdate = 3,
  kSnapshotBegin = 4,
  kSnapshotChunk = 5,
  kSnapshotEnd = 6,
  /// Appended (after a checkpoint + pool flush + sync) by a clean
  /// Close(). When it is the last committed record, the on-disk tree
  /// equals the logged state and open can skip the rebuild.
  kCleanShutdown = 7,
  /// Zero-payload filler emitted by rotation to page-align the snapshot
  /// group. Appends rewrite only the tail page of the chain; keeping the
  /// snapshot on pages of its own means no later torn append can damage
  /// it. Skipped during replay.
  kPadding = 8,
};

/// One decoded WAL record. Field use by type:
///  - kInsert/kDelete: `a` + `rid_a`
///  - kUpdate: old entry in `a`/`rid_a`, new entry in `b`/`rid_b`
///  - kSnapshotBegin: `count` (total entries in the group) + tree_*
///    (the RTreeOptions needed to rebuild when the meta page is torn)
///  - kSnapshotChunk: `entries`
struct Record {
  RecordType type = RecordType::kInsert;
  uint64_t lsn = 0;

  geom::Rect a;
  geom::Rect b;
  uint64_t rid_a = 0;  // rtree::Entry payload encoding
  uint64_t rid_b = 0;

  /// kSnapshotBegin: total entries in the group. kPadding: filler bytes
  /// after the fixed header.
  uint64_t count = 0;
  uint16_t tree_max_entries = 0;
  uint16_t tree_min_entries = 0;
  uint8_t tree_split = 0;
  uint8_t tree_forced_reinsert = 0;

  std::vector<rtree::Entry> entries;
};

/// Payload byte-size ceiling; anything larger on disk is a torn tail,
/// not a record.
inline constexpr uint32_t kMaxRecordPayload = 1u << 20;

/// Entries per kSnapshotChunk record (keeps records well under
/// kMaxRecordPayload while amortizing framing overhead).
inline constexpr size_t kSnapshotChunkEntries = 64;

/// Serialize the record payload (type byte onward, no frame).
std::string EncodeRecordPayload(const Record& record);

/// Parse a payload produced by EncodeRecordPayload. Corruption on any
/// structural violation (unknown type, length mismatch).
StatusOr<Record> DecodeRecordPayload(std::string_view payload);

/// Build the snapshot group (begin / chunks / end) for `entries` under
/// `options`, all stamped with `lsn`.
std::vector<Record> BuildSnapshotRecords(
    const std::vector<rtree::Entry>& entries,
    const rtree::RTreeOptions& options, uint64_t lsn);

}  // namespace pictdb::wal

#endif  // PICTDB_WAL_RECORD_H_
