#ifndef PICTDB_NET_SERVER_H_
#define PICTDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "net/protocol.h"
#include "net/result_cache.h"
#include "net/token_bucket.h"
#include "service/query_service.h"
#include "storage/fault_injection.h"

namespace pictdb::net {

struct ServerOptions {
  /// Unix-domain listener path (empty = no UDS listener). The file is
  /// unlinked and rebound on Start.
  std::string unix_path;
  /// TCP listener: -1 = no TCP, 0 = ephemeral (read back via tcp_port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";

  /// Concurrent client connections; one past the limit is greeted with a
  /// ResourceExhausted error frame and closed.
  size_t max_connections = 64;

  /// Per-connection token-bucket quota (0 = unlimited). Requests beyond
  /// the bucket get a ResourceExhausted reply and cost nothing.
  double quota_qps = 0.0;
  double quota_burst = 16.0;

  /// Per-connection in-flight request bound; combined with the query
  /// service's bounded admission queue this is the backpressure path —
  /// both reject with ResourceExhausted (the binary protocol's "429").
  size_t max_inflight_per_conn = 64;

  /// Hot-window result cache budget in payload bytes (0 = disabled).
  size_t cache_bytes = 0;
  size_t cache_shards = 8;

  /// Honor kSetFaults / kInvalidate admin messages (off by default:
  /// fault injection over the wire is a test/soak facility).
  bool allow_admin = false;

  /// Honor kInsert / kDelete / kUpdate write messages (off by default;
  /// requires a wal::DurableRTree bound to the service via BindWriter).
  /// Every committed write bumps the result-cache epoch through the
  /// service commit hook, which Start() installs when this is set.
  bool allow_writes = false;
};

/// Plain-value image of the serving-tier counters.
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t frames_received = 0;
  uint64_t protocol_errors = 0;
  uint64_t quota_rejections = 0;
  uint64_t backpressure_rejections = 0;
  uint64_t cache_hits = 0;
};

/// poll(2)-driven binary-protocol front door over one QueryService.
///
/// Threading model: one serving thread owns every socket and all
/// connection state — accept, frame reassembly, quota/admission checks,
/// and response writes all happen there, so connection state needs no
/// locks. Query execution happens on the QueryService's workers via
/// SubmitWithCallback; completion callbacks only encode the response,
/// append it to a mutex-guarded outbox, and wake the serving thread
/// through a self-pipe. The serving thread never blocks on a query and
/// the workers never touch a socket.
///
/// Admission layering (first refusal wins, every refusal is a structured
/// ResourceExhausted reply):
///   1. connection limit (at accept)
///   2. per-connection token-bucket quota
///   3. per-connection in-flight bound
///   4. the QueryService's bounded admission queue
///
/// Graceful drain (SIGINT/SIGTERM via InstallSignalHandlers, or
/// RequestDrain): stop accepting and stop reading, let every admitted
/// query finish through the service, flush all responses, close, and
/// exit the serving thread. Stats survive for DumpStats.
class Server {
 public:
  /// Everything the server serves. `service` is required and must
  /// outlive the server; `overlay` (join target, overlay id 0) and
  /// `fault_disk` (admin fault episodes) are optional.
  struct Bindings {
    service::QueryService* service = nullptr;
    const rtree::RTree* overlay = nullptr;
    storage::FaultInjectionDiskManager* fault_disk = nullptr;
  };

  Server(const Bindings& bindings, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the serving thread.
  Status Start();

  /// Asynchronously begin graceful drain (signal-safe trigger is the
  /// self-pipe; this method itself is for programmatic use).
  void RequestDrain();

  /// Wait for the serving thread to exit (after a drain).
  void Join();

  /// RequestDrain + Join. Idempotent; also run by the destructor.
  void Stop();

  /// Route SIGINT/SIGTERM to this server's drain path. The handler only
  /// sets a flag and writes the self-pipe (async-signal-safe). Pass
  /// nullptr to detach before the server dies.
  static void InstallSignalHandlers(Server* server);

  /// Actual TCP port (after Start with tcp_port=0) or -1.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStatsSnapshot Stats() const;
  const ResultCache& cache() const { return cache_; }
  /// Whole-cache invalidation (epoch bump). Committed writes reach this
  /// through the service commit hook; kInvalidate is the manual override.
  void InvalidateCache() { cache_.BumpEpoch(); }

  /// One-stop shutdown report: serving-tier counters, per-variant
  /// latency summaries, and cache counters, to `out` (the drain path
  /// prints this to stderr).
  void DumpStats(std::FILE* out) const;

 private:
  struct Connection;
  struct PendingResponse {
    uint64_t conn_id = 0;
    std::string frame;        // fully encoded, ready to write
    bool query_completion = false;  // decrements in-flight accounting
  };

  void Run();  // serving thread main
  void AcceptFrom(int listen_fd);
  void CloseListeners();
  /// Read + frame-reassemble one connection; false = close it.
  bool ReadConnection(Connection* conn);
  bool FlushConnection(Connection* conn);  // false = close it
  void HandleFrame(Connection* conn, const FrameHeader& header,
                   std::string_view payload);
  void HandleQueryRequest(Connection* conn, const FrameHeader& header,
                          Request request);
  void HandleWriteRequest(Connection* conn, const FrameHeader& header,
                          const Request& request);
  void ReplyNow(Connection* conn, MsgType type, uint32_t flags,
                uint32_t request_id, std::string_view payload);
  void ReplyError(Connection* conn, uint32_t request_id,
                  const Status& status);
  StatsResponse BuildStats() const;
  void ApplyPending() EXCLUDES(mu_);
  void EnqueueFromWorker(PendingResponse pending) EXCLUDES(mu_);
  void WakeLoop();
  void CloseConnection(uint64_t conn_id);

  Bindings bindings_;
  ServerOptions options_;
  ResultCache cache_;

  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  // Owned by the serving thread exclusively after Start().
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  size_t inflight_total_ = 0;

  mutable Mutex mu_;
  std::deque<PendingResponse> pending_ GUARDED_BY(mu_);

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  std::thread serve_thread_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> quota_rejections_{0};
  std::atomic<uint64_t> backpressure_rejections_{0};
};

}  // namespace pictdb::net

#endif  // PICTDB_NET_SERVER_H_
