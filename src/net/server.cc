#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <utility>
#include <vector>

namespace pictdb::net {
namespace {

// Signal → drain plumbing. The handler may only touch lock-free atomics
// and write(2); the serving loop of the registered server picks the flag
// up on its next wake. Registration is per-process, latest wins.
std::atomic<Server*> g_signal_server{nullptr};
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_drain{false};

void OnDrainSignal(int /*signo*/) {
  g_signal_drain.store(true, std::memory_order_release);
  const int fd = g_signal_wake_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK) failed");
  }
  (void)fcntl(fd, F_SETFD, FD_CLOEXEC);
  return Status::OK();
}

WireStats ToWireStats(const service::QueryResult& result) {
  WireStats s;
  s.latency_us = result.latency_us;
  s.nodes_visited = result.stats.nodes_visited;
  s.entries_tested = result.stats.entries_tested;
  s.results = result.stats.results;
  s.skipped_subtrees = result.skipped_subtrees;
  s.degraded = result.degraded;
  return s;
}

WireHit ToWireHit(const rtree::LeafHit& hit) {
  WireHit w;
  w.mbr = hit.mbr;
  w.rid.page_id = hit.rid.page_id;
  w.rid.slot = hit.rid.slot;
  return w;
}

/// Shape the service outcome into the response kind the request implies.
Response BuildQueryResponse(MsgType request_type,
                            const service::QueryResult& result) {
  Response response;
  switch (request_type) {
    case MsgType::kWindow:
    case MsgType::kPoint: {
      HitsResponse body;
      body.stats = ToWireStats(result);
      body.hits.reserve(result.hits.size());
      for (const rtree::LeafHit& hit : result.hits) {
        body.hits.push_back(ToWireHit(hit));
      }
      response.body = std::move(body);
      break;
    }
    case MsgType::kKnn: {
      NeighborsResponse body;
      body.stats = ToWireStats(result);
      body.neighbors.reserve(result.neighbors.size());
      for (const rtree::Neighbor& n : result.neighbors) {
        WireNeighbor w;
        w.hit = ToWireHit(n.hit);
        w.distance = n.distance;
        body.neighbors.push_back(w);
      }
      response.body = std::move(body);
      break;
    }
    case MsgType::kJoin: {
      JoinResponse body;
      body.stats = ToWireStats(result);
      body.pairs = result.join_pairs;
      response.body = body;
      break;
    }
    case MsgType::kPsql: {
      TableResponse body;
      body.stats = ToWireStats(result);
      if (result.table.has_value()) {
        const psql::ResultSet& table = *result.table;
        body.columns = table.columns;
        body.rows.reserve(table.rows.size());
        for (const auto& row : table.rows) {
          std::vector<std::string> cells;
          cells.reserve(row.size());
          for (const rel::Value& value : row) cells.push_back(value.ToString());
          body.rows.push_back(std::move(cells));
        }
        body.row_rids.reserve(table.row_rids.size());
        for (const auto& rids : table.row_rids) {
          std::vector<WireRid> wire_rids;
          wire_rids.reserve(rids.size());
          for (const storage::Rid& rid : rids) {
            wire_rids.push_back(WireRid{rid.page_id, rid.slot});
          }
          body.row_rids.push_back(std::move(wire_rids));
        }
      }
      response.body = std::move(body);
      break;
    }
    case MsgType::kBatchWindow: {
      BatchHitsResponse body;
      body.stats = ToWireStats(result);
      body.per_window.reserve(result.batch.size());
      for (const rtree::BatchHits& bh : result.batch) {
        BatchWindowHits bw;
        bw.degraded = bh.degraded;
        bw.hits.reserve(bh.hits.size());
        for (const rtree::LeafHit& hit : bh.hits) {
          bw.hits.push_back(ToWireHit(hit));
        }
        body.per_window.push_back(std::move(bw));
      }
      response.body = std::move(body);
      break;
    }
    default:
      response.body = ErrorResponse::FromStatus(
          Status::Internal("BuildQueryResponse on non-query type"));
      break;
  }
  return response;
}

}  // namespace

/// Per-client connection state, owned exclusively by the serving thread.
struct Server::Connection {
  Connection(uint64_t id_in, int fd_in, const TokenBucket& bucket_in)
      : id(id_in), fd(fd_in), bucket(bucket_in) {}

  uint64_t id;
  int fd;
  std::string rbuf;               // frame reassembly buffer
  std::deque<std::string> wbuf;   // encoded frames awaiting send
  size_t woff = 0;                // bytes of wbuf.front() already sent
  TokenBucket bucket;
  size_t inflight = 0;            // queries submitted, response not yet out
  bool close_after_flush = false;
};

Server::Server(const Bindings& bindings, const ServerOptions& options)
    : bindings_(bindings),
      options_(options),
      cache_(options.cache_bytes, options.cache_shards) {}

Server::~Server() {
  Stop();
  if (g_signal_server.load(std::memory_order_acquire) == this) {
    InstallSignalHandlers(nullptr);
  }
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
}

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already started");
  }
  if (bindings_.service == nullptr) {
    return Status::InvalidArgument("server needs a QueryService");
  }
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return Status::InvalidArgument("no listener configured");
  }
  if (options_.allow_writes) {
    // Every committed mutation makes cached query answers stale; the
    // commit hook runs on the committing worker, after the WAL fsync.
    bindings_.service->SetCommitHook([this] { InvalidateCache(); });
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return Status::IOError("pipe() failed");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  PICTDB_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  PICTDB_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    memcpy(addr.sun_path, options_.unix_path.c_str(),
           options_.unix_path.size() + 1);
    unix_listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listen_fd_ < 0) return Status::IOError("socket(AF_UNIX) failed");
    (void)unlink(options_.unix_path.c_str());
    if (bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return Status::IOError("bind(" + options_.unix_path +
                             ") failed: " + strerror(errno));
    }
    if (listen(unix_listen_fd_, 128) != 0) {
      return Status::IOError("listen(unix) failed");
    }
    PICTDB_RETURN_IF_ERROR(SetNonBlocking(unix_listen_fd_));
  }

  if (options_.tcp_port >= 0) {
    tcp_listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) return Status::IOError("socket(AF_INET) failed");
    const int one = 1;
    (void)setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad tcp host: " + options_.tcp_host);
    }
    if (bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      return Status::IOError(std::string("bind(tcp) failed: ") +
                             strerror(errno));
    }
    if (listen(tcp_listen_fd_, 128) != 0) {
      return Status::IOError("listen(tcp) failed");
    }
    PICTDB_RETURN_IF_ERROR(SetNonBlocking(tcp_listen_fd_));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
      tcp_port_ = ntohs(bound.sin_port);
    }
  }

  started_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  serve_thread_ = std::thread(&Server::Run, this);
  return Status::OK();
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  WakeLoop();
}

void Server::Join() {
  if (serve_thread_.joinable()) serve_thread_.join();
}

void Server::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  RequestDrain();
  Join();
}

void Server::InstallSignalHandlers(Server* server) {
  if (server != nullptr) {
    g_signal_drain.store(false, std::memory_order_release);
    g_signal_wake_fd.store(server->wake_write_fd_, std::memory_order_release);
    g_signal_server.store(server, std::memory_order_release);
    struct sigaction action = {};
    action.sa_handler = OnDrainSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    (void)sigaction(SIGINT, &action, nullptr);
    (void)sigaction(SIGTERM, &action, nullptr);
  } else {
    g_signal_server.store(nullptr, std::memory_order_release);
    g_signal_wake_fd.store(-1, std::memory_order_release);
  }
}

ServerStatsSnapshot Server::Stats() const {
  ServerStatsSnapshot s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.quota_rejections = quota_rejections_.load(std::memory_order_relaxed);
  s.backpressure_rejections =
      backpressure_rejections_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.Stats().hits;
  return s;
}

void Server::DumpStats(std::FILE* out) const {
  const ServerStatsSnapshot net = Stats();
  fprintf(out,
          "net: accepted=%llu rejected=%llu frames=%llu proto_errors=%llu "
          "quota_rej=%llu backpressure_rej=%llu\n",
          static_cast<unsigned long long>(net.connections_accepted),
          static_cast<unsigned long long>(net.connections_rejected),
          static_cast<unsigned long long>(net.frames_received),
          static_cast<unsigned long long>(net.protocol_errors),
          static_cast<unsigned long long>(net.quota_rejections),
          static_cast<unsigned long long>(net.backpressure_rejections));
  const ResultCacheStats cache = cache_.Stats();
  fprintf(out,
          "cache: hits=%llu misses=%llu insertions=%llu evictions=%llu "
          "invalidations=%llu bytes=%llu entries=%llu\n",
          static_cast<unsigned long long>(cache.hits),
          static_cast<unsigned long long>(cache.misses),
          static_cast<unsigned long long>(cache.insertions),
          static_cast<unsigned long long>(cache.evictions),
          static_cast<unsigned long long>(cache.invalidations),
          static_cast<unsigned long long>(cache.bytes),
          static_cast<unsigned long long>(cache.entries));
  if (bindings_.service != nullptr) {
    const service::ServiceMetricsSnapshot m = bindings_.service->Metrics();
    fprintf(out,
            "service: submitted=%llu rejected=%llu completed=%llu "
            "failed=%llu deadline=%llu degraded=%llu\n",
            static_cast<unsigned long long>(m.submitted),
            static_cast<unsigned long long>(m.rejected),
            static_cast<unsigned long long>(m.completed),
            static_cast<unsigned long long>(m.failed),
            static_cast<unsigned long long>(m.deadline_exceeded),
            static_cast<unsigned long long>(m.degraded));
    for (size_t v = 0; v < service::kQueryVariants; ++v) {
      fprintf(out, "latency[%s]: %s\n", service::kQueryVariantNames[v],
              m.variant_latency[v].Summary().c_str());
    }
    const service::WriteMetricsSnapshot wm =
        bindings_.service->write_metrics();
    if (wm.committed() + wm.failed + wm.not_found > 0) {
      fprintf(out,
              "writes: inserts=%llu deletes=%llu updates=%llu failed=%llu "
              "not_found=%llu\n",
              static_cast<unsigned long long>(wm.inserts),
              static_cast<unsigned long long>(wm.deletes),
              static_cast<unsigned long long>(wm.updates),
              static_cast<unsigned long long>(wm.failed),
              static_cast<unsigned long long>(wm.not_found));
      fprintf(out, "latency[commit]: %s\n",
              wm.commit_latency.Summary().c_str());
    }
  }
}

void Server::WakeLoop() {
  const int fd = wake_write_fd_;
  if (fd < 0) return;
  const char byte = 'w';
  // A full pipe already guarantees a pending wake; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
}

void Server::EnqueueFromWorker(PendingResponse pending) {
  {
    MutexLock lock(&mu_);
    pending_.push_back(std::move(pending));
  }
  WakeLoop();
}

void Server::ApplyPending() {
  std::deque<PendingResponse> batch;
  {
    MutexLock lock(&mu_);
    batch.swap(pending_);
  }
  for (PendingResponse& p : batch) {
    if (p.query_completion && inflight_total_ > 0) --inflight_total_;
    auto it = conns_.find(p.conn_id);
    if (it == conns_.end()) continue;  // client left before the answer
    Connection* conn = it->second.get();
    if (p.query_completion && conn->inflight > 0) --conn->inflight;
    conn->wbuf.push_back(std::move(p.frame));
  }
}

void Server::CloseListeners() {
  if (unix_listen_fd_ >= 0) {
    close(unix_listen_fd_);
    unix_listen_fd_ = -1;
    if (!options_.unix_path.empty()) (void)unlink(options_.unix_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  close(it->second->fd);
  // In-flight queries for this connection keep inflight_total_ raised
  // until their callbacks land in ApplyPending (which tolerates the
  // missing conn), so drain still waits for them.
  conns_.erase(it);
}

void Server::AcceptFrom(int listen_fd) {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or transient accept failure: retry next round
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    if (conns_.size() >= options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      Response response;
      response.body = ErrorResponse::FromStatus(
          Status::ResourceExhausted("connection limit reached"));
      const std::string frame = EncodeFrame(
          MsgType::kError, 0, 0, EncodeResponsePayload(response));
      (void)send(fd, frame.data(), frame.size(),
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t id = next_conn_id_++;
    conns_.emplace(
        id, std::make_unique<Connection>(
                id, fd,
                TokenBucket(options_.quota_qps, options_.quota_burst,
                            std::chrono::steady_clock::now())));
  }
}

void Server::ReplyNow(Connection* conn, MsgType type, uint32_t flags,
                      uint32_t request_id, std::string_view payload) {
  conn->wbuf.push_back(EncodeFrame(type, flags, request_id, payload));
}

void Server::ReplyError(Connection* conn, uint32_t request_id,
                        const Status& status) {
  Response response;
  response.body = ErrorResponse::FromStatus(status);
  ReplyNow(conn, MsgType::kError, 0, request_id,
           EncodeResponsePayload(response));
}

StatsResponse Server::BuildStats() const {
  StatsResponse s;
  const service::ServiceMetricsSnapshot m = bindings_.service->Metrics();
  s.submitted = m.submitted;
  s.rejected = m.rejected;
  s.completed = m.completed;
  s.failed = m.failed;
  s.deadline_exceeded = m.deadline_exceeded;
  s.degraded = m.degraded;
  s.variant_latency = m.variant_latency;

  const ResultCacheStats cache = cache_.Stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_insertions = cache.insertions;
  s.cache_evictions = cache.evictions;
  s.cache_invalidations = cache.invalidations;
  s.cache_bytes = cache.bytes;
  s.cache_entries = cache.entries;

  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.quota_rejections = quota_rejections_.load(std::memory_order_relaxed);
  s.backpressure_rejections =
      backpressure_rejections_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

void Server::HandleQueryRequest(Connection* conn, const FrameHeader& header,
                                Request request) {
  // Admission layering: quota, then the per-connection in-flight bound.
  // The service's bounded queue is the final gate below.
  if (!conn->bucket.TryAcquire(std::chrono::steady_clock::now())) {
    quota_rejections_.fetch_add(1, std::memory_order_relaxed);
    ReplyError(conn, header.request_id,
               Status::ResourceExhausted("per-client quota exceeded"));
    return;
  }
  if (conn->inflight >= options_.max_inflight_per_conn) {
    backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
    ReplyError(conn, header.request_id,
               Status::ResourceExhausted("too many in-flight requests"));
    return;
  }

  std::string key = CacheKey(request);
  std::string cached;  // 1 response-type byte + payload
  if (cache_.Lookup(key, &cached) && !cached.empty()) {
    const MsgType cached_type = static_cast<MsgType>(
        static_cast<uint8_t>(cached[0]));
    ReplyNow(conn, cached_type, kFlagCached, header.request_id,
             std::string_view(cached).substr(1));
    return;
  }

  service::Query query;
  if (const auto* window = std::get_if<WindowRequest>(&request.body)) {
    query = service::WindowQuery{window->window, window->contained_only};
  } else if (const auto* point = std::get_if<PointRequest>(&request.body)) {
    query = service::PointQuery{point->point};
  } else if (const auto* knn = std::get_if<KnnRequest>(&request.body)) {
    query = service::KnnQuery{knn->point, knn->k};
  } else if (const auto* join = std::get_if<JoinRequest>(&request.body)) {
    if (join->overlay != 0 || bindings_.overlay == nullptr) {
      ReplyError(conn, header.request_id,
                 Status::NotFound("no such overlay tree"));
      return;
    }
    query = service::JoinQuery{bindings_.overlay};
  } else if (const auto* psql = std::get_if<PsqlRequest>(&request.body)) {
    query = service::PsqlQuery{psql->text};
  } else if (auto* batch = std::get_if<BatchWindowRequest>(&request.body)) {
    query = service::BatchWindowQuery{std::move(batch->windows),
                                      batch->contained_only};
  } else {
    ReplyError(conn, header.request_id,
               Status::Internal("non-query request routed as query"));
    return;
  }

  service::QueryOptions query_options;
  query_options.timeout =
      std::chrono::microseconds(request.options.timeout_us);
  query_options.degraded_ok = request.options.degraded_ok;

  ++conn->inflight;
  ++inflight_total_;
  const uint64_t conn_id = conn->id;
  const uint32_t request_id = header.request_id;
  const MsgType request_type = header.type;
  const Status submit_status = bindings_.service->SubmitWithCallback(
      std::move(query), query_options,
      [this, conn_id, request_id, request_type,
       key = std::move(key)](StatusOr<service::QueryResult> outcome) {
        PendingResponse pending;
        pending.conn_id = conn_id;
        pending.query_completion = true;
        if (!outcome.ok()) {
          Response response;
          response.body = ErrorResponse::FromStatus(outcome.status());
          pending.frame = EncodeFrame(MsgType::kError, 0, request_id,
                                      EncodeResponsePayload(response));
        } else {
          const service::QueryResult& result = *outcome;
          const Response response = BuildQueryResponse(request_type, result);
          const std::string payload = EncodeResponsePayload(response);
          const MsgType response_type = ResponseMsgType(response);
          if (!result.degraded && payload.size() < kMaxPayloadBytes) {
            // Cache only complete OK answers, with the response type
            // prefixed so a hit can replay the exact frame.
            std::string value;
            value.reserve(payload.size() + 1);
            value.push_back(static_cast<char>(response_type));
            value.append(payload);
            cache_.Insert(key, value);
          }
          pending.frame =
              EncodeFrame(response_type,
                          result.degraded ? kFlagDegraded : 0u, request_id,
                          payload);
        }
        EnqueueFromWorker(std::move(pending));
      });
  if (!submit_status.ok()) {
    // Rejected at the service's bounded admission queue (the last
    // backpressure layer): undo accounting and shed with the same
    // structured ResourceExhausted the other layers use.
    --conn->inflight;
    --inflight_total_;
    backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
    ReplyError(conn, request_id, submit_status);
  }
}

void Server::HandleWriteRequest(Connection* conn, const FrameHeader& header,
                                const Request& request) {
  // Writes share the query admission layers: quota, per-connection
  // in-flight bound, then the service's bounded queue.
  if (!conn->bucket.TryAcquire(std::chrono::steady_clock::now())) {
    quota_rejections_.fetch_add(1, std::memory_order_relaxed);
    ReplyError(conn, header.request_id,
               Status::ResourceExhausted("per-client quota exceeded"));
    return;
  }
  if (conn->inflight >= options_.max_inflight_per_conn) {
    backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
    ReplyError(conn, header.request_id,
               Status::ResourceExhausted("too many in-flight requests"));
    return;
  }

  service::WriteOp op;
  if (const auto* ins = std::get_if<InsertRequest>(&request.body)) {
    op = service::InsertOp{ins->mbr,
                           storage::Rid{ins->rid.page_id, ins->rid.slot}};
  } else if (const auto* del = std::get_if<DeleteRequest>(&request.body)) {
    op = service::DeleteOp{del->mbr,
                           storage::Rid{del->rid.page_id, del->rid.slot}};
  } else if (const auto* upd = std::get_if<UpdateRequest>(&request.body)) {
    op = service::UpdateOp{
        upd->old_mbr, storage::Rid{upd->old_rid.page_id, upd->old_rid.slot},
        upd->new_mbr, storage::Rid{upd->new_rid.page_id, upd->new_rid.slot}};
  } else {
    ReplyError(conn, header.request_id,
               Status::Internal("non-write request routed as write"));
    return;
  }

  ++conn->inflight;
  ++inflight_total_;
  const uint64_t conn_id = conn->id;
  const uint32_t request_id = header.request_id;
  const Status submit_status = bindings_.service->SubmitWriteWithCallback(
      std::move(op), [this, conn_id, request_id](Status outcome) {
        // The kOk frame is only built after ExecuteWrite returned, i.e.
        // after the WAL append + fsync: an acked write is durable.
        PendingResponse pending;
        pending.conn_id = conn_id;
        pending.query_completion = true;
        Response response;
        if (outcome.ok()) {
          response.body = OkResponse{};
          pending.frame = EncodeFrame(MsgType::kOk, 0, request_id,
                                      EncodeResponsePayload(response));
        } else {
          response.body = ErrorResponse::FromStatus(outcome);
          pending.frame = EncodeFrame(MsgType::kError, 0, request_id,
                                      EncodeResponsePayload(response));
        }
        EnqueueFromWorker(std::move(pending));
      });
  if (!submit_status.ok()) {
    --conn->inflight;
    --inflight_total_;
    backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
    ReplyError(conn, request_id, submit_status);
  }
}

void Server::HandleFrame(Connection* conn, const FrameHeader& header,
                         std::string_view payload) {
  if (!IsRequestType(header.type)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ReplyError(conn, header.request_id,
               Status::InvalidArgument("response-typed frame sent to server"));
    conn->close_after_flush = true;
    return;
  }
  StatusOr<Request> decoded = DecodeRequestPayload(header.type, payload);
  if (!decoded.ok()) {
    // The frame itself was well-formed, so the stream is still in sync:
    // reply with a structured error and keep the connection.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ReplyError(conn, header.request_id, decoded.status());
    return;
  }
  Request request = std::move(decoded).value();

  switch (header.type) {
    case MsgType::kPing: {
      Response response;
      response.body = PongResponse{};
      ReplyNow(conn, MsgType::kPong, 0, header.request_id,
               EncodeResponsePayload(response));
      return;
    }
    case MsgType::kStats: {
      Response response;
      response.body = BuildStats();
      ReplyNow(conn, MsgType::kStatsResult, 0, header.request_id,
               EncodeResponsePayload(response));
      return;
    }
    case MsgType::kSetFaults: {
      if (!options_.allow_admin || bindings_.fault_disk == nullptr) {
        ReplyError(conn, header.request_id,
                   Status::NotSupported("admin commands disabled"));
        return;
      }
      const auto& faults = std::get<SetFaultsRequest>(request.body);
      if (faults.transient_read_error_rate == 0.0 &&
          faults.read_bit_flip_rate == 0.0) {
        bindings_.fault_disk->ClearFaults();
      } else {
        storage::FaultPlan plan;
        plan.transient_read_error_rate = faults.transient_read_error_rate;
        plan.read_bit_flip_rate = faults.read_bit_flip_rate;
        bindings_.fault_disk->SetPlan(plan);
      }
      Response response;
      response.body = OkResponse{};
      ReplyNow(conn, MsgType::kOk, 0, header.request_id,
               EncodeResponsePayload(response));
      return;
    }
    case MsgType::kInvalidate: {
      if (!options_.allow_admin) {
        ReplyError(conn, header.request_id,
                   Status::NotSupported("admin commands disabled"));
        return;
      }
      cache_.BumpEpoch();
      Response response;
      response.body = OkResponse{};
      ReplyNow(conn, MsgType::kOk, 0, header.request_id,
               EncodeResponsePayload(response));
      return;
    }
    case MsgType::kInsert:
    case MsgType::kDelete:
    case MsgType::kUpdate: {
      if (!options_.allow_writes) {
        ReplyError(conn, header.request_id,
                   Status::NotSupported("writes disabled on this server"));
        return;
      }
      HandleWriteRequest(conn, header, request);
      return;
    }
    default:
      HandleQueryRequest(conn, header, std::move(request));
      return;
  }
}

bool Server::ReadConnection(Connection* conn) {
  bool peer_closed = false;
  char buf[65536];
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // hard socket error
  }

  while (conn->rbuf.size() >= kFrameHeaderSize && !conn->close_after_flush) {
    FrameHeader header;
    const Status header_status =
        DecodeFrameHeader(std::string_view(conn->rbuf), &header);
    if (!header_status.ok()) {
      // Bad magic/version/type/length: the stream can never resync, so
      // answer with a structured error and close once it is flushed.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      ReplyError(conn, 0, header_status);
      conn->close_after_flush = true;
      break;
    }
    const size_t frame_size = kFrameHeaderSize + header.payload_len;
    if (conn->rbuf.size() < frame_size) break;  // wait for the payload
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    const std::string_view payload =
        std::string_view(conn->rbuf).substr(kFrameHeaderSize,
                                            header.payload_len);
    HandleFrame(conn, header, payload);
    conn->rbuf.erase(0, frame_size);
  }
  return !peer_closed;
}

bool Server::FlushConnection(Connection* conn) {
  while (!conn->wbuf.empty()) {
    const std::string& front = conn->wbuf.front();
    const ssize_t n = send(conn->fd, front.data() + conn->woff,
                           front.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<size_t>(n);
      if (conn->woff == front.size()) {
        conn->wbuf.pop_front();
        conn->woff = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  return !conn->close_after_flush;
}

void Server::Run() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn_ids;  // parallel to pfds; 0 = not a conn
  bool listeners_open = true;

  for (;;) {
    if (g_signal_server.load(std::memory_order_acquire) == this &&
        g_signal_drain.load(std::memory_order_acquire)) {
      drain_requested_.store(true, std::memory_order_release);
    }
    const bool draining = drain_requested_.load(std::memory_order_acquire);
    if (draining && listeners_open) {
      CloseListeners();
      listeners_open = false;
    }

    ApplyPending();

    if (draining) {
      // Admitted queries finish through the service; once every response
      // is out the door we are done.
      bool all_flushed = inflight_total_ == 0;
      for (const auto& [id, conn] : conns_) {
        if (!conn->wbuf.empty()) {
          all_flushed = false;
          break;
        }
      }
      if (all_flushed) break;
    }

    pfds.clear();
    pfd_conn_ids.clear();
    pfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    pfd_conn_ids.push_back(0);
    if (listeners_open) {
      if (unix_listen_fd_ >= 0) {
        pfds.push_back(pollfd{unix_listen_fd_, POLLIN, 0});
        pfd_conn_ids.push_back(0);
      }
      if (tcp_listen_fd_ >= 0) {
        pfds.push_back(pollfd{tcp_listen_fd_, POLLIN, 0});
        pfd_conn_ids.push_back(0);
      }
    }
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      if (!draining && !conn->close_after_flush) events |= POLLIN;
      if (!conn->wbuf.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{conn->fd, events, 0});
      pfd_conn_ids.push_back(id);
    }

    const int ready = poll(pfds.data(), pfds.size(), /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;  // poll itself failed

    std::vector<uint64_t> to_close;
    for (size_t i = 0; i < pfds.size(); ++i) {
      const pollfd& p = pfds[i];
      if (p.revents == 0) continue;
      if (p.fd == wake_read_fd_) {
        char drain_buf[256];
        while (read(wake_read_fd_, drain_buf, sizeof(drain_buf)) > 0) {
        }
        continue;
      }
      if (p.fd == unix_listen_fd_ || p.fd == tcp_listen_fd_) {
        AcceptFrom(p.fd);
        continue;
      }
      const uint64_t conn_id = pfd_conn_ids[i];
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      bool keep = true;
      if (p.revents & (POLLERR | POLLNVAL)) keep = false;
      if (keep && (p.revents & POLLIN)) keep = ReadConnection(conn);
      if (keep && (p.revents & (POLLOUT | POLLHUP)) &&
          !conn->wbuf.empty()) {
        keep = FlushConnection(conn);
      }
      if (keep && conn->close_after_flush && conn->wbuf.empty()) {
        keep = false;
      }
      if (keep && (p.revents & POLLHUP) && conn->wbuf.empty()) keep = false;
      if (!keep) to_close.push_back(conn_id);
    }
    for (const uint64_t id : to_close) CloseConnection(id);

    // Opportunistic flush for responses enqueued by ApplyPending or
    // HandleFrame this round (the sockets are almost always writable).
    std::vector<uint64_t> flush_failed;
    for (const auto& [id, conn] : conns_) {
      if (conn->wbuf.empty()) {
        if (conn->close_after_flush) flush_failed.push_back(id);
        continue;
      }
      if (!FlushConnection(conn.get())) flush_failed.push_back(id);
    }
    for (const uint64_t id : flush_failed) CloseConnection(id);
  }

  // Drained: everything admitted has been answered and flushed. The
  // wake pipe stays open until the destructor — late worker callbacks
  // may still write it.
  for (const auto& [id, conn] : conns_) close(conn->fd);
  conns_.clear();
  CloseListeners();
  running_.store(false, std::memory_order_release);
}

}  // namespace pictdb::net
