#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <utility>

namespace pictdb::net {

StatusOr<Client> Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long");
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket(AF_UNIX) failed");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message =
        "connect(" + path + ") failed: " + strerror(errno);
    close(fd);
    return Status::IOError(message);
  }
  return Client(fd);
}

StatusOr<Client> Client::ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + host);
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket(AF_INET) failed");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = "connect(" + host + ":" +
                                std::to_string(port) +
                                ") failed: " + strerror(errno);
    close(fd);
    return Status::IOError(message);
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::SetRecvTimeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError("setsockopt(SO_RCVTIMEO) failed");
  }
  return Status::OK();
}

Status Client::WriteAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send failed: ") + strerror(errno));
  }
  return Status::OK();
}

Status Client::ReadExact(char* out, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t got = recv(fd_, out + off, n - off, 0);
    if (got > 0) {
      off += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timed out");
    }
    return Status::IOError(std::string("recv failed: ") + strerror(errno));
  }
  return Status::OK();
}

Status Client::SendRaw(std::string_view bytes) { return WriteAll(bytes); }

StatusOr<std::string> Client::ReadFrameRaw(FrameHeader* header_out) {
  char header_bytes[kFrameHeaderSize];
  PICTDB_RETURN_IF_ERROR(ReadExact(header_bytes, sizeof(header_bytes)));
  FrameHeader header;
  PICTDB_RETURN_IF_ERROR(DecodeFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)), &header));
  std::string payload(header.payload_len, '\0');
  if (header.payload_len > 0) {
    PICTDB_RETURN_IF_ERROR(ReadExact(payload.data(), payload.size()));
  }
  if (header_out != nullptr) *header_out = header;
  return payload;
}

StatusOr<Client::Result> Client::Call(const Request& request) {
  if (fd_ < 0) return Status::IOError("client not connected");
  const uint32_t request_id = next_request_id_++;
  const std::string frame = EncodeFrame(RequestMsgType(request), 0,
                                        request_id,
                                        EncodeRequestPayload(request));
  PICTDB_RETURN_IF_ERROR(WriteAll(frame));

  FrameHeader header;
  PICTDB_ASSIGN_OR_RETURN(std::string payload, ReadFrameRaw(&header));
  if (header.request_id != request_id) {
    return Status::Internal("response id mismatch (pipelining unsupported)");
  }
  PICTDB_ASSIGN_OR_RETURN(Response response,
                          DecodeResponsePayload(header.type, payload));
  if (const auto* error = std::get_if<ErrorResponse>(&response.body)) {
    return error->ToStatus();
  }
  Result result;
  result.response = std::move(response);
  result.flags = header.flags;
  result.request_id = header.request_id;
  return result;
}

StatusOr<Client::Result> Client::Window(const geom::Rect& window,
                                        bool contained_only,
                                        const WireOptions& options) {
  Request request;
  request.body = WindowRequest{window, contained_only};
  request.options = options;
  return Call(request);
}

StatusOr<Client::Result> Client::Point(const geom::Point& point,
                                       const WireOptions& options) {
  Request request;
  request.body = PointRequest{point};
  request.options = options;
  return Call(request);
}

StatusOr<Client::Result> Client::Knn(const geom::Point& point, uint32_t k,
                                     const WireOptions& options) {
  Request request;
  request.body = KnnRequest{point, k};
  request.options = options;
  return Call(request);
}

StatusOr<Client::Result> Client::Join(uint32_t overlay,
                                      const WireOptions& options) {
  Request request;
  request.body = JoinRequest{overlay};
  request.options = options;
  return Call(request);
}

StatusOr<Client::Result> Client::Psql(const std::string& text,
                                      const WireOptions& options) {
  Request request;
  request.body = PsqlRequest{text};
  request.options = options;
  return Call(request);
}

StatusOr<Client::Result> Client::BatchWindow(
    const std::vector<geom::Rect>& windows, bool contained_only,
    const WireOptions& options) {
  Request request;
  request.body = BatchWindowRequest{windows, contained_only};
  request.options = options;
  return Call(request);
}

Status Client::Ping() {
  Request request;
  request.body = PingRequest{};
  return Call(request).status();
}

StatusOr<StatsResponse> Client::ServerStats() {
  Request request;
  request.body = StatsRequest{};
  PICTDB_ASSIGN_OR_RETURN(Result result, Call(request));
  auto* stats = std::get_if<StatsResponse>(&result.response.body);
  if (stats == nullptr) {
    return Status::Internal("stats request answered with wrong body");
  }
  return std::move(*stats);
}

Status Client::SetFaults(double transient_read_error_rate,
                         double read_bit_flip_rate) {
  Request request;
  request.body = SetFaultsRequest{transient_read_error_rate,
                                  read_bit_flip_rate};
  return Call(request).status();
}

Status Client::InvalidateCache() {
  Request request;
  request.body = InvalidateRequest{};
  return Call(request).status();
}

Status Client::Insert(const geom::Rect& mbr, const WireRid& rid) {
  Request request;
  request.body = InsertRequest{mbr, rid};
  return Call(request).status();
}

Status Client::Delete(const geom::Rect& mbr, const WireRid& rid) {
  Request request;
  request.body = DeleteRequest{mbr, rid};
  return Call(request).status();
}

Status Client::Update(const geom::Rect& old_mbr, const WireRid& old_rid,
                      const geom::Rect& new_mbr, const WireRid& new_rid) {
  Request request;
  request.body = UpdateRequest{old_mbr, old_rid, new_mbr, new_rid};
  return Call(request).status();
}

}  // namespace pictdb::net
