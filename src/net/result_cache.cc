#include "net/result_cache.h"

#include <functional>
#include <utility>

namespace pictdb::net {

ResultCache::ResultCache(size_t capacity_bytes, size_t shards)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_bytes_(shards == 0 ? capacity_bytes
                                        : capacity_bytes / shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

void ResultCache::EraseLocked(
    Shard* shard, std::unordered_map<std::string, Entry>::iterator it) {
  shard->bytes -= it->second.payload.size() + it->first.size();
  shard->lru.erase(it->second.lru_pos);
  shard->map.erase(it);
}

bool ResultCache::Lookup(const std::string& key, std::string* payload_out) {
  if (capacity_bytes_ == 0 || key.empty()) return false;
  Shard& shard = ShardFor(key);
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second.epoch != epoch) {
    // Stale epoch: reclaim lazily and report a miss.
    EraseLocked(&shard, it);
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Refresh recency: splice the key to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  *payload_out = it->second.payload;
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(const std::string& key,
                         const std::string& payload) {
  if (capacity_bytes_ == 0 || key.empty()) return;
  const size_t entry_bytes = payload.size() + key.size();
  if (entry_bytes > shard_capacity_bytes_) return;  // would evict the world
  Shard& shard = ShardFor(key);
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) EraseLocked(&shard, it);
  shard.lru.push_front(key);
  Entry entry;
  entry.payload = payload;
  entry.epoch = epoch;
  entry.lru_pos = shard.lru.begin();
  shard.map.emplace(key, std::move(entry));
  shard.bytes += entry_bytes;
  shard.insertions.fetch_add(1, std::memory_order_relaxed);
  while (shard.bytes > shard_capacity_bytes_ && shard.lru.size() > 1) {
    auto victim = shard.map.find(shard.lru.back());
    EraseLocked(&shard, victim);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::BumpEpoch() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats s;
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    s.hits += shard->hits.load(std::memory_order_relaxed);
    s.misses += shard->misses.load(std::memory_order_relaxed);
    s.insertions += shard->insertions.load(std::memory_order_relaxed);
    s.evictions += shard->evictions.load(std::memory_order_relaxed);
    MutexLock lock(&shard->mu);
    s.bytes += shard->bytes;
    s.entries += shard->map.size();
  }
  return s;
}

}  // namespace pictdb::net
