#ifndef PICTDB_NET_PROTOCOL_H_
#define PICTDB_NET_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status_or.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "service/metrics.h"

namespace pictdb::net {

/// Versioned length-prefixed binary framing. Every message — request or
/// response, either direction — is one frame:
///
///   offset  size  field
///   0       2     magic 0xDB85 (little-endian)
///   2       1     protocol version (kProtocolVersion)
///   3       1     message type (MsgType)
///   4       4     flags (kFlagCached | kFlagDegraded)
///   8       4     request id (echoed verbatim in the response)
///   12      4     payload length in bytes (<= kMaxPayloadBytes)
///   16      -     payload (type-specific, see protocol.cc codecs)
///
/// The fixed header means a reader always knows how many bytes to wait
/// for; the magic and version are checked before the length is trusted,
/// and the length bound is checked before any allocation.
inline constexpr uint16_t kMagic = 0xDB85;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;
inline constexpr uint32_t kMaxPayloadBytes = 4u << 20;

/// Response was served from the hot-window result cache; the payload is
/// byte-identical to the originally computed response.
inline constexpr uint32_t kFlagCached = 1u << 0;
/// Response carries partial (degraded-mode) results.
inline constexpr uint32_t kFlagDegraded = 1u << 1;

enum class MsgType : uint8_t {
  // Requests.
  kWindow = 1,
  kPoint = 2,
  kKnn = 3,
  kJoin = 4,
  kPsql = 5,
  kPing = 6,
  kStats = 7,
  kSetFaults = 8,   // admin: arm/clear a server-side fault episode
  kInvalidate = 9,  // admin: bump the result-cache epoch
  // Writes (honored only when the server enables them); responses reuse
  // kOk / kError.
  kInsert = 10,
  kDelete = 11,
  kUpdate = 12,
  // Many window queries in one request, answered by one shared tree
  // descent (RTree::SearchBatch).
  kBatchWindow = 13,

  // Responses.
  kHits = 32,
  kNeighbors = 33,
  kJoinResult = 34,
  kTable = 35,
  kPong = 36,
  kStatsResult = 37,
  kOk = 38,
  kError = 39,
  kBatchHits = 40,
};

bool IsKnownMsgType(uint8_t type);
bool IsRequestType(MsgType type);
/// The query kinds (everything admission control and the result cache
/// apply to; ping/stats/admin bypass both).
bool IsQueryRequestType(MsgType type);

struct FrameHeader {
  uint16_t magic = kMagic;
  uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kPing;
  uint32_t flags = 0;
  uint32_t request_id = 0;
  uint32_t payload_len = 0;
};

/// Header + payload as wire bytes.
std::string EncodeFrame(MsgType type, uint32_t flags, uint32_t request_id,
                        std::string_view payload);

/// Decodes and validates the 16 header bytes: magic, version, known
/// type, and payload length bound. `bytes` must hold at least
/// kFrameHeaderSize bytes.
Status DecodeFrameHeader(std::string_view bytes, FrameHeader* out);

// ---------------------------------------------------------------------
// Requests.

/// Per-query execution controls carried on every query request.
struct WireOptions {
  uint64_t timeout_us = 0;   // 0 = no deadline
  bool degraded_ok = false;  // accept flagged-partial results

  friend bool operator==(const WireOptions&, const WireOptions&) = default;
};

struct WindowRequest {
  geom::Rect window;
  bool contained_only = false;
};

struct PointRequest {
  geom::Point point;
};

struct KnnRequest {
  geom::Point point;
  uint32_t k = 1;
};

/// Juxtaposition of the served tree with a server-hosted overlay tree,
/// addressed by index (clients cannot ship trees over the wire).
struct JoinRequest {
  uint32_t overlay = 0;
};

struct PsqlRequest {
  std::string text;
};

struct PingRequest {};
struct StatsRequest {};

/// Arm a fault episode on the server's FaultInjectionDiskManager (both
/// rates zero = clear all faults). Only honored when the server was
/// started with admin commands enabled.
struct SetFaultsRequest {
  double transient_read_error_rate = 0.0;
  double read_bit_flip_rate = 0.0;
};

/// Explicit whole-cache invalidation (epoch bump). Mutations invalidate
/// automatically through the service commit hook; this remains as the
/// manual/admin override.
struct InvalidateRequest {};

struct WireRid {
  uint32_t page_id = 0;
  uint16_t slot = 0;

  friend bool operator==(const WireRid&, const WireRid&) = default;
};

// Write requests. Durable on the server (WAL append + fsync) before the
// kOk response frame is sent.
struct InsertRequest {
  geom::Rect mbr;
  WireRid rid;
};

struct DeleteRequest {
  geom::Rect mbr;
  WireRid rid;
};

struct UpdateRequest {
  geom::Rect old_mbr;
  WireRid old_rid;
  geom::Rect new_mbr;
  WireRid new_rid;
};

/// Batched window search: every window answered in one shared descent.
/// Answered with BatchHitsResponse, per_window[i] for windows[i].
struct BatchWindowRequest {
  std::vector<geom::Rect> windows;
  bool contained_only = false;
};

struct Request {
  std::variant<WindowRequest, PointRequest, KnnRequest, JoinRequest,
               PsqlRequest, PingRequest, StatsRequest, SetFaultsRequest,
               InvalidateRequest, InsertRequest, DeleteRequest,
               UpdateRequest, BatchWindowRequest>
      body;
  WireOptions options;  // meaningful for the query kinds only
};

/// The three mutation kinds (write-gated on the server, never cached).
bool IsWriteRequestType(MsgType type);

MsgType RequestMsgType(const Request& request);

/// Request payload bytes (no frame header).
std::string EncodeRequestPayload(const Request& request);

/// Inverse of EncodeRequestPayload; rejects truncated payloads, trailing
/// bytes, non-finite coordinates, and oversized strings.
StatusOr<Request> DecodeRequestPayload(MsgType type,
                                       std::string_view payload);

/// Canonical result-cache key for a query request: the message type byte
/// plus the payload re-encoded with volatile fields (the timeout)
/// zeroed, so "same question, different deadline" shares one entry.
/// Empty string for non-query requests (never cached).
std::string CacheKey(const Request& request);

// ---------------------------------------------------------------------
// Responses.

/// Execution accounting echoed on every query response.
struct WireStats {
  uint64_t latency_us = 0;
  uint64_t nodes_visited = 0;
  uint64_t entries_tested = 0;
  uint64_t results = 0;
  uint64_t skipped_subtrees = 0;
  bool degraded = false;

  friend bool operator==(const WireStats&, const WireStats&) = default;
};

struct WireHit {
  geom::Rect mbr;
  WireRid rid;
};

struct WireNeighbor {
  WireHit hit;
  double distance = 0.0;
};

struct HitsResponse {
  WireStats stats;
  std::vector<WireHit> hits;
};

struct NeighborsResponse {
  WireStats stats;
  std::vector<WireNeighbor> neighbors;
};

struct JoinResponse {
  WireStats stats;
  uint64_t pairs = 0;
};

/// PSQL result rows rendered to strings (the "standard terminal" output
/// stream) plus tuple provenance rids.
struct TableResponse {
  WireStats stats;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<WireRid>> row_rids;  // one list per row
};

/// One window's share of a batched query: its hits (bit-identical,
/// including order, to asking the window alone) and whether unreadable
/// subtrees were skipped while answering it.
struct BatchWindowHits {
  bool degraded = false;
  std::vector<WireHit> hits;
};

struct BatchHitsResponse {
  WireStats stats;  // aggregate over the whole shared descent
  std::vector<BatchWindowHits> per_window;
};

struct PongResponse {};
struct OkResponse {};

struct ErrorResponse {
  uint32_t code = 0;  // StatusCode numeric value
  std::string message;

  Status ToStatus() const;
  static ErrorResponse FromStatus(const Status& status);
};

/// Server-side counters for the load generator's SLO report: service
/// metrics (with per-variant latency histograms), result-cache
/// hit/miss/eviction counters, and the serving tier's own counters.
struct StatsResponse {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t degraded = 0;
  std::array<service::HistogramSnapshot, service::kQueryVariants>
      variant_latency{};

  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_insertions = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_entries = 0;

  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t quota_rejections = 0;
  uint64_t backpressure_rejections = 0;
  uint64_t frames_received = 0;
  uint64_t protocol_errors = 0;
};

struct Response {
  std::variant<HitsResponse, NeighborsResponse, JoinResponse, TableResponse,
               PongResponse, StatsResponse, OkResponse, ErrorResponse,
               BatchHitsResponse>
      body;
};

MsgType ResponseMsgType(const Response& response);

/// Response payload bytes (no frame header).
std::string EncodeResponsePayload(const Response& response);

StatusOr<Response> DecodeResponsePayload(MsgType type,
                                         std::string_view payload);

}  // namespace pictdb::net

#endif  // PICTDB_NET_PROTOCOL_H_
