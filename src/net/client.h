#ifndef PICTDB_NET_CLIENT_H_
#define PICTDB_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status_or.h"
#include "net/protocol.h"

namespace pictdb::net {

/// Blocking binary-protocol client: one connection, one outstanding
/// request at a time (Call writes a frame and reads exactly one response
/// frame). Shared by the tests and the load generator so both speak the
/// wire format through a single implementation. Move-only; not
/// thread-safe — use one Client per thread.
class Client {
 public:
  static StatusOr<Client> ConnectUnix(const std::string& path);
  static StatusOr<Client> ConnectTcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One decoded response plus its frame-header flags.
  struct Result {
    Response response;
    uint32_t flags = 0;
    uint32_t request_id = 0;

    bool cached() const { return (flags & kFlagCached) != 0; }
    bool degraded() const { return (flags & kFlagDegraded) != 0; }
  };

  /// Full round trip: encode, send, block for the matching response.
  /// A kError response comes back as a non-OK Status carrying the
  /// server's code and message; transport failures are IOError.
  StatusOr<Result> Call(const Request& request);

  // Typed conveniences over Call.
  StatusOr<Result> Window(const geom::Rect& window, bool contained_only,
                          const WireOptions& options = {});
  StatusOr<Result> Point(const geom::Point& point,
                         const WireOptions& options = {});
  StatusOr<Result> Knn(const geom::Point& point, uint32_t k,
                       const WireOptions& options = {});
  StatusOr<Result> Join(uint32_t overlay, const WireOptions& options = {});
  StatusOr<Result> Psql(const std::string& text,
                        const WireOptions& options = {});
  /// Many windows answered in one server-side descent; the response is
  /// a BatchHitsResponse with per_window[i] for windows[i].
  StatusOr<Result> BatchWindow(const std::vector<geom::Rect>& windows,
                               bool contained_only,
                               const WireOptions& options = {});
  Status Ping();
  StatusOr<StatsResponse> ServerStats();
  Status SetFaults(double transient_read_error_rate,
                   double read_bit_flip_rate);
  Status InvalidateCache();

  /// Write conveniences (the server must run with allow_writes). An OK
  /// return means the mutation is durable on the server (WAL fsynced)
  /// and visible to subsequent queries.
  Status Insert(const geom::Rect& mbr, const WireRid& rid);
  Status Delete(const geom::Rect& mbr, const WireRid& rid);
  Status Update(const geom::Rect& old_mbr, const WireRid& old_rid,
                const geom::Rect& new_mbr, const WireRid& new_rid);

  /// Cap how long a read may block (0 restores "forever"). Lets callers
  /// detect a dead server instead of hanging.
  Status SetRecvTimeout(std::chrono::milliseconds timeout);

  /// Escape hatches for protocol-robustness tests: ship arbitrary bytes
  /// and read one raw frame back.
  Status SendRaw(std::string_view bytes);
  StatusOr<std::string> ReadFrameRaw(FrameHeader* header_out);

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  Status WriteAll(std::string_view bytes);
  Status ReadExact(char* out, size_t n);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
};

}  // namespace pictdb::net

#endif  // PICTDB_NET_CLIENT_H_
