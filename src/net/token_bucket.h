#ifndef PICTDB_NET_TOKEN_BUCKET_H_
#define PICTDB_NET_TOKEN_BUCKET_H_

#include <algorithm>
#include <chrono>

namespace pictdb::net {

/// Per-client request quota: a classic token bucket refilled at
/// `rate_per_sec` up to `burst` tokens. Time is passed in explicitly so
/// tests are deterministic (no hidden clock reads). Not internally
/// synchronized — the server touches each connection's bucket only from
/// the serving thread.
class TokenBucket {
 public:
  /// rate_per_sec <= 0 means unlimited (TryAcquire always succeeds).
  TokenBucket(double rate_per_sec, double burst,
              std::chrono::steady_clock::time_point now)
      : rate_per_sec_(rate_per_sec),
        burst_(burst < 1.0 ? 1.0 : burst),
        tokens_(burst_),
        last_refill_(now) {}

  /// Take one token if available. A denied request consumes nothing.
  bool TryAcquire(std::chrono::steady_clock::time_point now) {
    if (rate_per_sec_ <= 0.0) return true;
    Refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  void Refill(std::chrono::steady_clock::time_point now) {
    if (now <= last_refill_) return;  // clock went nowhere (or backwards)
    const double elapsed_s =
        std::chrono::duration<double>(now - last_refill_).count();
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_sec_);
    last_refill_ = now;
  }

  const double rate_per_sec_;
  const double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_refill_;
};

}  // namespace pictdb::net

#endif  // PICTDB_NET_TOKEN_BUCKET_H_
