#ifndef PICTDB_NET_RESULT_CACHE_H_
#define PICTDB_NET_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "net/protocol.h"

namespace pictdb::net {

/// Plain-value image of the cache counters.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;      // capacity-pressure removals
  uint64_t invalidations = 0;  // epoch bumps
  uint64_t bytes = 0;          // resident payload bytes
  uint64_t entries = 0;        // resident entry count
};

/// Sharded LRU cache of encoded query responses, keyed by canonicalized
/// request frames (protocol.h CacheKey). The stored value is the exact
/// response payload that was first computed, so a hit replays a
/// byte-identical response with only the frame header's kFlagCached bit
/// differing — which is what makes cache correctness cheaply testable.
///
/// Invalidation contract: the cache answers for one tree epoch. Any
/// mutation of the served tree must call BumpEpoch(). With online
/// writes enabled (ServerOptions::allow_writes) that happens
/// automatically: the server installs a service commit hook, so every
/// committed insert/delete/update bumps the epoch after its WAL fsync
/// and before the write is acked. The admin kInvalidate message remains
/// as the manual override. Entries from older epochs are treated as
/// misses and reclaimed lazily. Degraded (partial) responses must never
/// be inserted — the server only caches complete OK answers.
///
/// Thread-safe: keys hash to one of `shards` independently locked
/// shards, so worker-thread insertions and the serving thread's lookups
/// contend only within a shard.
class ResultCache {
 public:
  /// `capacity_bytes` bounds the sum of cached payload bytes across all
  /// shards (0 disables caching: every Lookup misses, Insert drops).
  explicit ResultCache(size_t capacity_bytes, size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit: copies the stored response payload into `payload_out`,
  /// refreshes LRU recency, and returns true.
  bool Lookup(const std::string& key, std::string* payload_out);

  /// Stores `payload` under `key` (overwriting any same-epoch entry),
  /// then evicts least-recently-used entries until the shard is within
  /// its byte budget. Oversized payloads (larger than a shard's entire
  /// budget) are not cached.
  void Insert(const std::string& key, const std::string& payload);

  /// Invalidate everything previously inserted (whole-cache epoch bump).
  void BumpEpoch();

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  ResultCacheStats Stats() const;

  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    std::string payload;
    uint64_t epoch = 0;
    std::list<std::string>::iterator lru_pos;  // into Shard::lru
  };

  struct Shard {
    mutable Mutex mu;
    /// Most-recent first; holds the keys.
    std::list<std::string> lru GUARDED_BY(mu);
    std::unordered_map<std::string, Entry> map GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;

    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> insertions{0};
    std::atomic<uint64_t> evictions{0};
  };

  Shard& ShardFor(const std::string& key);
  /// Drop `it` from `shard` (map + lru + byte accounting).
  static void EraseLocked(Shard* shard,
                          std::unordered_map<std::string, Entry>::iterator it)
      REQUIRES(shard->mu);

  const size_t capacity_bytes_;
  const size_t shard_capacity_bytes_;
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> invalidations_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pictdb::net

#endif  // PICTDB_NET_RESULT_CACHE_H_
