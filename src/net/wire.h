#ifndef PICTDB_NET_WIRE_H_
#define PICTDB_NET_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "common/status_or.h"

namespace pictdb::net {

/// Append-only little-endian serializer for wire payloads. Everything on
/// the wire is explicitly little-endian regardless of host order, so a
/// frame encoded on one machine decodes bit-identically on any other —
/// a requirement for the golden test vectors and the result cache's
/// byte-identical replay.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU16(uint16_t v) {
    PutU8(static_cast<uint8_t>(v));
    PutU8(static_cast<uint8_t>(v >> 8));
  }

  void PutU32(uint32_t v) {
    PutU16(static_cast<uint16_t>(v));
    PutU16(static_cast<uint16_t>(v >> 16));
  }

  void PutU64(uint64_t v) {
    PutU32(static_cast<uint32_t>(v));
    PutU32(static_cast<uint32_t>(v >> 32));
  }

  /// IEEE-754 bit pattern, little-endian. Exact round-trip (NaN
  /// payloads included), so coordinates survive the wire losslessly.
  void PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  void PutBytes(std::string_view s) { buf_.append(s.data(), s.size()); }

  size_t size() const { return buf_.size(); }
  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian deserializer. Every accessor returns a
/// Status error instead of reading past the end, so decoding a
/// truncated or malicious frame is always a clean failure.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  StatusOr<uint16_t> U16() {
    if (pos_ + 2 > data_.size()) return Truncated("u16");
    uint16_t v = 0;
    std::memcpy(&v, data_.data() + pos_, 2);
    pos_ += 2;
    if constexpr (std::endian::native == std::endian::big) {
      v = static_cast<uint16_t>((v >> 8) | (v << 8));
    }
    return v;
  }

  StatusOr<uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated("u32");
    uint32_t v = 0;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    if constexpr (std::endian::native == std::endian::big) v = ByteSwap32(v);
    return v;
  }

  StatusOr<uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated("u64");
    uint64_t v = 0;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    if constexpr (std::endian::native == std::endian::big) {
      v = (static_cast<uint64_t>(ByteSwap32(static_cast<uint32_t>(v)))
           << 32) |
          ByteSwap32(static_cast<uint32_t>(v >> 32));
    }
    return v;
  }

  StatusOr<double> Double() {
    PICTDB_ASSIGN_OR_RETURN(const uint64_t bits, U64());
    return std::bit_cast<double>(bits);
  }

  /// Length-prefixed string; `max_len` caps the declared length so a
  /// corrupt prefix cannot ask for gigabytes.
  StatusOr<std::string> String(size_t max_len) {
    PICTDB_ASSIGN_OR_RETURN(const uint32_t len, U32());
    if (len > max_len) {
      return Status::InvalidArgument("wire string length exceeds limit");
    }
    if (pos_ + len > data_.size()) return Truncated("string body");
    std::string out(data_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// Decoders call this last: payload bytes beyond the message are a
  /// protocol violation, not padding.
  Status ExpectEnd() const {
    return AtEnd() ? Status::OK()
                   : Status::InvalidArgument(
                         "trailing bytes after wire message");
  }

 private:
  static Status Truncated(const char* what) {
    return Status::InvalidArgument(std::string("wire payload truncated: ") +
                                   what);
  }
  static uint32_t ByteSwap32(uint32_t v) {
    return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) |
           (v << 24);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace pictdb::net

#endif  // PICTDB_NET_WIRE_H_
