#include "net/protocol.h"

#include <cmath>
#include <utility>

#include "net/wire.h"

namespace pictdb::net {

namespace {

// Caps on declared element counts, all well under kMaxPayloadBytes so a
// hostile length prefix cannot drive a large allocation before the
// payload-size check would have caught it.
constexpr size_t kMaxPsqlTextBytes = 64 * 1024;
constexpr size_t kMaxStringBytes = 64 * 1024;
constexpr size_t kMaxListElements = 1u << 20;

void PutRect(ByteWriter* w, const geom::Rect& r) {
  w->PutDouble(r.lo.x);
  w->PutDouble(r.lo.y);
  w->PutDouble(r.hi.x);
  w->PutDouble(r.hi.y);
}

StatusOr<geom::Rect> ReadRect(ByteReader* r) {
  geom::Rect out;
  PICTDB_ASSIGN_OR_RETURN(out.lo.x, r->Double());
  PICTDB_ASSIGN_OR_RETURN(out.lo.y, r->Double());
  PICTDB_ASSIGN_OR_RETURN(out.hi.x, r->Double());
  PICTDB_ASSIGN_OR_RETURN(out.hi.y, r->Double());
  return out;
}

Status CheckFiniteRect(const geom::Rect& r, const char* what) {
  if (!std::isfinite(r.lo.x) || !std::isfinite(r.lo.y) ||
      !std::isfinite(r.hi.x) || !std::isfinite(r.hi.y)) {
    return Status::InvalidArgument(std::string(what) +
                                   " has non-finite coordinates");
  }
  return Status::OK();
}

Status CheckFinitePoint(const geom::Point& p, const char* what) {
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    return Status::InvalidArgument(std::string(what) +
                                   " has non-finite coordinates");
  }
  return Status::OK();
}

void PutPoint(ByteWriter* w, const geom::Point& p) {
  w->PutDouble(p.x);
  w->PutDouble(p.y);
}

StatusOr<geom::Point> ReadPoint(ByteReader* r) {
  geom::Point out;
  PICTDB_ASSIGN_OR_RETURN(out.x, r->Double());
  PICTDB_ASSIGN_OR_RETURN(out.y, r->Double());
  return out;
}

void PutOptions(ByteWriter* w, const WireOptions& o) {
  w->PutU64(o.timeout_us);
  w->PutU8(o.degraded_ok ? 1 : 0);
}

StatusOr<WireOptions> ReadOptions(ByteReader* r) {
  WireOptions o;
  PICTDB_ASSIGN_OR_RETURN(o.timeout_us, r->U64());
  PICTDB_ASSIGN_OR_RETURN(const uint8_t degraded, r->U8());
  if (degraded > 1) {
    return Status::InvalidArgument("degraded_ok flag must be 0 or 1");
  }
  o.degraded_ok = degraded != 0;
  return o;
}

void PutStats(ByteWriter* w, const WireStats& s) {
  w->PutU64(s.latency_us);
  w->PutU64(s.nodes_visited);
  w->PutU64(s.entries_tested);
  w->PutU64(s.results);
  w->PutU64(s.skipped_subtrees);
  w->PutU8(s.degraded ? 1 : 0);
}

StatusOr<WireStats> ReadStats(ByteReader* r) {
  WireStats s;
  PICTDB_ASSIGN_OR_RETURN(s.latency_us, r->U64());
  PICTDB_ASSIGN_OR_RETURN(s.nodes_visited, r->U64());
  PICTDB_ASSIGN_OR_RETURN(s.entries_tested, r->U64());
  PICTDB_ASSIGN_OR_RETURN(s.results, r->U64());
  PICTDB_ASSIGN_OR_RETURN(s.skipped_subtrees, r->U64());
  PICTDB_ASSIGN_OR_RETURN(const uint8_t degraded, r->U8());
  s.degraded = degraded != 0;
  return s;
}

void PutWireRid(ByteWriter* w, const WireRid& rid) {
  w->PutU32(rid.page_id);
  w->PutU16(rid.slot);
}

StatusOr<WireRid> ReadWireRid(ByteReader* r) {
  WireRid rid;
  PICTDB_ASSIGN_OR_RETURN(rid.page_id, r->U32());
  PICTDB_ASSIGN_OR_RETURN(rid.slot, r->U16());
  return rid;
}

void PutHit(ByteWriter* w, const WireHit& h) {
  PutRect(w, h.mbr);
  w->PutU32(h.rid.page_id);
  w->PutU16(h.rid.slot);
}

StatusOr<WireHit> ReadHit(ByteReader* r) {
  WireHit h;
  PICTDB_ASSIGN_OR_RETURN(h.mbr, ReadRect(r));
  PICTDB_ASSIGN_OR_RETURN(h.rid.page_id, r->U32());
  PICTDB_ASSIGN_OR_RETURN(h.rid.slot, r->U16());
  return h;
}

StatusOr<uint32_t> ReadCount(ByteReader* r, size_t max) {
  PICTDB_ASSIGN_OR_RETURN(const uint32_t n, r->U32());
  if (n > max) {
    return Status::InvalidArgument("wire list length exceeds limit");
  }
  // A count implying more bytes than remain is rejected up front so a
  // tiny frame cannot reserve an enormous vector.
  if (n > r->remaining()) {
    return Status::InvalidArgument("wire list length exceeds payload");
  }
  return n;
}

void PutHistogram(ByteWriter* w, const service::HistogramSnapshot& h) {
  w->PutU64(h.sum);
  w->PutU64(h.max);
  w->PutU32(static_cast<uint32_t>(h.counts.size()));
  for (uint64_t c : h.counts) w->PutU64(c);
}

StatusOr<service::HistogramSnapshot> ReadHistogram(ByteReader* r) {
  service::HistogramSnapshot h;
  PICTDB_ASSIGN_OR_RETURN(h.sum, r->U64());
  PICTDB_ASSIGN_OR_RETURN(h.max, r->U64());
  PICTDB_ASSIGN_OR_RETURN(const uint32_t n, r->U32());
  if (n != h.counts.size()) {
    return Status::InvalidArgument("histogram bucket count mismatch");
  }
  for (size_t i = 0; i < h.counts.size(); ++i) {
    PICTDB_ASSIGN_OR_RETURN(h.counts[i], r->U64());
  }
  return h;
}

}  // namespace

bool IsKnownMsgType(uint8_t type) {
  return (type >= static_cast<uint8_t>(MsgType::kWindow) &&
          type <= static_cast<uint8_t>(MsgType::kBatchWindow)) ||
         (type >= static_cast<uint8_t>(MsgType::kHits) &&
          type <= static_cast<uint8_t>(MsgType::kBatchHits));
}

bool IsRequestType(MsgType type) {
  const uint8_t t = static_cast<uint8_t>(type);
  return t >= static_cast<uint8_t>(MsgType::kWindow) &&
         t <= static_cast<uint8_t>(MsgType::kBatchWindow);
}

bool IsWriteRequestType(MsgType type) {
  const uint8_t t = static_cast<uint8_t>(type);
  return t >= static_cast<uint8_t>(MsgType::kInsert) &&
         t <= static_cast<uint8_t>(MsgType::kUpdate);
}

bool IsQueryRequestType(MsgType type) {
  const uint8_t t = static_cast<uint8_t>(type);
  return (t >= static_cast<uint8_t>(MsgType::kWindow) &&
          t <= static_cast<uint8_t>(MsgType::kPsql)) ||
         type == MsgType::kBatchWindow;
}

std::string EncodeFrame(MsgType type, uint32_t flags, uint32_t request_id,
                        std::string_view payload) {
  ByteWriter w;
  w.PutU16(kMagic);
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(flags);
  w.PutU32(request_id);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload);
  return w.Take();
}

Status DecodeFrameHeader(std::string_view bytes, FrameHeader* out) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::InvalidArgument("frame header truncated");
  }
  ByteReader r(bytes.substr(0, kFrameHeaderSize));
  PICTDB_ASSIGN_OR_RETURN(out->magic, r.U16());
  if (out->magic != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  PICTDB_ASSIGN_OR_RETURN(out->version, r.U8());
  if (out->version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  PICTDB_ASSIGN_OR_RETURN(const uint8_t type, r.U8());
  if (!IsKnownMsgType(type)) {
    return Status::InvalidArgument("unknown message type");
  }
  out->type = static_cast<MsgType>(type);
  PICTDB_ASSIGN_OR_RETURN(out->flags, r.U32());
  PICTDB_ASSIGN_OR_RETURN(out->request_id, r.U32());
  PICTDB_ASSIGN_OR_RETURN(out->payload_len, r.U32());
  if (out->payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds size limit");
  }
  return Status::OK();
}

MsgType RequestMsgType(const Request& request) {
  struct Visitor {
    MsgType operator()(const WindowRequest&) { return MsgType::kWindow; }
    MsgType operator()(const PointRequest&) { return MsgType::kPoint; }
    MsgType operator()(const KnnRequest&) { return MsgType::kKnn; }
    MsgType operator()(const JoinRequest&) { return MsgType::kJoin; }
    MsgType operator()(const PsqlRequest&) { return MsgType::kPsql; }
    MsgType operator()(const PingRequest&) { return MsgType::kPing; }
    MsgType operator()(const StatsRequest&) { return MsgType::kStats; }
    MsgType operator()(const SetFaultsRequest&) {
      return MsgType::kSetFaults;
    }
    MsgType operator()(const InvalidateRequest&) {
      return MsgType::kInvalidate;
    }
    MsgType operator()(const InsertRequest&) { return MsgType::kInsert; }
    MsgType operator()(const DeleteRequest&) { return MsgType::kDelete; }
    MsgType operator()(const UpdateRequest&) { return MsgType::kUpdate; }
    MsgType operator()(const BatchWindowRequest&) {
      return MsgType::kBatchWindow;
    }
  };
  return std::visit(Visitor{}, request.body);
}

std::string EncodeRequestPayload(const Request& request) {
  ByteWriter w;
  struct Visitor {
    ByteWriter* w;
    const WireOptions* options;
    void operator()(const WindowRequest& q) {
      PutOptions(w, *options);
      PutRect(w, q.window);
      w->PutU8(q.contained_only ? 1 : 0);
    }
    void operator()(const PointRequest& q) {
      PutOptions(w, *options);
      PutPoint(w, q.point);
    }
    void operator()(const KnnRequest& q) {
      PutOptions(w, *options);
      PutPoint(w, q.point);
      w->PutU32(q.k);
    }
    void operator()(const JoinRequest& q) {
      PutOptions(w, *options);
      w->PutU32(q.overlay);
    }
    void operator()(const PsqlRequest& q) {
      PutOptions(w, *options);
      w->PutString(q.text);
    }
    void operator()(const PingRequest&) {}
    void operator()(const StatsRequest&) {}
    void operator()(const SetFaultsRequest& q) {
      w->PutDouble(q.transient_read_error_rate);
      w->PutDouble(q.read_bit_flip_rate);
    }
    void operator()(const InvalidateRequest&) {}
    void operator()(const InsertRequest& q) {
      PutRect(w, q.mbr);
      PutWireRid(w, q.rid);
    }
    void operator()(const DeleteRequest& q) {
      PutRect(w, q.mbr);
      PutWireRid(w, q.rid);
    }
    void operator()(const UpdateRequest& q) {
      PutRect(w, q.old_mbr);
      PutWireRid(w, q.old_rid);
      PutRect(w, q.new_mbr);
      PutWireRid(w, q.new_rid);
    }
    void operator()(const BatchWindowRequest& q) {
      PutOptions(w, *options);
      w->PutU8(q.contained_only ? 1 : 0);
      w->PutU32(static_cast<uint32_t>(q.windows.size()));
      for (const geom::Rect& win : q.windows) PutRect(w, win);
    }
  };
  std::visit(Visitor{&w, &request.options}, request.body);
  return w.Take();
}

StatusOr<Request> DecodeRequestPayload(MsgType type,
                                       std::string_view payload) {
  ByteReader r(payload);
  Request out;
  switch (type) {
    case MsgType::kWindow: {
      PICTDB_ASSIGN_OR_RETURN(out.options, ReadOptions(&r));
      WindowRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.window, ReadRect(&r));
      PICTDB_RETURN_IF_ERROR(CheckFiniteRect(q.window, "window"));
      PICTDB_ASSIGN_OR_RETURN(const uint8_t contained, r.U8());
      if (contained > 1) {
        return Status::InvalidArgument("contained flag must be 0 or 1");
      }
      q.contained_only = contained != 0;
      out.body = q;
      break;
    }
    case MsgType::kPoint: {
      PICTDB_ASSIGN_OR_RETURN(out.options, ReadOptions(&r));
      PointRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.point, ReadPoint(&r));
      PICTDB_RETURN_IF_ERROR(CheckFinitePoint(q.point, "point"));
      out.body = q;
      break;
    }
    case MsgType::kKnn: {
      PICTDB_ASSIGN_OR_RETURN(out.options, ReadOptions(&r));
      KnnRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.point, ReadPoint(&r));
      PICTDB_RETURN_IF_ERROR(CheckFinitePoint(q.point, "knn point"));
      PICTDB_ASSIGN_OR_RETURN(q.k, r.U32());
      if (q.k > kMaxListElements) {
        return Status::InvalidArgument("knn k exceeds limit");
      }
      out.body = q;
      break;
    }
    case MsgType::kJoin: {
      PICTDB_ASSIGN_OR_RETURN(out.options, ReadOptions(&r));
      JoinRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.overlay, r.U32());
      out.body = q;
      break;
    }
    case MsgType::kPsql: {
      PICTDB_ASSIGN_OR_RETURN(out.options, ReadOptions(&r));
      PsqlRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.text, r.String(kMaxPsqlTextBytes));
      out.body = std::move(q);
      break;
    }
    case MsgType::kPing:
      out.body = PingRequest{};
      break;
    case MsgType::kStats:
      out.body = StatsRequest{};
      break;
    case MsgType::kSetFaults: {
      SetFaultsRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.transient_read_error_rate, r.Double());
      PICTDB_ASSIGN_OR_RETURN(q.read_bit_flip_rate, r.Double());
      if (!(q.transient_read_error_rate >= 0.0 &&
            q.transient_read_error_rate <= 1.0) ||
          !(q.read_bit_flip_rate >= 0.0 && q.read_bit_flip_rate <= 1.0)) {
        return Status::InvalidArgument("fault rates must be in [0,1]");
      }
      out.body = q;
      break;
    }
    case MsgType::kInvalidate:
      out.body = InvalidateRequest{};
      break;
    case MsgType::kInsert: {
      InsertRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.mbr, ReadRect(&r));
      PICTDB_RETURN_IF_ERROR(CheckFiniteRect(q.mbr, "insert mbr"));
      PICTDB_ASSIGN_OR_RETURN(q.rid, ReadWireRid(&r));
      out.body = q;
      break;
    }
    case MsgType::kDelete: {
      DeleteRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.mbr, ReadRect(&r));
      PICTDB_RETURN_IF_ERROR(CheckFiniteRect(q.mbr, "delete mbr"));
      PICTDB_ASSIGN_OR_RETURN(q.rid, ReadWireRid(&r));
      out.body = q;
      break;
    }
    case MsgType::kUpdate: {
      UpdateRequest q;
      PICTDB_ASSIGN_OR_RETURN(q.old_mbr, ReadRect(&r));
      PICTDB_RETURN_IF_ERROR(CheckFiniteRect(q.old_mbr, "update old mbr"));
      PICTDB_ASSIGN_OR_RETURN(q.old_rid, ReadWireRid(&r));
      PICTDB_ASSIGN_OR_RETURN(q.new_mbr, ReadRect(&r));
      PICTDB_RETURN_IF_ERROR(CheckFiniteRect(q.new_mbr, "update new mbr"));
      PICTDB_ASSIGN_OR_RETURN(q.new_rid, ReadWireRid(&r));
      out.body = q;
      break;
    }
    case MsgType::kBatchWindow: {
      PICTDB_ASSIGN_OR_RETURN(out.options, ReadOptions(&r));
      BatchWindowRequest q;
      PICTDB_ASSIGN_OR_RETURN(const uint8_t contained, r.U8());
      if (contained > 1) {
        return Status::InvalidArgument("contained flag must be 0 or 1");
      }
      q.contained_only = contained != 0;
      PICTDB_ASSIGN_OR_RETURN(const uint32_t n,
                              ReadCount(&r, kMaxListElements));
      q.windows.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        geom::Rect win;
        PICTDB_ASSIGN_OR_RETURN(win, ReadRect(&r));
        PICTDB_RETURN_IF_ERROR(CheckFiniteRect(win, "batch window"));
        q.windows.push_back(win);
      }
      out.body = std::move(q);
      break;
    }
    default:
      return Status::InvalidArgument("not a request message type");
  }
  PICTDB_RETURN_IF_ERROR(r.ExpectEnd());
  // GCC 12 falsely flags the variant's inactive-alternative bytes as
  // "maybe uninitialized" when `out` is moved into the StatusOr.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  return out;
#pragma GCC diagnostic pop
}

std::string CacheKey(const Request& request) {
  const MsgType type = RequestMsgType(request);
  if (!IsQueryRequestType(type)) return std::string();
  Request canonical = request;
  canonical.options.timeout_us = 0;  // deadline does not change the answer
  std::string key(1, static_cast<char>(type));
  key += EncodeRequestPayload(canonical);
  return key;
}

Status ErrorResponse::ToStatus() const {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kNotSupported:
      return Status::NotSupported(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kDataLoss:
      return Status::DataLoss(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
  }
  return Status::Internal("unknown wire status code: " + message);
}

ErrorResponse ErrorResponse::FromStatus(const Status& status) {
  ErrorResponse e;
  e.code = static_cast<uint32_t>(status.code());
  e.message = status.message();
  return e;
}

MsgType ResponseMsgType(const Response& response) {
  struct Visitor {
    MsgType operator()(const HitsResponse&) { return MsgType::kHits; }
    MsgType operator()(const NeighborsResponse&) {
      return MsgType::kNeighbors;
    }
    MsgType operator()(const JoinResponse&) { return MsgType::kJoinResult; }
    MsgType operator()(const TableResponse&) { return MsgType::kTable; }
    MsgType operator()(const PongResponse&) { return MsgType::kPong; }
    MsgType operator()(const StatsResponse&) {
      return MsgType::kStatsResult;
    }
    MsgType operator()(const OkResponse&) { return MsgType::kOk; }
    MsgType operator()(const ErrorResponse&) { return MsgType::kError; }
    MsgType operator()(const BatchHitsResponse&) {
      return MsgType::kBatchHits;
    }
  };
  return std::visit(Visitor{}, response.body);
}

std::string EncodeResponsePayload(const Response& response) {
  ByteWriter w;
  struct Visitor {
    ByteWriter* w;
    void operator()(const HitsResponse& resp) {
      PutStats(w, resp.stats);
      w->PutU32(static_cast<uint32_t>(resp.hits.size()));
      for (const WireHit& h : resp.hits) PutHit(w, h);
    }
    void operator()(const NeighborsResponse& resp) {
      PutStats(w, resp.stats);
      w->PutU32(static_cast<uint32_t>(resp.neighbors.size()));
      for (const WireNeighbor& n : resp.neighbors) {
        PutHit(w, n.hit);
        w->PutDouble(n.distance);
      }
    }
    void operator()(const JoinResponse& resp) {
      PutStats(w, resp.stats);
      w->PutU64(resp.pairs);
    }
    void operator()(const TableResponse& resp) {
      PutStats(w, resp.stats);
      w->PutU32(static_cast<uint32_t>(resp.columns.size()));
      for (const std::string& c : resp.columns) w->PutString(c);
      w->PutU32(static_cast<uint32_t>(resp.rows.size()));
      for (size_t i = 0; i < resp.rows.size(); ++i) {
        for (const std::string& cell : resp.rows[i]) w->PutString(cell);
        const auto& rids =
            i < resp.row_rids.size() ? resp.row_rids[i]
                                     : std::vector<WireRid>{};
        w->PutU32(static_cast<uint32_t>(rids.size()));
        for (const WireRid& rid : rids) {
          w->PutU32(rid.page_id);
          w->PutU16(rid.slot);
        }
      }
    }
    void operator()(const PongResponse&) {}
    void operator()(const StatsResponse& resp) {
      w->PutU64(resp.submitted);
      w->PutU64(resp.rejected);
      w->PutU64(resp.completed);
      w->PutU64(resp.failed);
      w->PutU64(resp.deadline_exceeded);
      w->PutU64(resp.degraded);
      w->PutU32(static_cast<uint32_t>(resp.variant_latency.size()));
      for (const auto& h : resp.variant_latency) PutHistogram(w, h);
      w->PutU64(resp.cache_hits);
      w->PutU64(resp.cache_misses);
      w->PutU64(resp.cache_insertions);
      w->PutU64(resp.cache_evictions);
      w->PutU64(resp.cache_invalidations);
      w->PutU64(resp.cache_bytes);
      w->PutU64(resp.cache_entries);
      w->PutU64(resp.connections_accepted);
      w->PutU64(resp.connections_rejected);
      w->PutU64(resp.quota_rejections);
      w->PutU64(resp.backpressure_rejections);
      w->PutU64(resp.frames_received);
      w->PutU64(resp.protocol_errors);
    }
    void operator()(const OkResponse&) {}
    void operator()(const ErrorResponse& resp) {
      w->PutU32(resp.code);
      w->PutString(resp.message);
    }
    void operator()(const BatchHitsResponse& resp) {
      PutStats(w, resp.stats);
      w->PutU32(static_cast<uint32_t>(resp.per_window.size()));
      for (const BatchWindowHits& bw : resp.per_window) {
        w->PutU8(bw.degraded ? 1 : 0);
        w->PutU32(static_cast<uint32_t>(bw.hits.size()));
        for (const WireHit& h : bw.hits) PutHit(w, h);
      }
    }
  };
  std::visit(Visitor{&w}, response.body);
  return w.Take();
}

StatusOr<Response> DecodeResponsePayload(MsgType type,
                                         std::string_view payload) {
  ByteReader r(payload);
  Response out;
  switch (type) {
    case MsgType::kHits: {
      HitsResponse resp;
      PICTDB_ASSIGN_OR_RETURN(resp.stats, ReadStats(&r));
      PICTDB_ASSIGN_OR_RETURN(const uint32_t n,
                              ReadCount(&r, kMaxListElements));
      resp.hits.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PICTDB_ASSIGN_OR_RETURN(WireHit h, ReadHit(&r));
        resp.hits.push_back(h);
      }
      out.body = std::move(resp);
      break;
    }
    case MsgType::kNeighbors: {
      NeighborsResponse resp;
      PICTDB_ASSIGN_OR_RETURN(resp.stats, ReadStats(&r));
      PICTDB_ASSIGN_OR_RETURN(const uint32_t n,
                              ReadCount(&r, kMaxListElements));
      resp.neighbors.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        WireNeighbor nb;
        PICTDB_ASSIGN_OR_RETURN(nb.hit, ReadHit(&r));
        PICTDB_ASSIGN_OR_RETURN(nb.distance, r.Double());
        resp.neighbors.push_back(nb);
      }
      out.body = std::move(resp);
      break;
    }
    case MsgType::kJoinResult: {
      JoinResponse resp;
      PICTDB_ASSIGN_OR_RETURN(resp.stats, ReadStats(&r));
      PICTDB_ASSIGN_OR_RETURN(resp.pairs, r.U64());
      out.body = resp;
      break;
    }
    case MsgType::kTable: {
      TableResponse resp;
      PICTDB_ASSIGN_OR_RETURN(resp.stats, ReadStats(&r));
      PICTDB_ASSIGN_OR_RETURN(const uint32_t ncols,
                              ReadCount(&r, kMaxListElements));
      resp.columns.reserve(ncols);
      for (uint32_t i = 0; i < ncols; ++i) {
        PICTDB_ASSIGN_OR_RETURN(std::string c, r.String(kMaxStringBytes));
        resp.columns.push_back(std::move(c));
      }
      PICTDB_ASSIGN_OR_RETURN(const uint32_t nrows,
                              ReadCount(&r, kMaxListElements));
      resp.rows.reserve(nrows);
      resp.row_rids.reserve(nrows);
      for (uint32_t i = 0; i < nrows; ++i) {
        std::vector<std::string> row;
        row.reserve(ncols);
        for (uint32_t c = 0; c < ncols; ++c) {
          PICTDB_ASSIGN_OR_RETURN(std::string cell,
                                  r.String(kMaxStringBytes));
          row.push_back(std::move(cell));
        }
        resp.rows.push_back(std::move(row));
        PICTDB_ASSIGN_OR_RETURN(const uint32_t nrids,
                                ReadCount(&r, kMaxListElements));
        std::vector<WireRid> rids;
        rids.reserve(nrids);
        for (uint32_t j = 0; j < nrids; ++j) {
          WireRid rid;
          PICTDB_ASSIGN_OR_RETURN(rid.page_id, r.U32());
          PICTDB_ASSIGN_OR_RETURN(rid.slot, r.U16());
          rids.push_back(rid);
        }
        resp.row_rids.push_back(std::move(rids));
      }
      out.body = std::move(resp);
      break;
    }
    case MsgType::kPong:
      out.body = PongResponse{};
      break;
    case MsgType::kStatsResult: {
      StatsResponse resp;
      PICTDB_ASSIGN_OR_RETURN(resp.submitted, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.rejected, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.completed, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.failed, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.deadline_exceeded, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.degraded, r.U64());
      PICTDB_ASSIGN_OR_RETURN(const uint32_t nvariants, r.U32());
      if (nvariants != resp.variant_latency.size()) {
        return Status::InvalidArgument("variant histogram count mismatch");
      }
      for (auto& h : resp.variant_latency) {
        PICTDB_ASSIGN_OR_RETURN(h, ReadHistogram(&r));
      }
      PICTDB_ASSIGN_OR_RETURN(resp.cache_hits, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.cache_misses, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.cache_insertions, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.cache_evictions, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.cache_invalidations, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.cache_bytes, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.cache_entries, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.connections_accepted, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.connections_rejected, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.quota_rejections, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.backpressure_rejections, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.frames_received, r.U64());
      PICTDB_ASSIGN_OR_RETURN(resp.protocol_errors, r.U64());
      out.body = resp;
      break;
    }
    case MsgType::kOk:
      out.body = OkResponse{};
      break;
    case MsgType::kError: {
      ErrorResponse resp;
      PICTDB_ASSIGN_OR_RETURN(resp.code, r.U32());
      PICTDB_ASSIGN_OR_RETURN(resp.message, r.String(kMaxStringBytes));
      out.body = std::move(resp);
      break;
    }
    case MsgType::kBatchHits: {
      BatchHitsResponse resp;
      PICTDB_ASSIGN_OR_RETURN(resp.stats, ReadStats(&r));
      PICTDB_ASSIGN_OR_RETURN(const uint32_t nwin,
                              ReadCount(&r, kMaxListElements));
      resp.per_window.reserve(nwin);
      for (uint32_t i = 0; i < nwin; ++i) {
        BatchWindowHits bw;
        PICTDB_ASSIGN_OR_RETURN(const uint8_t degraded, r.U8());
        if (degraded > 1) {
          return Status::InvalidArgument("degraded flag must be 0 or 1");
        }
        bw.degraded = degraded != 0;
        PICTDB_ASSIGN_OR_RETURN(const uint32_t nhits,
                                ReadCount(&r, kMaxListElements));
        bw.hits.reserve(nhits);
        for (uint32_t j = 0; j < nhits; ++j) {
          PICTDB_ASSIGN_OR_RETURN(WireHit h, ReadHit(&r));
          bw.hits.push_back(h);
        }
        resp.per_window.push_back(std::move(bw));
      }
      out.body = std::move(resp);
      break;
    }
    default:
      return Status::InvalidArgument("not a response message type");
  }
  PICTDB_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

}  // namespace pictdb::net
