#include "psql/parser.h"

#include <cmath>

#include "psql/lexer.h"

namespace pictdb::psql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::unique_ptr<SelectStmt>> ParseSelect() {
    PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                            ParseSelectBody());
    if (!AtEnd()) {
      return Err("trailing input after query");
    }
    return stmt;
  }

  StatusOr<Statement> ParseAnyStatement() {
    Statement out;
    if (IdentEquals(Peek(), "insert")) {
      PICTDB_ASSIGN_OR_RETURN(out.insert, ParseInsertBody());
    } else if (IdentEquals(Peek(), "update")) {
      PICTDB_ASSIGN_OR_RETURN(out.update, ParseUpdateBody());
    } else if (IdentEquals(Peek(), "delete")) {
      PICTDB_ASSIGN_OR_RETURN(out.del, ParseDeleteBody());
    } else {
      PICTDB_ASSIGN_OR_RETURN(out.select, ParseSelectBody());
    }
    if (!AtEnd()) {
      return Err("trailing input after statement");
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status Err(const std::string& message) const {
    return Status::InvalidArgument(message + " (at offset " +
                                   std::to_string(Peek().position) + ")");
  }

  bool EatKeyword(std::string_view kw) {
    if (IdentEquals(Peek(), kw)) {
      Advance();
      return true;
    }
    return false;
  }

  StatusOr<Token> Expect(TokenKind kind, const std::string& what) {
    if (Peek().kind != kind) return Err("expected " + what);
    return Advance();
  }

  StatusOr<std::unique_ptr<SelectStmt>> ParseSelectBody() {
    if (!EatKeyword("select")) return Err("expected 'select'");
    auto stmt = std::make_unique<SelectStmt>();

    // Targets.
    if (Peek().kind == TokenKind::kStar) {
      Advance();
      stmt->star = true;
    } else {
      do {
        TargetItem item;
        PICTDB_ASSIGN_OR_RETURN(item.expr, ParsePrimary());
        item.display = item.expr->ToString();
        stmt->targets.push_back(std::move(item));
      } while (Eat(TokenKind::kComma));
    }

    // From.
    if (!EatKeyword("from")) return Err("expected 'from'");
    do {
      PICTDB_ASSIGN_OR_RETURN(const Token name,
                              Expect(TokenKind::kIdentifier,
                                     "relation name"));
      stmt->from.push_back(name.text);
    } while (Eat(TokenKind::kComma));

    // Optional on.
    if (EatKeyword("on")) {
      do {
        PICTDB_ASSIGN_OR_RETURN(const Token name,
                                Expect(TokenKind::kIdentifier,
                                       "picture name"));
        stmt->on.push_back(name.text);
      } while (Eat(TokenKind::kComma));
    }

    // Optional at.
    if (EatKeyword("at")) {
      AtClause at;
      PICTDB_ASSIGN_OR_RETURN(at.lhs, ParseLocExpr());
      PICTDB_ASSIGN_OR_RETURN(at.op, ParseSpatialOp());
      PICTDB_ASSIGN_OR_RETURN(at.rhs, ParseLocExpr());
      stmt->at = std::move(at);
    }

    // Optional where.
    if (EatKeyword("where")) {
      PICTDB_ASSIGN_OR_RETURN(stmt->where, ParseOr());
    }

    // Optional order by / limit.
    if (IdentEquals(Peek(), "order")) {
      Advance();
      if (!EatKeyword("by")) return Err("expected 'by' after 'order'");
      do {
        OrderItem item;
        PICTDB_ASSIGN_OR_RETURN(item.expr, ParsePrimary());
        if (EatKeyword("desc")) {
          item.descending = true;
        } else {
          EatKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Eat(TokenKind::kComma));
    }
    if (EatKeyword("limit")) {
      PICTDB_ASSIGN_OR_RETURN(const Token n,
                              Expect(TokenKind::kNumber, "limit count"));
      if (n.number < 0 || n.number != std::floor(n.number)) {
        return Err("limit must be a non-negative integer");
      }
      stmt->limit = static_cast<uint64_t>(n.number);
    }
    return stmt;
  }

  bool Eat(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }

  /// A literal for insert values: number, string, `null`, or a window
  /// literal (which becomes a box geometry).
  StatusOr<std::unique_ptr<Expr>> ParseInsertLiteral() {
    if (IdentEquals(Peek(), "null")) {
      Advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLiteral;
      return node;
    }
    if (Peek().kind == TokenKind::kLBrace) {
      PICTDB_ASSIGN_OR_RETURN(const LocExpr loc, ParseLocExpr());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLiteral;
      node->literal = rel::Value(geom::Geometry(loc.window));
      return node;
    }
    PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> node, ParsePrimary());
    if (node->kind != Expr::Kind::kLiteral) {
      return Err("insert values must be literals");
    }
    return node;
  }

  StatusOr<std::unique_ptr<InsertStmt>> ParseInsertBody() {
    if (!EatKeyword("insert")) return Err("expected 'insert'");
    if (!EatKeyword("into")) return Err("expected 'into'");
    auto stmt = std::make_unique<InsertStmt>();
    PICTDB_ASSIGN_OR_RETURN(const Token name,
                            Expect(TokenKind::kIdentifier, "relation name"));
    stmt->relation = name.text;
    if (!EatKeyword("values")) return Err("expected 'values'");
    PICTDB_ASSIGN_OR_RETURN(auto lp, Expect(TokenKind::kLParen, "'('"));
    (void)lp;
    do {
      PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> value,
                              ParseInsertLiteral());
      stmt->values.push_back(std::move(value));
    } while (Eat(TokenKind::kComma));
    PICTDB_ASSIGN_OR_RETURN(auto rp, Expect(TokenKind::kRParen, "')'"));
    (void)rp;
    return stmt;
  }

  StatusOr<std::unique_ptr<UpdateStmt>> ParseUpdateBody() {
    if (!EatKeyword("update")) return Err("expected 'update'");
    auto stmt = std::make_unique<UpdateStmt>();
    PICTDB_ASSIGN_OR_RETURN(const Token name,
                            Expect(TokenKind::kIdentifier, "relation name"));
    stmt->relation = name.text;
    if (!EatKeyword("set")) return Err("expected 'set'");
    do {
      PICTDB_ASSIGN_OR_RETURN(const Token column,
                              Expect(TokenKind::kIdentifier, "column name"));
      PICTDB_ASSIGN_OR_RETURN(auto eq, Expect(TokenKind::kEq, "'='"));
      (void)eq;
      PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> value,
                              ParseInsertLiteral());
      stmt->assignments.emplace_back(column.text, std::move(value));
    } while (Eat(TokenKind::kComma));
    if (EatKeyword("on")) {
      do {
        PICTDB_ASSIGN_OR_RETURN(const Token pic,
                                Expect(TokenKind::kIdentifier,
                                       "picture name"));
        stmt->on.push_back(pic.text);
      } while (Eat(TokenKind::kComma));
    }
    if (EatKeyword("at")) {
      AtClause at;
      PICTDB_ASSIGN_OR_RETURN(at.lhs, ParseLocExpr());
      PICTDB_ASSIGN_OR_RETURN(at.op, ParseSpatialOp());
      PICTDB_ASSIGN_OR_RETURN(at.rhs, ParseLocExpr());
      stmt->at = std::move(at);
    }
    if (EatKeyword("where")) {
      PICTDB_ASSIGN_OR_RETURN(stmt->where, ParseOr());
    }
    return stmt;
  }

  StatusOr<std::unique_ptr<DeleteStmt>> ParseDeleteBody() {
    if (!EatKeyword("delete")) return Err("expected 'delete'");
    if (!EatKeyword("from")) return Err("expected 'from'");
    auto stmt = std::make_unique<DeleteStmt>();
    PICTDB_ASSIGN_OR_RETURN(const Token name,
                            Expect(TokenKind::kIdentifier, "relation name"));
    stmt->relation = name.text;
    if (EatKeyword("on")) {
      do {
        PICTDB_ASSIGN_OR_RETURN(const Token pic,
                                Expect(TokenKind::kIdentifier,
                                       "picture name"));
        stmt->on.push_back(pic.text);
      } while (Eat(TokenKind::kComma));
    }
    if (EatKeyword("at")) {
      AtClause at;
      PICTDB_ASSIGN_OR_RETURN(at.lhs, ParseLocExpr());
      PICTDB_ASSIGN_OR_RETURN(at.op, ParseSpatialOp());
      PICTDB_ASSIGN_OR_RETURN(at.rhs, ParseLocExpr());
      stmt->at = std::move(at);
    }
    if (EatKeyword("where")) {
      PICTDB_ASSIGN_OR_RETURN(stmt->where, ParseOr());
    }
    return stmt;
  }

  StatusOr<SpatialOp> ParseSpatialOp() {
    const Token& t = Peek();
    if (IdentEquals(t, "covered-by") || IdentEquals(t, "covered_by")) {
      Advance();
      return SpatialOp::kCoveredBy;
    }
    if (IdentEquals(t, "covering")) {
      Advance();
      return SpatialOp::kCovering;
    }
    if (IdentEquals(t, "overlapping") || IdentEquals(t, "intersecting")) {
      Advance();
      return SpatialOp::kOverlapping;
    }
    if (IdentEquals(t, "disjoined") || IdentEquals(t, "disjoint")) {
      Advance();
      return SpatialOp::kDisjoined;
    }
    return Err("expected spatial operator "
               "(covered-by/covering/overlapping/disjoined)");
  }

  StatusOr<LocExpr> ParseLocExpr() {
    LocExpr loc;
    // Window literal: { cx +- dx , cy +- dy }.
    if (Peek().kind == TokenKind::kLBrace) {
      Advance();
      PICTDB_ASSIGN_OR_RETURN(const Token cx,
                              Expect(TokenKind::kNumber, "number"));
      PICTDB_ASSIGN_OR_RETURN(auto unused1,
                              Expect(TokenKind::kPlusMinus, "'+-'"));
      (void)unused1;
      PICTDB_ASSIGN_OR_RETURN(const Token dx,
                              Expect(TokenKind::kNumber, "number"));
      PICTDB_ASSIGN_OR_RETURN(auto unused2, Expect(TokenKind::kComma, "','"));
      (void)unused2;
      PICTDB_ASSIGN_OR_RETURN(const Token cy,
                              Expect(TokenKind::kNumber, "number"));
      PICTDB_ASSIGN_OR_RETURN(auto unused3,
                              Expect(TokenKind::kPlusMinus, "'+-'"));
      (void)unused3;
      PICTDB_ASSIGN_OR_RETURN(const Token dy,
                              Expect(TokenKind::kNumber, "number"));
      PICTDB_ASSIGN_OR_RETURN(auto unused4, Expect(TokenKind::kRBrace, "'}'"));
      (void)unused4;
      if (dx.number < 0 || dy.number < 0) {
        return Err("window half-extents must be non-negative");
      }
      loc.kind = LocExpr::Kind::kWindow;
      loc.window = geom::Rect::FromCenterHalfExtent(cx.number, dx.number,
                                                    cy.number, dy.number);
      return loc;
    }
    // Nested mapping, optionally parenthesized.
    if (IdentEquals(Peek(), "select") ||
        (Peek().kind == TokenKind::kLParen && IdentEquals(Peek(1), "select"))) {
      const bool parenthesized = Eat(TokenKind::kLParen);
      PICTDB_ASSIGN_OR_RETURN(loc.subquery, ParseSelectBody());
      if (parenthesized) {
        PICTDB_ASSIGN_OR_RETURN(auto unused, Expect(TokenKind::kRParen, "')'"));
        (void)unused;
      }
      loc.kind = LocExpr::Kind::kSubquery;
      return loc;
    }
    // Column reference: loc / cities.loc / "cities loc" (the paper writes
    // the qualifier with a space).
    PICTDB_ASSIGN_OR_RETURN(const Token first,
                            Expect(TokenKind::kIdentifier,
                                   "location expression"));
    if (Eat(TokenKind::kDot)) {
      PICTDB_ASSIGN_OR_RETURN(const Token col,
                              Expect(TokenKind::kIdentifier, "column name"));
      loc.kind = LocExpr::Kind::kColumn;
      loc.rel = first.text;
      loc.column = col.text;
      return loc;
    }
    // "cities loc": two identifiers where the second is not a spatial
    // operator or clause keyword.
    if (Peek().kind == TokenKind::kIdentifier && !IsClauseBoundary(Peek()) &&
        !IsSpatialOpName(Peek())) {
      const Token col = Advance();
      loc.kind = LocExpr::Kind::kColumn;
      loc.rel = first.text;
      loc.column = col.text;
      return loc;
    }
    loc.kind = LocExpr::Kind::kColumn;
    loc.column = first.text;
    return loc;
  }

  static bool IsSpatialOpName(const Token& t) {
    return IdentEquals(t, "covered-by") || IdentEquals(t, "covered_by") ||
           IdentEquals(t, "covering") || IdentEquals(t, "overlapping") ||
           IdentEquals(t, "intersecting") || IdentEquals(t, "disjoined") ||
           IdentEquals(t, "disjoint");
  }

  static bool IsClauseBoundary(const Token& t) {
    return IdentEquals(t, "where") || IdentEquals(t, "from") ||
           IdentEquals(t, "on") || IdentEquals(t, "at") ||
           IdentEquals(t, "select") || IdentEquals(t, "and") ||
           IdentEquals(t, "or") || IdentEquals(t, "order") ||
           IdentEquals(t, "limit");
  }

  // --- where-expression grammar -------------------------------------------

  StatusOr<std::unique_ptr<Expr>> ParseOr() {
    PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (EatKeyword("or")) {
      PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kOr;
      node->args.push_back(std::move(lhs));
      node->args.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseAnd() {
    PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNot());
    while (EatKeyword("and")) {
      PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNot());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kAnd;
      node->args.push_back(std::move(lhs));
      node->args.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  StatusOr<std::unique_ptr<Expr>> ParseNot() {
    if (EatKeyword("not")) {
      PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseNot());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->args.push_back(std::move(inner));
      return node;
    }
    return ParseComparison();
  }

  StatusOr<std::unique_ptr<Expr>> ParseComparison() {
    PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePrimary());
    Expr::CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kLt:
        op = Expr::CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = Expr::CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = Expr::CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = Expr::CmpOp::kGe;
        break;
      case TokenKind::kEq:
        op = Expr::CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = Expr::CmpOp::kNe;
        break;
      default:
        return lhs;  // bare expression (e.g. a boolean-like value)
    }
    Advance();
    PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePrimary());
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    node->cmp = op;
    node->args.push_back(std::move(lhs));
    node->args.push_back(std::move(rhs));
    return node;
  }

  StatusOr<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      Advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLiteral;
      // Integral literals stay ints so int-column comparisons are exact.
      if (t.number == std::floor(t.number) &&
          std::fabs(t.number) < 9.0e15) {
        node->literal = rel::Value(static_cast<int64_t>(t.number));
      } else {
        node->literal = rel::Value(t.number);
      }
      return node;
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLiteral;
      node->literal = rel::Value(t.text);
      return node;
    }
    if (t.kind == TokenKind::kLParen) {
      Advance();
      PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOr());
      PICTDB_ASSIGN_OR_RETURN(auto unused, Expect(TokenKind::kRParen, "')'"));
      (void)unused;
      return inner;
    }
    if (t.kind == TokenKind::kIdentifier) {
      const Token first = Advance();
      // Function call: area(loc). count(*) becomes a zero-argument call.
      if (Peek().kind == TokenKind::kLParen) {
        Advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kCall;
        node->func = first.text;
        if (Peek().kind == TokenKind::kStar) {
          Advance();
          PICTDB_ASSIGN_OR_RETURN(auto unused,
                                  Expect(TokenKind::kRParen, "')'"));
          (void)unused;
          return node;
        }
        if (Peek().kind != TokenKind::kRParen) {
          do {
            PICTDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParsePrimary());
            node->args.push_back(std::move(arg));
          } while (Eat(TokenKind::kComma));
        }
        PICTDB_ASSIGN_OR_RETURN(auto unused,
                                Expect(TokenKind::kRParen, "')'"));
        (void)unused;
        return node;
      }
      // Qualified or bare column.
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kColumnRef;
      if (Eat(TokenKind::kDot)) {
        PICTDB_ASSIGN_OR_RETURN(const Token col,
                                Expect(TokenKind::kIdentifier,
                                       "column name"));
        node->rel = first.text;
        node->column = col.text;
      } else {
        node->column = first.text;
      }
      return node;
    }
    return Err("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<SelectStmt>> Parse(std::string_view text) {
  PICTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

StatusOr<Statement> ParseStatement(std::string_view text) {
  PICTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseAnyStatement();
}

std::string ToString(SpatialOp op) {
  switch (op) {
    case SpatialOp::kCoveredBy:
      return "covered-by";
    case SpatialOp::kCovering:
      return "covering";
    case SpatialOp::kOverlapping:
      return "overlapping";
    case SpatialOp::kDisjoined:
      return "disjoined";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumnRef:
      return rel.empty() ? column : rel + "." + column;
    case Kind::kCompare: {
      const char* ops[] = {"<", "<=", ">", ">=", "=", "<>"};
      return args[0]->ToString() + " " + ops[static_cast<int>(cmp)] + " " +
             args[1]->ToString();
    }
    case Kind::kAnd:
      return "(" + args[0]->ToString() + " and " + args[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + args[0]->ToString() + " or " + args[1]->ToString() + ")";
    case Kind::kNot:
      return "not " + args[0]->ToString();
    case Kind::kCall: {
      std::string out = func + "(";
      if (args.empty()) out += "*";  // zero-arg calls are count(*)-style
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace pictdb::psql
