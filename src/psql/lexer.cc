#include "psql/lexer.h"

#include <cctype>
#include <charconv>

namespace pictdb::psql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();

  auto push = [&tokens](TokenKind kind, size_t pos, std::string text_value = "") {
    Token t;
    t.kind = kind;
    t.position = pos;
    t.text = std::move(text_value);
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;

    if (IsIdentStart(c)) {
      std::string ident;
      while (i < n) {
        if (IsIdentChar(text[i])) {
          ident.push_back(text[i]);
          ++i;
        } else if (text[i] == '-' && i + 1 < n && IsIdentChar(text[i + 1])) {
          // Hyphenated names: covered-by, time-zones, us-map.
          ident.push_back('-');
          ++i;
        } else {
          break;
        }
      }
      push(TokenKind::kIdentifier, start, std::move(ident));
      continue;
    }

    if (IsDigit(c) ||
        (c == '-' && i + 1 < n && (IsDigit(text[i + 1]) || text[i + 1] == '.')) ||
        (c == '.' && i + 1 < n && IsDigit(text[i + 1]))) {
      double value = 0.0;
      const char* begin = text.data() + i;
      const char* end = text.data() + n;
      auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec != std::errc()) {
        return Status::InvalidArgument("bad number at offset " +
                                       std::to_string(i));
      }
      i += static_cast<size_t>(ptr - begin);
      Token t;
      t.kind = TokenKind::kNumber;
      t.number = value;
      t.position = start;
      tokens.push_back(std::move(t));
      continue;
    }

    switch (c) {
      case '\'': {
        ++i;
        std::string content;
        while (i < n && text[i] != '\'') {
          content.push_back(text[i]);
          ++i;
        }
        if (i == n) {
          return Status::InvalidArgument("unterminated string literal");
        }
        ++i;  // closing quote
        push(TokenKind::kString, start, std::move(content));
        continue;
      }
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        continue;
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        continue;
      case '{':
        push(TokenKind::kLBrace, start);
        ++i;
        continue;
      case '}':
        push(TokenKind::kRBrace, start);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        continue;
      case '+':
        if (i + 1 < n && text[i + 1] == '-') {
          push(TokenKind::kPlusMinus, start);
          i += 2;
          continue;
        }
        return Status::InvalidArgument("unexpected '+' at offset " +
                                       std::to_string(i));
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        continue;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
          continue;
        }
        return Status::InvalidArgument("unexpected '!' at offset " +
                                       std::to_string(i));
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(i));
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

bool IdentEquals(const Token& token, std::string_view lower_name) {
  if (token.kind != TokenKind::kIdentifier) return false;
  if (token.text.size() != lower_name.size()) return false;
  for (size_t i = 0; i < lower_name.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(token.text[i])) !=
        lower_name[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace pictdb::psql
