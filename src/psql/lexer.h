#ifndef PICTDB_PSQL_LEXER_H_
#define PICTDB_PSQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"

namespace pictdb::psql {

enum class TokenKind {
  kIdentifier,  // select, cities, covered-by, hwy-name (keywords included)
  kNumber,      // 42, -3.5, 450000
  kString,      // 'New York'
  kComma,
  kDot,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kPlusMinus,   // "+-" (ASCII for the paper's ±)
  kStar,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,          // <> or !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier/string content
  double number = 0.0;   // kNumber
  size_t position = 0;   // byte offset, for error messages
};

/// Tokenize PSQL text. Identifiers may contain '-' when the next
/// character is alphanumeric (the paper's names: time-zones, covered-by,
/// us-map); a '-' followed by a digit at expression position instead
/// negates a number literal.
StatusOr<std::vector<Token>> Tokenize(std::string_view text);

/// Case-insensitive identifier comparison (keywords in PSQL are not
/// reserved; `select` is matched positionally).
bool IdentEquals(const Token& token, std::string_view lower_name);

}  // namespace pictdb::psql

#endif  // PICTDB_PSQL_LEXER_H_
