#include "psql/executor.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "psql/parser.h"
#include "geom/distance.h"
#include "geom/wkt.h"
#include "rtree/join.h"

namespace pictdb::psql {

namespace {

using geom::Geometry;
using rel::Relation;
using rel::Tuple;
using rel::Value;
using rel::ValueType;
using storage::Rid;

/// A from-relation bound to its catalog object and (optionally) the loc
/// column + R-tree it is shown with on the query's picture.
struct BoundRelation {
  const Relation* rel = nullptr;
  std::string name;
  std::string loc_column;                     // "" when not on a picture
  const rtree::RTree* index = nullptr;        // may be null
};

/// Row under evaluation: one tuple per bound relation.
struct RowCtx {
  const std::vector<BoundRelation>* rels;
  std::vector<const Tuple*> tuples;
};

/// Resolve a (possibly qualified) column name to (relation idx, column
/// idx) within the bound relations.
StatusOr<std::pair<size_t, size_t>> ResolveColumn(
    const std::vector<BoundRelation>& rels, const std::string& qualifier,
    const std::string& column) {
  if (!qualifier.empty()) {
    for (size_t r = 0; r < rels.size(); ++r) {
      if (rels[r].name != qualifier) continue;
      PICTDB_ASSIGN_OR_RETURN(const size_t c,
                              rels[r].rel->schema().IndexOf(column));
      return std::make_pair(r, c);
    }
    return Status::NotFound("relation " + qualifier +
                            " is not in the from-clause");
  }
  std::optional<std::pair<size_t, size_t>> found;
  for (size_t r = 0; r < rels.size(); ++r) {
    auto c = rels[r].rel->schema().IndexOf(column);
    if (!c.ok()) continue;
    if (found.has_value()) {
      return Status::InvalidArgument("ambiguous column " + column);
    }
    found = std::make_pair(r, *c);
  }
  if (!found.has_value()) {
    return Status::NotFound("no column named " + column);
  }
  return *found;
}

/// PSQL's pictorial functions: simple attributes computed from a
/// geometry (the paper's `area`, plus MBR extremes in the spirit of its
/// `northest` example).
StatusOr<Value> EvalFunction(const std::string& name,
                             const std::vector<Value>& args) {
  auto geometry_arg = [&args, &name]() -> StatusOr<Geometry> {
    if (args.size() != 1 || args[0].type() != ValueType::kGeometry) {
      return Status::InvalidArgument(name + "() expects one geometry");
    }
    return args[0].as_geometry();
  };
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), ::tolower);
  if (lower == "area") {
    PICTDB_ASSIGN_OR_RETURN(const Geometry g, geometry_arg());
    return Value(g.Area());
  }
  if (lower == "perimeter") {
    PICTDB_ASSIGN_OR_RETURN(const Geometry g, geometry_arg());
    if (g.is_region()) return Value(g.region().Perimeter());
    if (g.is_rect()) return Value(2.0 * g.rect().Margin());
    if (g.is_segment()) return Value(g.segment().Length());
    return Value(0.0);
  }
  if (lower == "north" || lower == "northest") {
    PICTDB_ASSIGN_OR_RETURN(const Geometry g, geometry_arg());
    return Value(g.Mbr().hi.y);
  }
  if (lower == "south") {
    PICTDB_ASSIGN_OR_RETURN(const Geometry g, geometry_arg());
    return Value(g.Mbr().lo.y);
  }
  if (lower == "east") {
    PICTDB_ASSIGN_OR_RETURN(const Geometry g, geometry_arg());
    return Value(g.Mbr().hi.x);
  }
  if (lower == "west") {
    PICTDB_ASSIGN_OR_RETURN(const Geometry g, geometry_arg());
    return Value(g.Mbr().lo.x);
  }
  if (lower == "centerx") {
    PICTDB_ASSIGN_OR_RETURN(const Geometry g, geometry_arg());
    return Value(g.Mbr().Center().x);
  }
  if (lower == "centery") {
    PICTDB_ASSIGN_OR_RETURN(const Geometry g, geometry_arg());
    return Value(g.Mbr().Center().y);
  }

  // Two-geometry forms: the spatial operators as callable predicates
  // ("system defined procedures from within the where-clause", §2.2)
  // plus distance. String arguments are parsed as WKT so constant
  // geometries can be written inline.
  auto geometry_pair = [&args, &name]() -> StatusOr<std::pair<Geometry,
                                                              Geometry>> {
    if (args.size() != 2) {
      return Status::InvalidArgument(name + "() expects two geometries");
    }
    std::pair<Geometry, Geometry> out;
    for (int i = 0; i < 2; ++i) {
      const Value& v = args[i];
      Geometry* slot = i == 0 ? &out.first : &out.second;
      if (v.type() == ValueType::kGeometry) {
        *slot = v.as_geometry();
      } else if (v.type() == ValueType::kString) {
        PICTDB_ASSIGN_OR_RETURN(*slot, geom::ParseWkt(v.as_string()));
      } else {
        return Status::InvalidArgument(name + "() argument " +
                                       std::to_string(i + 1) +
                                       " is not a geometry");
      }
    }
    return out;
  };
  auto boolean = [](bool b) { return Value(static_cast<int64_t>(b ? 1 : 0)); };
  if (lower == "covered-by" || lower == "covered_by") {
    PICTDB_ASSIGN_OR_RETURN(const auto pair, geometry_pair());
    return boolean(geom::CoveredBy(pair.first, pair.second));
  }
  if (lower == "covering" || lower == "covers") {
    PICTDB_ASSIGN_OR_RETURN(const auto pair, geometry_pair());
    return boolean(geom::Covering(pair.first, pair.second));
  }
  if (lower == "overlapping" || lower == "intersecting") {
    PICTDB_ASSIGN_OR_RETURN(const auto pair, geometry_pair());
    return boolean(geom::Overlapping(pair.first, pair.second));
  }
  if (lower == "disjoined" || lower == "disjoint") {
    PICTDB_ASSIGN_OR_RETURN(const auto pair, geometry_pair());
    return boolean(geom::Disjoined(pair.first, pair.second));
  }
  if (lower == "distance") {
    PICTDB_ASSIGN_OR_RETURN(const auto pair, geometry_pair());
    return Value(geom::DistanceBetween(pair.first, pair.second));
  }
  return Status::NotSupported("unknown function " + name);
}

/// Aggregate functions over the qualifying rows. `count` with no
/// argument is count(*); `northest` etc. fold geometry extents, the
/// paper's "aggregate function on a set of highway segments".
bool IsAggregateName(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), ::tolower);
  return lower == "count" || lower == "min" || lower == "max" ||
         lower == "sum" || lower == "avg" || lower == "northest" ||
         lower == "southest" || lower == "eastest" || lower == "westest";
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == Expr::Kind::kCall && IsAggregateName(expr.func)) {
    return true;
  }
  for (const auto& arg : expr.args) {
    if (ContainsAggregate(*arg)) return true;
  }
  return false;
}

StatusOr<Value> EvalExpr(const Expr& expr, const RowCtx& ctx);

/// Evaluate one aggregate call over all qualifying rows.
StatusOr<Value> EvalAggregate(const Expr& call,
                              const std::vector<RowCtx>& rows) {
  std::string lower = call.func;
  std::transform(lower.begin(), lower.end(), lower.begin(), ::tolower);

  if (lower == "count" && call.args.empty()) {
    return Value(static_cast<int64_t>(rows.size()));
  }
  if (call.args.size() != 1) {
    return Status::InvalidArgument(call.func +
                                   "() aggregate expects one argument");
  }

  int64_t count = 0;
  double sum = 0.0;
  bool have_best = false;
  Value best;
  double extent = 0.0;
  for (const RowCtx& row : rows) {
    PICTDB_ASSIGN_OR_RETURN(const Value v, EvalExpr(*call.args[0], row));
    if (v.is_null()) continue;
    ++count;
    if (lower == "count") continue;
    if (lower == "sum" || lower == "avg") {
      PICTDB_ASSIGN_OR_RETURN(const double d, v.AsNumeric());
      sum += d;
      continue;
    }
    if (lower == "min" || lower == "max") {
      if (!have_best) {
        best = v;
        have_best = true;
      } else {
        PICTDB_ASSIGN_OR_RETURN(const int cmp, v.Compare(best));
        if ((lower == "min" && cmp < 0) || (lower == "max" && cmp > 0)) {
          best = v;
        }
      }
      continue;
    }
    // Geometry extent folds.
    if (v.type() != ValueType::kGeometry) {
      return Status::InvalidArgument(call.func + "() expects geometries");
    }
    const geom::Rect mbr = v.as_geometry().Mbr();
    double candidate = 0.0;
    if (lower == "northest") candidate = mbr.hi.y;
    else if (lower == "southest") candidate = mbr.lo.y;
    else if (lower == "eastest") candidate = mbr.hi.x;
    else if (lower == "westest") candidate = mbr.lo.x;
    if (!have_best) {
      extent = candidate;
      have_best = true;
    } else if (lower == "northest" || lower == "eastest") {
      extent = std::max(extent, candidate);
    } else {
      extent = std::min(extent, candidate);
    }
  }

  if (lower == "count") return Value(count);
  if (lower == "sum") return count > 0 ? Value(sum) : Value();
  if (lower == "avg") {
    return count > 0 ? Value(sum / static_cast<double>(count)) : Value();
  }
  if (lower == "min" || lower == "max") {
    return have_best ? best : Value();
  }
  return have_best ? Value(extent) : Value();
}

StatusOr<Value> EvalExpr(const Expr& expr, const RowCtx& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumnRef: {
      PICTDB_ASSIGN_OR_RETURN(
          const auto loc, ResolveColumn(*ctx.rels, expr.rel, expr.column));
      return ctx.tuples[loc.first]->at(loc.second);
    }
    case Expr::Kind::kCompare: {
      PICTDB_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*expr.args[0], ctx));
      PICTDB_ASSIGN_OR_RETURN(const Value rhs, EvalExpr(*expr.args[1], ctx));
      PICTDB_ASSIGN_OR_RETURN(const int cmp, lhs.Compare(rhs));
      bool result = false;
      switch (expr.cmp) {
        case Expr::CmpOp::kLt:
          result = cmp < 0;
          break;
        case Expr::CmpOp::kLe:
          result = cmp <= 0;
          break;
        case Expr::CmpOp::kGt:
          result = cmp > 0;
          break;
        case Expr::CmpOp::kGe:
          result = cmp >= 0;
          break;
        case Expr::CmpOp::kEq:
          result = cmp == 0;
          break;
        case Expr::CmpOp::kNe:
          result = cmp != 0;
          break;
      }
      return Value(static_cast<int64_t>(result ? 1 : 0));
    }
    case Expr::Kind::kAnd: {
      PICTDB_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*expr.args[0], ctx));
      if (lhs.is_null() || lhs.as_int() == 0) {
        return Value(static_cast<int64_t>(0));
      }
      return EvalExpr(*expr.args[1], ctx);
    }
    case Expr::Kind::kOr: {
      PICTDB_ASSIGN_OR_RETURN(const Value lhs, EvalExpr(*expr.args[0], ctx));
      if (!lhs.is_null() && lhs.as_int() != 0) {
        return Value(static_cast<int64_t>(1));
      }
      return EvalExpr(*expr.args[1], ctx);
    }
    case Expr::Kind::kNot: {
      PICTDB_ASSIGN_OR_RETURN(const Value v, EvalExpr(*expr.args[0], ctx));
      const bool truthy = !v.is_null() && v.as_int() != 0;
      return Value(static_cast<int64_t>(truthy ? 0 : 1));
    }
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      for (const auto& arg : expr.args) {
        PICTDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, ctx));
        args.push_back(std::move(v));
      }
      return EvalFunction(expr.func, args);
    }
  }
  return Status::Internal("unreachable expression kind");
}

StatusOr<bool> EvalPredicate(const Expr& expr, const RowCtx& ctx) {
  PICTDB_ASSIGN_OR_RETURN(const Value v, EvalExpr(expr, ctx));
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.as_int() != 0;
  return Status::InvalidArgument("where-clause is not boolean");
}

/// Exact spatial predicate between two geometries.
bool EvalSpatialOp(SpatialOp op, const Geometry& lhs, const Geometry& rhs) {
  switch (op) {
    case SpatialOp::kCoveredBy:
      return geom::CoveredBy(lhs, rhs);
    case SpatialOp::kCovering:
      return geom::Covering(lhs, rhs);
    case SpatialOp::kOverlapping:
      return geom::Overlapping(lhs, rhs);
    case SpatialOp::kDisjoined:
      return geom::Disjoined(lhs, rhs);
  }
  return false;
}

SpatialOp Flip(SpatialOp op) {
  switch (op) {
    case SpatialOp::kCoveredBy:
      return SpatialOp::kCovering;
    case SpatialOp::kCovering:
      return SpatialOp::kCoveredBy;
    default:
      return op;  // overlapping/disjoined are symmetric
  }
}

/// R-tree candidate search for `column-geometry <op> probe-rect`.
/// The MBR-level filter is conservative: candidates are a superset of the
/// exact answer (refinement happens on the actual geometries).
StatusOr<std::vector<rtree::LeafHit>> IndexCandidates(
    const rtree::RTree& index, SpatialOp op, const geom::Rect& probe,
    rtree::SearchStats* stats) {
  switch (op) {
    case SpatialOp::kCoveredBy:
      // Object within probe -> object MBR within probe.
      return index.SearchContainedIn(probe, stats);
    case SpatialOp::kCovering:
      // Object covers probe -> object MBR contains probe.
      return index.SearchCustom(
          [&probe](const geom::Rect& r) { return r.Contains(probe); },
          [&probe](const geom::Rect& r) { return r.Contains(probe); },
          stats);
    case SpatialOp::kOverlapping:
      return index.SearchIntersects(probe, stats);
    case SpatialOp::kDisjoined:
      // Everything whose MBR misses the probe is certainly disjoint, but
      // intersecting MBRs may still be disjoint geometries, so all
      // entries are candidates. The index cannot prune.
      return index.SearchCustom([](const geom::Rect&) { return true; },
                                [](const geom::Rect&) { return true; },
                                stats);
  }
  return Status::Internal("unreachable spatial op");
}

/// All rids of a relation (sequential scan order).
StatusOr<std::vector<Rid>> AllRids(const Relation& rel) {
  std::vector<Rid> out;
  PICTDB_ASSIGN_OR_RETURN(Rid rid, rel.FirstRid());
  while (rid.IsValid()) {
    out.push_back(rid);
    PICTDB_ASSIGN_OR_RETURN(rid, rel.NextRid(rid));
  }
  return out;
}

/// Collect `col CMP literal` conjuncts usable for B+-tree narrowing.
struct IndexableConjunct {
  std::string column;
  Expr::CmpOp cmp;
  Value literal;
};

void CollectConjuncts(const Expr& expr, const BoundRelation& rel,
                      std::vector<IndexableConjunct>* out) {
  if (expr.kind == Expr::Kind::kAnd) {
    CollectConjuncts(*expr.args[0], rel, out);
    CollectConjuncts(*expr.args[1], rel, out);
    return;
  }
  if (expr.kind != Expr::Kind::kCompare) return;
  const Expr* column_side = nullptr;
  const Expr* literal_side = nullptr;
  Expr::CmpOp cmp = expr.cmp;
  if (expr.args[0]->kind == Expr::Kind::kColumnRef &&
      expr.args[1]->kind == Expr::Kind::kLiteral) {
    column_side = expr.args[0].get();
    literal_side = expr.args[1].get();
  } else if (expr.args[1]->kind == Expr::Kind::kColumnRef &&
             expr.args[0]->kind == Expr::Kind::kLiteral) {
    column_side = expr.args[1].get();
    literal_side = expr.args[0].get();
    // Mirror the comparison: 5 < col  <=>  col > 5.
    switch (expr.cmp) {
      case Expr::CmpOp::kLt:
        cmp = Expr::CmpOp::kGt;
        break;
      case Expr::CmpOp::kLe:
        cmp = Expr::CmpOp::kGe;
        break;
      case Expr::CmpOp::kGt:
        cmp = Expr::CmpOp::kLt;
        break;
      case Expr::CmpOp::kGe:
        cmp = Expr::CmpOp::kLe;
        break;
      default:
        break;
    }
  } else {
    return;
  }
  if (!column_side->rel.empty() && column_side->rel != rel.name) return;
  if (!rel.rel->HasBTreeIndex(column_side->column)) return;
  out->push_back(IndexableConjunct{column_side->column, cmp,
                                   literal_side->literal});
}

}  // namespace

std::string ResultSet::ToString() const {
  // Column widths from headers and cell contents.
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].size();
  }
  cells.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> line;
    for (size_t c = 0; c < row.size(); ++c) {
      line.push_back(row[c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream os;
  auto emit_row = [&os, &widths](const std::vector<std::string>& line) {
    for (size_t c = 0; c < line.size(); ++c) {
      if (c) os << " | ";
      os << line[c];
      if (c + 1 < line.size()) {
        os << std::string(widths[c] - line[c].size(), ' ');
      }
    }
    os << "\n";
  };
  emit_row(columns);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 3 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& line : cells) emit_row(line);
  os << "(" << rows.size() << " row" << (rows.size() == 1 ? "" : "s")
     << ")\n";
  return os.str();
}

StatusOr<std::string> Executor::ExplainQuery(std::string_view text) const {
  PICTDB_ASSIGN_OR_RETURN(const std::unique_ptr<SelectStmt> stmt,
                          Parse(text));
  return Explain(*stmt);
}

StatusOr<std::string> Executor::Explain(const SelectStmt& stmt) const {
  std::ostringstream os;

  // Relations and their picture associations.
  struct RelInfo {
    const Relation* rel;
    std::string name;
    bool has_spatial = false;
    std::string loc_column;
  };
  std::vector<RelInfo> rels;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    RelInfo info;
    info.name = stmt.from[i];
    PICTDB_ASSIGN_OR_RETURN(info.rel, catalog_->GetRelation(info.name));
    std::vector<std::string> candidates;
    if (stmt.on.size() == stmt.from.size()) {
      candidates.push_back(stmt.on[i]);
    } else {
      candidates = stmt.on;
    }
    for (const std::string& pic : candidates) {
      auto column = catalog_->AssociationColumn(pic, info.name);
      if (column.ok()) {
        info.loc_column = *column;
        info.has_spatial = info.rel->HasSpatialIndex(*column);
        break;
      }
    }
    rels.push_back(info);
  }

  if (!stmt.at.has_value()) {
    std::vector<std::string> index_columns;
    if (stmt.where != nullptr && rels.size() == 1) {
      // Mirror the executor's conjunct detection.
      BoundRelation bound;
      bound.rel = rels[0].rel;
      bound.name = rels[0].name;
      std::vector<IndexableConjunct> conjuncts;
      CollectConjuncts(*stmt.where, bound, &conjuncts);
      for (const IndexableConjunct& c : conjuncts) {
        if (c.cmp != Expr::CmpOp::kNe) index_columns.push_back(c.column);
      }
    }
    if (!index_columns.empty()) {
      os << "access: B+-tree index range scan on ";
      for (size_t i = 0; i < index_columns.size(); ++i) {
        if (i) os << " intersect ";
        os << rels[0].name << "." << index_columns[i];
      }
      os << " (indirect search)\n";
    } else {
      os << "access: sequential scan of " << rels[0].name << "\n";
    }
  } else {
    const LocExpr* lhs = &stmt.at->lhs;
    const LocExpr* rhs = &stmt.at->rhs;
    SpatialOp op = stmt.at->op;
    if (lhs->kind != LocExpr::Kind::kColumn &&
        rhs->kind == LocExpr::Kind::kColumn) {
      std::swap(lhs, rhs);
      op = Flip(op);
    }
    if (rhs->kind == LocExpr::Kind::kWindow) {
      const bool indexed = !rels.empty() && rels[0].has_spatial;
      os << "access: direct spatial search, " << ToString(op)
         << " window, on " << rels[0].name << "."
         << (rels[0].loc_column.empty() ? lhs->column : rels[0].loc_column)
         << (indexed ? " via packed R-tree" : " via sequential refine");
      if (op == SpatialOp::kDisjoined) {
        os << " (disjoined cannot prune: full leaf sweep)";
      }
      os << "\n";
    } else if (rhs->kind == LocExpr::Kind::kColumn) {
      const bool both_indexed = rels.size() == 2 && rels[0].has_spatial &&
                                rels[1].has_spatial;
      os << "access: juxtaposition of " << stmt.from[0] << " x "
         << stmt.from[1] << " ("
         << (both_indexed && op != SpatialOp::kDisjoined
                 ? "simultaneous R-tree traversal"
                 : "nested-loop pairing")
         << "), refine " << ToString(op) << "\n";
    } else {
      os << "access: nested mapping — inner plan binds the outer "
         << ToString(op) << " search on " << rels[0].name << "\n";
      Executor inner(catalog_);
      PICTDB_ASSIGN_OR_RETURN(const std::string inner_plan,
                              inner.Explain(*rhs->subquery));
      std::istringstream lines(inner_plan);
      std::string line;
      while (std::getline(lines, line)) {
        os << "  inner> " << line << "\n";
      }
    }
  }

  if (stmt.where != nullptr) {
    os << "filter: " << stmt.where->ToString() << "\n";
  }
  os << "project: ";
  if (stmt.star) {
    os << "*";
  } else {
    for (size_t i = 0; i < stmt.targets.size(); ++i) {
      if (i) os << ", ";
      os << stmt.targets[i].display;
    }
  }
  os << "\n";
  return os.str();
}

StatusOr<ResultSet> Executor::Query(std::string_view text) const {
  PICTDB_ASSIGN_OR_RETURN(const std::unique_ptr<SelectStmt> stmt,
                          Parse(text));
  return Execute(*stmt);
}

StatusOr<ResultSet> Executor::Run(std::string_view text) {
  PICTDB_ASSIGN_OR_RETURN(const Statement stmt, ParseStatement(text));
  if (stmt.select != nullptr) return Execute(*stmt.select);
  if (stmt.insert != nullptr) return ExecuteInsert(*stmt.insert);
  if (stmt.update != nullptr) return ExecuteUpdate(*stmt.update);
  return ExecuteDelete(*stmt.del);
}

namespace {

/// Coerce an insert literal to the column's declared type. Ints widen to
/// double columns; strings targeting geometry columns are parsed as WKT.
StatusOr<Value> CoerceLiteral(const Value& literal, ValueType target,
                              const std::string& column) {
  if (literal.is_null() || literal.type() == target) return literal;
  if (target == ValueType::kDouble && literal.type() == ValueType::kInt) {
    return Value(static_cast<double>(literal.as_int()));
  }
  if (target == ValueType::kInt && literal.type() == ValueType::kDouble) {
    const double v = literal.as_double();
    if (v == static_cast<double>(static_cast<int64_t>(v))) {
      return Value(static_cast<int64_t>(v));
    }
    return Status::InvalidArgument("non-integral value for int column " +
                                   column);
  }
  if (target == ValueType::kGeometry &&
      literal.type() == ValueType::kString) {
    PICTDB_ASSIGN_OR_RETURN(geom::Geometry g,
                            geom::ParseWkt(literal.as_string()));
    return Value(std::move(g));
  }
  return Status::InvalidArgument("column " + column + " expects " +
                                 TypeName(target) + ", got " +
                                 TypeName(literal.type()));
}

ResultSet RowsAffected(uint64_t n) {
  ResultSet result;
  result.columns = {"rows_affected"};
  result.rows.push_back({Value(static_cast<int64_t>(n))});
  result.stats.rows_emitted = 1;
  return result;
}

}  // namespace

StatusOr<ResultSet> Executor::ExecuteInsert(const InsertStmt& stmt) {
  PICTDB_ASSIGN_OR_RETURN(Relation * rel,
                          catalog_->GetRelation(stmt.relation));
  const rel::Schema& schema = rel->schema();
  if (stmt.values.size() != schema.size()) {
    return Status::InvalidArgument(
        "insert arity " + std::to_string(stmt.values.size()) +
        " != schema arity " + std::to_string(schema.size()));
  }
  std::vector<Value> values;
  for (size_t i = 0; i < stmt.values.size(); ++i) {
    if (stmt.values[i]->kind != Expr::Kind::kLiteral) {
      return Status::InvalidArgument("insert values must be literals");
    }
    PICTDB_ASSIGN_OR_RETURN(
        Value v, CoerceLiteral(stmt.values[i]->literal, schema.at(i).type,
                               schema.at(i).name));
    values.push_back(std::move(v));
  }
  PICTDB_RETURN_IF_ERROR(rel->Insert(Tuple(std::move(values))).status());
  return RowsAffected(1);
}

namespace {

/// Shared DML qualification: build a star-projection probe over one
/// relation with the same on/at/where semantics as a select mapping.
/// The where tree is *borrowed* (not copied); release it via the guard
/// before the borrowed Expr goes back to its owner.
struct DmlProbe {
  SelectStmt select;

  ~DmlProbe() { select.where.release(); }
};

Status FillDmlProbe(const std::string& relation,
                    const std::vector<std::string>& on,
                    const std::optional<AtClause>& at, Expr* borrowed_where,
                    DmlProbe* probe) {
  probe->select.star = true;
  probe->select.from = {relation};
  probe->select.on = on;
  if (at.has_value()) {
    if (at->rhs.kind == LocExpr::Kind::kSubquery ||
        at->lhs.kind == LocExpr::Kind::kSubquery) {
      return Status::NotSupported("nested mappings in DML qualification");
    }
    AtClause copy;
    copy.op = at->op;
    copy.lhs.kind = at->lhs.kind;
    copy.lhs.window = at->lhs.window;
    copy.lhs.rel = at->lhs.rel;
    copy.lhs.column = at->lhs.column;
    copy.rhs.kind = at->rhs.kind;
    copy.rhs.window = at->rhs.window;
    copy.rhs.rel = at->rhs.rel;
    copy.rhs.column = at->rhs.column;
    probe->select.at = std::move(copy);
  }
  probe->select.where.reset(borrowed_where);
  return Status::OK();
}

}  // namespace

StatusOr<ResultSet> Executor::ExecuteUpdate(const UpdateStmt& stmt) {
  PICTDB_ASSIGN_OR_RETURN(Relation * rel,
                          catalog_->GetRelation(stmt.relation));
  const rel::Schema& schema = rel->schema();

  // Pre-resolve and coerce the assignments.
  std::vector<std::pair<size_t, Value>> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    PICTDB_ASSIGN_OR_RETURN(const size_t idx, schema.IndexOf(column));
    if (expr->kind != Expr::Kind::kLiteral) {
      return Status::InvalidArgument("update values must be literals");
    }
    PICTDB_ASSIGN_OR_RETURN(
        Value v, CoerceLiteral(expr->literal, schema.at(idx).type, column));
    assignments.emplace_back(idx, std::move(v));
  }

  DmlProbe probe;
  PICTDB_RETURN_IF_ERROR(FillDmlProbe(stmt.relation, stmt.on, stmt.at,
                                      stmt.where.get(), &probe));
  PICTDB_ASSIGN_OR_RETURN(const ResultSet victims, Execute(probe.select));

  uint64_t updated = 0;
  for (const std::vector<storage::Rid>& row : victims.row_rids) {
    PICTDB_CHECK(row.size() == 1);
    PICTDB_ASSIGN_OR_RETURN(Tuple tuple, rel->Get(row[0]));
    for (const auto& [idx, value] : assignments) {
      tuple.at(idx) = value;
    }
    PICTDB_RETURN_IF_ERROR(rel->Update(row[0], tuple).status());
    ++updated;
  }
  return RowsAffected(updated);
}

StatusOr<ResultSet> Executor::ExecuteDelete(const DeleteStmt& stmt) {
  // Qualify via the select machinery — same on/at/where semantics — the
  // probe's row provenance (row_rids) identifies the victims.
  PICTDB_ASSIGN_OR_RETURN(Relation * rel,
                          catalog_->GetRelation(stmt.relation));

  DmlProbe probe;
  PICTDB_RETURN_IF_ERROR(FillDmlProbe(stmt.relation, stmt.on, stmt.at,
                                      stmt.where.get(), &probe));
  PICTDB_ASSIGN_OR_RETURN(const ResultSet victims, Execute(probe.select));

  uint64_t deleted = 0;
  for (const std::vector<storage::Rid>& row : victims.row_rids) {
    PICTDB_CHECK(row.size() == 1);
    PICTDB_RETURN_IF_ERROR(rel->Delete(row[0]));
    ++deleted;
  }
  return RowsAffected(deleted);
}

StatusOr<ResultSet> Executor::Execute(const SelectStmt& stmt) const {
  ResultSet result;

  // --- Bind from-relations and pictures -----------------------------------
  if (stmt.from.empty()) {
    return Status::InvalidArgument("from-clause is empty");
  }
  if (stmt.from.size() > 2) {
    return Status::NotSupported("at most two relations per mapping");
  }
  std::vector<BoundRelation> rels;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    BoundRelation bound;
    bound.name = stmt.from[i];
    PICTDB_ASSIGN_OR_RETURN(bound.rel, std::as_const(*catalog_).GetRelation(
                                           bound.name));
    // Bind to a picture: positional when counts match, otherwise the
    // first listed picture the relation is associated with.
    std::vector<std::string> candidates;
    if (stmt.on.size() == stmt.from.size()) {
      candidates.push_back(stmt.on[i]);
    } else {
      candidates = stmt.on;
    }
    for (const std::string& pic : candidates) {
      auto column = catalog_->AssociationColumn(pic, bound.name);
      if (column.ok()) {
        bound.loc_column = *column;
        auto index = bound.rel->SpatialIndex(*column);
        if (index.ok()) bound.index = *index;
        break;
      }
    }
    if (!stmt.on.empty() && bound.loc_column.empty()) {
      return Status::InvalidArgument("relation " + bound.name +
                                     " is not on any listed picture");
    }
    rels.push_back(bound);
  }

  // --- Resolve the at-clause into candidate row sources --------------------
  // `candidates` holds joined rows as rid vectors (one rid per relation).
  std::vector<std::vector<Rid>> candidate_rows;

  // Resolve a LocExpr column to its bound relation index + column index.
  auto resolve_loc =
      [&rels](const LocExpr& loc) -> StatusOr<std::pair<size_t, size_t>> {
    PICTDB_CHECK(loc.kind == LocExpr::Kind::kColumn);
    // Bare `loc` resolves against loc-column bindings first.
    if (loc.rel.empty()) {
      for (size_t r = 0; r < rels.size(); ++r) {
        if (!rels[r].loc_column.empty() && rels[r].loc_column == loc.column) {
          PICTDB_ASSIGN_OR_RETURN(
              const size_t c, rels[r].rel->schema().IndexOf(loc.column));
          return std::make_pair(r, c);
        }
      }
    }
    return ResolveColumn(rels, loc.rel, loc.column);
  };

  const Relation& first_rel = *rels[0].rel;

  if (!stmt.at.has_value()) {
    if (rels.size() != 1) {
      return Status::NotSupported(
          "two-relation mappings need an at-clause (juxtaposition)");
    }
    // Indirect search: use every indexable conjunct and intersect the
    // rid sets — the paper's "intersection of the indices speeds up the
    // search". Falls back to a sequential scan when nothing is usable.
    std::vector<Rid> rids;
    bool used_index = false;
    if (stmt.where != nullptr) {
      std::vector<IndexableConjunct> conjuncts;
      CollectConjuncts(*stmt.where, rels[0], &conjuncts);
      for (const IndexableConjunct& c : conjuncts) {
        Value lo, hi;
        switch (c.cmp) {
          case Expr::CmpOp::kEq:
            lo = c.literal;
            hi = c.literal;
            break;
          case Expr::CmpOp::kLt:
          case Expr::CmpOp::kLe:
            hi = c.literal;
            break;
          case Expr::CmpOp::kGt:
          case Expr::CmpOp::kGe:
            lo = c.literal;
            break;
          case Expr::CmpOp::kNe:
            continue;  // not indexable
        }
        PICTDB_ASSIGN_OR_RETURN(std::vector<Rid> matched,
                                first_rel.IndexRange(c.column, lo, hi));
        if (!used_index) {
          rids = std::move(matched);
          used_index = true;
        } else {
          // Intersect with the running candidate set.
          std::sort(matched.begin(), matched.end());
          std::vector<Rid> intersection;
          for (const Rid& rid : rids) {
            if (std::binary_search(matched.begin(), matched.end(), rid)) {
              intersection.push_back(rid);
            }
          }
          rids = std::move(intersection);
        }
        result.stats.used_btree_index = true;
        if (rids.empty()) break;  // no candidate survives
      }
    }
    if (!used_index) {
      PICTDB_ASSIGN_OR_RETURN(rids, AllRids(first_rel));
    }
    for (const Rid& rid : rids) candidate_rows.push_back({rid});
  } else {
    AtClause at = AtClause{};
    at.op = stmt.at->op;
    const LocExpr* lhs = &stmt.at->lhs;
    const LocExpr* rhs = &stmt.at->rhs;

    // A bare identifier that is not a relation column may be a named
    // location ("predefined outside the retrieve mapping").
    auto named_location =
        [this](const LocExpr& loc) -> const Geometry* {
      if (loc.kind != LocExpr::Kind::kColumn || !loc.rel.empty()) {
        return nullptr;
      }
      auto g = catalog_->GetLocation(loc.column);
      return g.ok() ? *g : nullptr;
    };
    auto is_relation_column = [&](const LocExpr& loc) {
      return loc.kind == LocExpr::Kind::kColumn &&
             named_location(loc) == nullptr;
    };

    // Normalize: keep a relation column on the left.
    if (!is_relation_column(*lhs) && is_relation_column(*rhs)) {
      std::swap(lhs, rhs);
      at.op = Flip(at.op);
    }
    if (!is_relation_column(*lhs)) {
      return Status::InvalidArgument(
          "at-clause needs a pictorial column on one side");
    }
    PICTDB_ASSIGN_OR_RETURN(const auto lhs_loc, resolve_loc(*lhs));
    const BoundRelation& lhs_rel = rels[lhs_loc.first];
    const size_t lhs_col = lhs_loc.second;
    if (lhs_rel.rel->schema().at(lhs_col).type != ValueType::kGeometry) {
      return Status::InvalidArgument("at-clause column is not pictorial");
    }

    auto geometry_of = [&](const BoundRelation& bound, size_t col,
                           const Rid& rid) -> StatusOr<Geometry> {
      PICTDB_ASSIGN_OR_RETURN(const Tuple t, bound.rel->Get(rid));
      ++result.stats.tuples_fetched;
      if (t.at(col).is_null()) return Geometry();
      return t.at(col).as_geometry();
    };

    // Direct search against one probe geometry; returns matching rids.
    auto direct_search =
        [&](const BoundRelation& bound, size_t col, SpatialOp op,
            const Geometry& probe) -> StatusOr<std::vector<Rid>> {
      std::vector<Rid> out;
      const rtree::RTree* index =
          bound.rel->HasSpatialIndex(bound.rel->schema().at(col).name)
              ? *bound.rel->SpatialIndex(bound.rel->schema().at(col).name)
              : bound.index;
      if (index != nullptr) {
        rtree::SearchStats stats;
        PICTDB_ASSIGN_OR_RETURN(
            const std::vector<rtree::LeafHit> hits,
            IndexCandidates(*index, op, probe.Mbr(), &stats));
        result.stats.used_spatial_index = true;
        result.stats.rtree_nodes_visited += stats.nodes_visited;
        for (const rtree::LeafHit& hit : hits) {
          PICTDB_ASSIGN_OR_RETURN(const Geometry g,
                                  geometry_of(bound, col, hit.rid));
          if (EvalSpatialOp(op, g, probe)) out.push_back(hit.rid);
        }
        return out;
      }
      // No index: sequential refine.
      PICTDB_ASSIGN_OR_RETURN(const std::vector<Rid> rids, AllRids(*bound.rel));
      for (const Rid& rid : rids) {
        PICTDB_ASSIGN_OR_RETURN(const Geometry g,
                                geometry_of(bound, col, rid));
        if (EvalSpatialOp(op, g, probe)) out.push_back(rid);
      }
      return out;
    };

    const Geometry* rhs_named = named_location(*rhs);
    if (rhs->kind == LocExpr::Kind::kWindow || rhs_named != nullptr) {
      // Direct spatial search against a constant area: a window literal
      // or a predefined named location.
      if (rels.size() != 1 || lhs_loc.first != 0) {
        return Status::NotSupported(
            "window at-clause applies to a single-relation mapping");
      }
      const Geometry probe =
          rhs_named != nullptr ? *rhs_named : Geometry(rhs->window);
      PICTDB_ASSIGN_OR_RETURN(
          const std::vector<Rid> rids,
          direct_search(lhs_rel, lhs_col, at.op, probe));
      for (const Rid& rid : rids) candidate_rows.push_back({rid});
    } else if (rhs->kind == LocExpr::Kind::kColumn) {
      // Juxtaposition: simultaneous search of two spatial organizations.
      PICTDB_ASSIGN_OR_RETURN(const auto rhs_loc, resolve_loc(*rhs));
      if (rhs_loc.first == lhs_loc.first) {
        return Status::NotSupported("self-juxtaposition is not supported");
      }
      if (rels.size() != 2) {
        return Status::InvalidArgument(
            "column-to-column at-clause needs two relations");
      }
      const BoundRelation& rhs_rel = rels[rhs_loc.first];
      const size_t rhs_col = rhs_loc.second;

      std::vector<std::pair<Rid, Rid>> pairs;  // (lhs rid, rhs rid)
      if (lhs_rel.index != nullptr && rhs_rel.index != nullptr &&
          at.op != SpatialOp::kDisjoined) {
        rtree::JoinStats join_stats;
        PICTDB_RETURN_IF_ERROR(rtree::SpatialJoin(
            *lhs_rel.index, *rhs_rel.index,
            [&pairs](const rtree::LeafHit& l, const rtree::LeafHit& r) {
              pairs.emplace_back(l.rid, r.rid);
            },
            &join_stats));
        result.stats.used_spatial_join = true;
        result.stats.used_spatial_index = true;
        result.stats.rtree_nodes_visited += join_stats.nodes_visited;
      } else {
        // Disjoined (or missing indexes): all pairs are candidates.
        PICTDB_ASSIGN_OR_RETURN(const std::vector<Rid> lhs_rids,
                                AllRids(*lhs_rel.rel));
        PICTDB_ASSIGN_OR_RETURN(const std::vector<Rid> rhs_rids,
                                AllRids(*rhs_rel.rel));
        for (const Rid& l : lhs_rids) {
          for (const Rid& r : rhs_rids) pairs.emplace_back(l, r);
        }
      }
      for (const auto& [lrid, rrid] : pairs) {
        PICTDB_ASSIGN_OR_RETURN(const Geometry lg,
                                geometry_of(lhs_rel, lhs_col, lrid));
        PICTDB_ASSIGN_OR_RETURN(const Geometry rg,
                                geometry_of(rhs_rel, rhs_col, rrid));
        if (!EvalSpatialOp(at.op, lg, rg)) continue;
        std::vector<Rid> row(2);
        row[lhs_loc.first] = lrid;
        row[rhs_loc.first] = rrid;
        candidate_rows.push_back(std::move(row));
      }
    } else {
      // Nested mapping: the inner result's locations bind the outer
      // search ("the location passed from the interior level directs the
      // search in the exterior one").
      if (rels.size() != 1 || lhs_loc.first != 0) {
        return Status::NotSupported(
            "nested at-clause applies to a single-relation mapping");
      }
      Executor inner_exec(catalog_);
      PICTDB_ASSIGN_OR_RETURN(const ResultSet inner,
                              inner_exec.Execute(*rhs->subquery));
      result.stats.rtree_nodes_visited += inner.stats.rtree_nodes_visited;
      if (inner.pictorial.empty()) {
        // No inner locations: the outer mapping selects nothing.
        candidate_rows.clear();
      }
      std::set<Rid> seen;
      for (const Geometry& probe : inner.pictorial) {
        PICTDB_ASSIGN_OR_RETURN(
            const std::vector<Rid> rids,
            direct_search(lhs_rel, lhs_col, at.op, probe));
        for (const Rid& rid : rids) {
          if (seen.insert(rid).second) candidate_rows.push_back({rid});
        }
      }
    }
  }

  // --- Where filter ----------------------------------------------------------
  std::vector<std::vector<Rid>> qualifying;
  std::vector<std::vector<Tuple>> qualifying_tuples;
  for (const std::vector<Rid>& row : candidate_rows) {
    std::vector<Tuple> tuples;
    tuples.reserve(row.size());
    bool fetch_failed = false;
    for (size_t r = 0; r < row.size(); ++r) {
      auto t = rels[r].rel->Get(row[r]);
      if (!t.ok()) {
        fetch_failed = true;
        break;
      }
      ++result.stats.tuples_fetched;
      tuples.push_back(std::move(t).value());
    }
    if (fetch_failed) continue;

    if (stmt.where != nullptr) {
      RowCtx ctx;
      ctx.rels = &rels;
      for (const Tuple& t : tuples) ctx.tuples.push_back(&t);
      PICTDB_ASSIGN_OR_RETURN(const bool keep,
                              EvalPredicate(*stmt.where, ctx));
      if (!keep) continue;
    }
    qualifying.push_back(row);
    qualifying_tuples.push_back(std::move(tuples));
  }

  // --- Projection ---------------------------------------------------------------
  if (stmt.star) {
    for (size_t r = 0; r < rels.size(); ++r) {
      for (const rel::Column& col : rels[r].rel->schema().columns()) {
        result.columns.push_back(
            rels.size() > 1 ? rels[r].name + "." + col.name : col.name);
      }
    }
  } else {
    for (const TargetItem& item : stmt.targets) {
      result.columns.push_back(item.display);
    }
  }

  // Aggregate mappings (count/min/max/sum/avg/northest...) fold all
  // qualifying rows into one output row.
  bool has_aggregate = false;
  for (const TargetItem& item : stmt.targets) {
    if (ContainsAggregate(*item.expr)) has_aggregate = true;
  }
  if (has_aggregate) {
    for (const TargetItem& item : stmt.targets) {
      if (item.expr->kind != Expr::Kind::kCall ||
          !IsAggregateName(item.expr->func)) {
        return Status::NotSupported(
            "mixing aggregates with per-row targets needs group-by, "
            "which PSQL does not have");
      }
    }
    if (!stmt.order_by.empty()) {
      return Status::InvalidArgument(
          "order by is meaningless for an aggregate mapping");
    }
    std::vector<RowCtx> rows;
    rows.reserve(qualifying_tuples.size());
    for (const std::vector<Tuple>& tuples : qualifying_tuples) {
      RowCtx ctx;
      ctx.rels = &rels;
      for (const Tuple& t : tuples) ctx.tuples.push_back(&t);
      rows.push_back(std::move(ctx));
    }
    std::vector<Value> row;
    for (const TargetItem& item : stmt.targets) {
      PICTDB_ASSIGN_OR_RETURN(Value v, EvalAggregate(*item.expr, rows));
      row.push_back(std::move(v));
    }
    result.rows.push_back(std::move(row));
    result.stats.rows_emitted = 1;
    return result;
  }

  std::vector<std::vector<Value>> order_keys;
  for (size_t qi = 0; qi < qualifying_tuples.size(); ++qi) {
    const std::vector<Tuple>& tuples = qualifying_tuples[qi];
    RowCtx ctx;
    ctx.rels = &rels;
    for (const Tuple& t : tuples) ctx.tuples.push_back(&t);

    if (!stmt.order_by.empty()) {
      std::vector<Value> keys;
      for (const OrderItem& item : stmt.order_by) {
        PICTDB_ASSIGN_OR_RETURN(Value key, EvalExpr(*item.expr, ctx));
        keys.push_back(std::move(key));
      }
      order_keys.push_back(std::move(keys));
    }

    std::vector<Value> row;
    if (stmt.star) {
      for (const Tuple& t : tuples) {
        for (const Value& v : t.values()) row.push_back(v);
      }
    } else {
      for (const TargetItem& item : stmt.targets) {
        PICTDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
        row.push_back(std::move(v));
      }
    }
    // Route geometry outputs to the pictorial stream as well.
    for (const Value& v : row) {
      if (v.type() == ValueType::kGeometry) {
        result.pictorial.push_back(v.as_geometry());
      }
    }
    result.rows.push_back(std::move(row));
    result.row_rids.push_back(qualifying[qi]);
  }

  // --- Order by / limit -------------------------------------------------------
  if (!stmt.order_by.empty()) {
    std::vector<size_t> order(result.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    Status sort_error;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                         auto cmp = order_keys[a][k].Compare(order_keys[b][k]);
                         if (!cmp.ok()) {
                           if (sort_error.ok()) {
                             sort_error = std::move(cmp).status();
                           }
                           return false;
                         }
                         if (*cmp == 0) continue;
                         return stmt.order_by[k].descending ? *cmp > 0
                                                            : *cmp < 0;
                       }
                       return false;
                     });
    PICTDB_RETURN_IF_ERROR(sort_error);
    std::vector<std::vector<Value>> sorted_rows;
    std::vector<std::vector<Rid>> sorted_rids;
    sorted_rows.reserve(order.size());
    sorted_rids.reserve(order.size());
    for (const size_t i : order) {
      sorted_rows.push_back(std::move(result.rows[i]));
      sorted_rids.push_back(std::move(result.row_rids[i]));
    }
    result.rows = std::move(sorted_rows);
    result.row_rids = std::move(sorted_rids);
  }
  if (stmt.limit.has_value() && result.rows.size() > *stmt.limit) {
    result.rows.resize(*stmt.limit);
    result.row_rids.resize(*stmt.limit);
  }
  if (!stmt.order_by.empty() || stmt.limit.has_value()) {
    // Rebuild the pictorial stream to match the final row order/count.
    result.pictorial.clear();
    for (const auto& row : result.rows) {
      for (const Value& v : row) {
        if (v.type() == ValueType::kGeometry) {
          result.pictorial.push_back(v.as_geometry());
        }
      }
    }
  }
  result.stats.rows_emitted = result.rows.size();
  return result;
}

}  // namespace pictdb::psql
