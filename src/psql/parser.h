#ifndef PICTDB_PSQL_PARSER_H_
#define PICTDB_PSQL_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status_or.h"
#include "psql/ast.h"

namespace pictdb::psql {

/// Parse one PSQL mapping:
///
///   select city,state,population,loc
///   from   cities
///   on     us-map
///   at     loc covered-by {4 +- 4, 11 +- 9}
///   where  population > 450000
///
/// Nested mappings are allowed as the right side of the at-clause, with
/// or without parentheses, exactly as written in the paper.
StatusOr<std::unique_ptr<SelectStmt>> Parse(std::string_view text);

/// Parse any PSQL statement: a select mapping, or the §2.3 update forms
///   insert into cities values ('Springfield', 'IL', 116250, 'POINT(-89.6 39.8)')
///   delete from cities on us-map at loc covered-by {0 +- 1, 0 +- 1}
///   delete from cities where population < 1000
StatusOr<Statement> ParseStatement(std::string_view text);

}  // namespace pictdb::psql

#endif  // PICTDB_PSQL_PARSER_H_
