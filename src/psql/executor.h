#ifndef PICTDB_PSQL_EXECUTOR_H_
#define PICTDB_PSQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "psql/ast.h"
#include "rel/catalog.h"

namespace pictdb::psql {

/// How a query was answered; lets tests and benches verify that direct
/// spatial search actually used the R-tree.
struct ExecStats {
  bool used_spatial_index = false;
  bool used_btree_index = false;
  bool used_spatial_join = false;
  uint64_t rtree_nodes_visited = 0;
  uint64_t tuples_fetched = 0;
  uint64_t rows_emitted = 0;
};

/// Query result: alphanumeric rows for the standard terminal plus the
/// qualifying spatial objects for the graphics device (the paper routes
/// output to both).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<rel::Value>> rows;
  /// Geometry values appearing in the result rows, in row order — the
  /// pictorial output stream.
  std::vector<geom::Geometry> pictorial;
  /// Provenance: for non-aggregate results, the rid(s) of the tuple(s)
  /// each row came from (one per from-relation). Backs DML and callers
  /// that need to fetch the full tuples.
  std::vector<std::vector<storage::Rid>> row_rids;
  ExecStats stats;

  /// Fixed-width table rendering.
  std::string ToString() const;
};

/// Evaluates PSQL mappings against a Catalog. Direct spatial search uses
/// the packed R-trees; indirect search uses B+-tree indexes when the
/// where-clause allows; juxtaposition runs the simultaneous R-tree join.
///
/// The executor itself is stateless (all per-query state lives on the
/// stack, all accounting in the returned ResultSet), so the read path —
/// Query / Execute / Explain — is const and re-entrant: many threads may
/// run selects through one Executor over a shared catalog, as the query
/// service does. DML (Run with insert/update/delete) mutates the catalog
/// and must not run concurrently with other statements.
class Executor {
 public:
  explicit Executor(rel::Catalog* catalog) : catalog_(catalog) {}

  /// Parse and run a select mapping.
  StatusOr<ResultSet> Query(std::string_view text) const;

  /// Parse and run any statement (select / insert / delete). DML returns
  /// a single-row result with a rows-affected count.
  StatusOr<ResultSet> Run(std::string_view text);

  /// Run a parsed statement.
  StatusOr<ResultSet> Execute(const SelectStmt& stmt) const;
  StatusOr<ResultSet> ExecuteInsert(const InsertStmt& stmt);
  StatusOr<ResultSet> ExecuteUpdate(const UpdateStmt& stmt);
  StatusOr<ResultSet> ExecuteDelete(const DeleteStmt& stmt);

  /// Describe the access plan without executing: which index serves the
  /// at-clause, whether the where-clause can use a B+-tree, how a
  /// juxtaposition or nested mapping will be evaluated.
  StatusOr<std::string> Explain(const SelectStmt& stmt) const;
  StatusOr<std::string> ExplainQuery(std::string_view text) const;

 private:
  rel::Catalog* catalog_;
};

}  // namespace pictdb::psql

#endif  // PICTDB_PSQL_EXECUTOR_H_
