#ifndef PICTDB_PSQL_AST_H_
#define PICTDB_PSQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geom/rect.h"
#include "rel/value.h"

namespace pictdb::psql {

struct SelectStmt;

/// The paper's spatial comparison operators (§2.2).
enum class SpatialOp {
  kCoveredBy,    // loc1 covered-by loc2: loc1 lies wholly within loc2
  kCovering,     // loc1 covering loc2
  kOverlapping,  // share at least one point
  kDisjoined,    // share no point
};

std::string ToString(SpatialOp op);

/// An <area-specification>: a constant window literal `{x±dx, y±dy}`, a
/// pictorial column reference (`loc`, `cities.loc`), or a nested mapping
/// whose result locations bind the comparison.
struct LocExpr {
  enum class Kind { kWindow, kColumn, kSubquery };
  Kind kind = Kind::kWindow;

  geom::Rect window;                    // kWindow
  std::string rel;                      // kColumn (optional qualifier)
  std::string column;                   // kColumn
  std::unique_ptr<SelectStmt> subquery; // kSubquery
};

/// `at <loc> <spatial-op> <loc>`.
struct AtClause {
  LocExpr lhs;
  SpatialOp op = SpatialOp::kCoveredBy;
  LocExpr rhs;
};

/// Scalar expression for targets and the where-clause.
struct Expr {
  enum class Kind { kLiteral, kColumnRef, kCompare, kAnd, kOr, kNot, kCall };
  enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

  Kind kind = Kind::kLiteral;
  rel::Value literal;                  // kLiteral
  std::string rel;                     // kColumnRef qualifier (may be "")
  std::string column;                  // kColumnRef
  CmpOp cmp = CmpOp::kEq;              // kCompare
  std::string func;                    // kCall ("area", "north", ...)
  std::vector<std::unique_ptr<Expr>> args;  // children / call arguments

  /// Reconstructed source-ish text for display names and errors.
  std::string ToString() const;
};

/// One select target: an expression plus its display name.
struct TargetItem {
  std::unique_ptr<Expr> expr;
  std::string display;
};

/// One `order by` key.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

/// The PSQL extended mapping:
///   select <targets> from <relations> on <pictures>
///   at <area-spec> where <qualification>
///   [order by <expr> [asc|desc], ...] [limit N]
/// order/limit come from the SQL base PSQL extends.
struct SelectStmt {
  bool star = false;                 // `select *`
  std::vector<TargetItem> targets;   // empty when star
  std::vector<std::string> from;
  std::vector<std::string> on;
  std::optional<AtClause> at;
  std::unique_ptr<Expr> where;
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
};

/// §2.3 database updates: `insert into <relation> values (v, ...)`.
/// String literals targeting a geometry column are parsed as WKT; a
/// window literal `{x±dx, y±dy}` becomes the corresponding box geometry.
struct InsertStmt {
  std::string relation;
  std::vector<std::unique_ptr<Expr>> values;  // one literal per column
};

/// `update <relation> set col = literal, ... [on ...] [at ...] [where ...]`
/// — §2.3's "modification of a tuple", with every index maintained.
struct UpdateStmt {
  std::string relation;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::vector<std::string> on;
  std::optional<AtClause> at;
  std::unique_ptr<Expr> where;
};

/// `delete from <relation> [on <pictures>] [at ...] [where ...]` —
/// qualification works exactly like select's; qualifying tuples are
/// removed and every index (B+-tree and R-tree) is maintained.
struct DeleteStmt {
  std::string relation;
  std::vector<std::string> on;
  std::optional<AtClause> at;
  std::unique_ptr<Expr> where;
};

/// Any PSQL statement.
struct Statement {
  // Exactly one is set.
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
};

}  // namespace pictdb::psql

#endif  // PICTDB_PSQL_AST_H_
