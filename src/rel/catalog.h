#ifndef PICTDB_REL_CATALOG_H_
#define PICTDB_REL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "rel/relation.h"

namespace pictdb::rel {

/// A picture in the PSQL sense: a named geographic frame that one or more
/// pictorial relations are associated with via a geometry column. A
/// relation may be associated with several pictures ("a pictorial
/// relation could be associated with more than one picture").
struct Picture {
  std::string name;
  geom::Rect frame;
  // relation name -> geometry column indexed on this picture.
  std::map<std::string, std::string> associations;
};

/// Name space for relations and pictures; owns both. The PSQL executor
/// resolves every from/on clause through a Catalog.
class Catalog {
 public:
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Define a relation.
  Status CreateRelation(const std::string& name, Schema schema);

  StatusOr<Relation*> GetRelation(const std::string& name);
  StatusOr<const Relation*> GetRelation(const std::string& name) const;

  std::vector<std::string> RelationNames() const;

  /// Define a picture with its world frame.
  Status CreatePicture(const std::string& name, const geom::Rect& frame);

  StatusOr<const Picture*> GetPicture(const std::string& name) const;

  /// Associate `relation.column` with the picture, building the packed
  /// spatial index over the column if one does not exist yet.
  Status Associate(const std::string& picture, const std::string& relation,
                   const std::string& column,
                   const rtree::RTreeOptions& options = {},
                   Relation::SpatialLoader loader =
                       Relation::SpatialLoader::kPack);

  /// Column of `relation` shown on `picture`; NotFound when the relation
  /// is not associated with it.
  StatusOr<std::string> AssociationColumn(const std::string& picture,
                                          const std::string& relation) const;

  /// Named locations: the paper's "location variable may just be a name
  /// of a location predefined outside the retrieve mapping". PSQL
  /// at-clauses may reference these by bare name (e.g. `eastern-us`).
  Status DefineLocation(const std::string& name, geom::Geometry location);
  StatusOr<const geom::Geometry*> GetLocation(const std::string& name) const;

  // --- Persistence hooks (used by catalog_io) -------------------------------

  std::vector<const Picture*> Pictures() const;
  std::vector<std::pair<std::string, geom::Geometry>> Locations() const;

  /// Attach an already-opened relation / picture (reload path).
  Status AttachRelation(std::unique_ptr<Relation> relation);
  Status AttachPicture(Picture picture);

  storage::BufferPool* pool() const { return pool_; }

 private:
  storage::BufferPool* pool_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::map<std::string, Picture> pictures_;
  std::map<std::string, geom::Geometry> locations_;
};

}  // namespace pictdb::rel

#endif  // PICTDB_REL_CATALOG_H_
