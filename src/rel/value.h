#ifndef PICTDB_REL_VALUE_H_
#define PICTDB_REL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status_or.h"
#include "geom/geometry.h"

namespace pictdb::rel {

/// Column types. Alphanumeric domains are the usual scalar types; a
/// pictorial domain (the paper's "loc" columns) carries a Geometry.
///
/// The paper stores `loc` as a pointer into the picture's R-tree and
/// keeps the analog form on the picture side; this library inlines the
/// geometry in the tuple *and* indexes its MBR in the picture's R-tree,
/// which preserves both directions of the association (tuple -> picture
/// via the geometry, picture -> tuple via the R-tree leaf Rid).
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kGeometry = 4,
};

/// A single column value. Cheap to copy for scalars; strings and
/// geometries allocate.
class Value {
 public:
  Value() = default;  // null
  explicit Value(int64_t v) : value_(v) {}
  explicit Value(double v) : value_(v) {}
  explicit Value(std::string v) : value_(std::move(v)) {}
  explicit Value(geom::Geometry g) : value_(std::move(g)) {}

  static Value Null() { return Value(); }

  ValueType type() const { return static_cast<ValueType>(value_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t as_int() const { return std::get<int64_t>(value_); }
  double as_double() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const geom::Geometry& as_geometry() const {
    return std::get<geom::Geometry>(value_);
  }

  /// Numeric view: ints widen to double. Error for other types.
  StatusOr<double> AsNumeric() const;

  /// Three-way comparison for predicates; only null/int/double/string
  /// compare (numerics compare cross-type). InvalidArgument otherwise.
  StatusOr<int> Compare(const Value& other) const;

  /// Display form ("NULL", "42", "3.14", "Chicago", "POINT(1 2)").
  std::string ToString() const;

  /// Append the serialized form to `out` (type byte + payload).
  void SerializeTo(std::string* out) const;

  /// Parse one value from `data` at `*offset`, advancing it.
  static StatusOr<Value> DeserializeFrom(const std::string& data,
                                         size_t* offset);

 private:
  std::variant<std::monostate, int64_t, double, std::string, geom::Geometry>
      value_;
};

/// Type name for error messages ("int", "string", ...).
std::string TypeName(ValueType t);

}  // namespace pictdb::rel

#endif  // PICTDB_REL_VALUE_H_
