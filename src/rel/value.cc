#include "rel/value.h"

#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "geom/wkt.h"

namespace pictdb::rel {

StatusOr<double> Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(as_int());
    case ValueType::kDouble:
      return as_double();
    default:
      return Status::InvalidArgument("value is not numeric: " + ToString());
  }
}

StatusOr<int> Value::Compare(const Value& other) const {
  // Nulls sort first and equal each other (SQL-style total order for
  // predicate evaluation; PSQL has no explicit NULL semantics).
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  const bool self_num =
      type() == ValueType::kInt || type() == ValueType::kDouble;
  const bool other_num =
      other.type() == ValueType::kInt || other.type() == ValueType::kDouble;
  if (self_num && other_num) {
    PICTDB_ASSIGN_OR_RETURN(const double a, AsNumeric());
    PICTDB_ASSIGN_OR_RETURN(const double b, other.AsNumeric());
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() == ValueType::kString && other.type() == ValueType::kString) {
    return as_string().compare(other.as_string()) < 0
               ? -1
               : (as_string() == other.as_string() ? 0 : 1);
  }
  return Status::InvalidArgument("cannot compare " + TypeName(type()) +
                                 " with " + TypeName(other.type()));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case ValueType::kString:
      return as_string();
    case ValueType::kGeometry:
      return geom::ToWkt(as_geometry());
  }
  return "?";
}

namespace {

void AppendUint32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

StatusOr<uint32_t> ReadUint32(const std::string& data, size_t* offset) {
  if (*offset + 4 > data.size()) {
    return Status::Corruption("truncated value payload");
  }
  uint32_t v;
  std::memcpy(&v, data.data() + *offset, 4);
  *offset += 4;
  return v;
}

}  // namespace

void Value::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt: {
      char buf[8];
      const int64_t v = as_int();
      std::memcpy(buf, &v, 8);
      out->append(buf, 8);
      break;
    }
    case ValueType::kDouble: {
      char buf[8];
      const double v = as_double();
      std::memcpy(buf, &v, 8);
      out->append(buf, 8);
      break;
    }
    case ValueType::kString: {
      AppendUint32(static_cast<uint32_t>(as_string().size()), out);
      out->append(as_string());
      break;
    }
    case ValueType::kGeometry: {
      // WKT is compact enough at this library's scale and keeps pages
      // inspectable in a debugger.
      const std::string wkt = geom::ToWkt(as_geometry());
      AppendUint32(static_cast<uint32_t>(wkt.size()), out);
      out->append(wkt);
      break;
    }
  }
}

StatusOr<Value> Value::DeserializeFrom(const std::string& data,
                                       size_t* offset) {
  if (*offset >= data.size()) {
    return Status::Corruption("truncated value header");
  }
  const ValueType type = static_cast<ValueType>(data[*offset]);
  ++*offset;
  switch (type) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt: {
      if (*offset + 8 > data.size()) {
        return Status::Corruption("truncated int value");
      }
      int64_t v;
      std::memcpy(&v, data.data() + *offset, 8);
      *offset += 8;
      return Value(v);
    }
    case ValueType::kDouble: {
      if (*offset + 8 > data.size()) {
        return Status::Corruption("truncated double value");
      }
      double v;
      std::memcpy(&v, data.data() + *offset, 8);
      *offset += 8;
      return Value(v);
    }
    case ValueType::kString: {
      PICTDB_ASSIGN_OR_RETURN(const uint32_t len, ReadUint32(data, offset));
      if (*offset + len > data.size()) {
        return Status::Corruption("truncated string value");
      }
      Value v{std::string(data.data() + *offset, len)};
      *offset += len;
      return v;
    }
    case ValueType::kGeometry: {
      PICTDB_ASSIGN_OR_RETURN(const uint32_t len, ReadUint32(data, offset));
      if (*offset + len > data.size()) {
        return Status::Corruption("truncated geometry value");
      }
      const std::string wkt(data.data() + *offset, len);
      *offset += len;
      PICTDB_ASSIGN_OR_RETURN(geom::Geometry g, geom::ParseWkt(wkt));
      return Value(std::move(g));
    }
  }
  return Status::Corruption("unknown value type tag");
}

std::string TypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kGeometry:
      return "geometry";
  }
  return "unknown";
}

}  // namespace pictdb::rel
