#ifndef PICTDB_REL_SCHEMA_H_
#define PICTDB_REL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "rel/value.h"

namespace pictdb::rel {

/// One column of a relation.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered column list. The paper's pictorial relations look like
///   cities(city:string, state:string, population:int, loc:geometry).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& at(size_t i) const { return columns_[i]; }

  /// Index of the named column; NotFound otherwise.
  StatusOr<size_t> IndexOf(const std::string& name) const;

  bool HasColumn(const std::string& name) const;

  /// "cities(city string, population int, loc geometry)"-style display.
  std::string ToString(const std::string& relation_name) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace pictdb::rel

#endif  // PICTDB_REL_SCHEMA_H_
