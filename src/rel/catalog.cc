#include "rel/catalog.h"

namespace pictdb::rel {

Status Catalog::CreateRelation(const std::string& name, Schema schema) {
  if (relations_.count(name) != 0) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  PICTDB_ASSIGN_OR_RETURN(Relation rel,
                          Relation::Create(pool_, name, std::move(schema)));
  relations_[name] = std::make_unique<Relation>(std::move(rel));
  return Status::OK();
}

StatusOr<Relation*> Catalog::GetRelation(const std::string& name) {
  const auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + name);
  }
  return it->second.get();
}

StatusOr<const Relation*> Catalog::GetRelation(
    const std::string& name) const {
  const auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + name);
  }
  return static_cast<const Relation*>(it->second.get());
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

Status Catalog::CreatePicture(const std::string& name,
                              const geom::Rect& frame) {
  if (pictures_.count(name) != 0) {
    return Status::AlreadyExists("picture " + name + " already exists");
  }
  if (frame.IsEmpty()) {
    return Status::InvalidArgument("picture frame must be non-empty");
  }
  pictures_[name] = Picture{name, frame, {}};
  return Status::OK();
}

StatusOr<const Picture*> Catalog::GetPicture(const std::string& name) const {
  const auto it = pictures_.find(name);
  if (it == pictures_.end()) {
    return Status::NotFound("no picture named " + name);
  }
  return &it->second;
}

Status Catalog::Associate(const std::string& picture,
                          const std::string& relation,
                          const std::string& column,
                          const rtree::RTreeOptions& options,
                          Relation::SpatialLoader loader) {
  const auto pit = pictures_.find(picture);
  if (pit == pictures_.end()) {
    return Status::NotFound("no picture named " + picture);
  }
  PICTDB_ASSIGN_OR_RETURN(Relation * rel, GetRelation(relation));
  if (!rel->HasSpatialIndex(column)) {
    PICTDB_RETURN_IF_ERROR(rel->CreateSpatialIndex(column, options, loader));
  }
  pit->second.associations[relation] = column;
  return Status::OK();
}

std::vector<const Picture*> Catalog::Pictures() const {
  std::vector<const Picture*> out;
  for (const auto& [name, picture] : pictures_) out.push_back(&picture);
  return out;
}

std::vector<std::pair<std::string, geom::Geometry>> Catalog::Locations()
    const {
  std::vector<std::pair<std::string, geom::Geometry>> out;
  for (const auto& [name, location] : locations_) {
    out.emplace_back(name, location);
  }
  return out;
}

Status Catalog::AttachRelation(std::unique_ptr<Relation> relation) {
  const std::string name = relation->name();
  if (relations_.count(name) != 0) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  relations_[name] = std::move(relation);
  return Status::OK();
}

Status Catalog::AttachPicture(Picture picture) {
  const std::string name = picture.name;
  if (pictures_.count(name) != 0) {
    return Status::AlreadyExists("picture " + name + " already exists");
  }
  pictures_[name] = std::move(picture);
  return Status::OK();
}

Status Catalog::DefineLocation(const std::string& name,
                               geom::Geometry location) {
  locations_[name] = std::move(location);
  return Status::OK();
}

StatusOr<const geom::Geometry*> Catalog::GetLocation(
    const std::string& name) const {
  const auto it = locations_.find(name);
  if (it == locations_.end()) {
    return Status::NotFound("no location named " + name);
  }
  return &it->second;
}

StatusOr<std::string> Catalog::AssociationColumn(
    const std::string& picture, const std::string& relation) const {
  PICTDB_ASSIGN_OR_RETURN(const Picture* pic, GetPicture(picture));
  const auto it = pic->associations.find(relation);
  if (it == pic->associations.end()) {
    return Status::NotFound("relation " + relation + " is not on picture " +
                            picture);
  }
  return it->second;
}

}  // namespace pictdb::rel
