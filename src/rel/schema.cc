#include "rel/schema.h"

#include <sstream>

#include "common/logging.h"

namespace pictdb::rel {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  // Duplicate column names would make name resolution ambiguous.
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      PICTDB_CHECK(columns_[i].name != columns_[j].name)
          << "duplicate column " << columns_[i].name;
    }
  }
}

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

bool Schema::HasColumn(const std::string& name) const {
  return IndexOf(name).ok();
}

std::string Schema::ToString(const std::string& relation_name) const {
  std::ostringstream os;
  os << relation_name << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ", ";
    os << columns_[i].name << " " << TypeName(columns_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace pictdb::rel
