#ifndef PICTDB_REL_TUPLE_H_
#define PICTDB_REL_TUPLE_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace pictdb::rel {

/// One row: values positionally matching a Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  const std::vector<Value>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }

  /// Check positional arity and value/column type agreement (nulls match
  /// any column type).
  Status ConformsTo(const Schema& schema) const;

  /// Byte encoding for heap-file storage.
  std::string Serialize() const;
  static StatusOr<Tuple> Deserialize(const std::string& data);

  /// "(42, Chicago, POINT(1 2))".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace pictdb::rel

#endif  // PICTDB_REL_TUPLE_H_
