#ifndef PICTDB_REL_CATALOG_IO_H_
#define PICTDB_REL_CATALOG_IO_H_

#include "common/status_or.h"
#include "rel/catalog.h"
#include "storage/page.h"

namespace pictdb::rel {

/// Catalog persistence: serializes every relation's schema + heap/index
/// page references, every picture with its associations, and all named
/// locations into a page-chained blob. A pictorial database file plus
/// the returned PageId is everything needed to reopen it.
///
/// Usage:
///   PageId root = *SaveCatalog(catalog, &pool);
///   pool.FlushAll();
///   ... process restart ...
///   Catalog catalog(&pool);
///   PICTDB_CHECK_OK(LoadCatalog(&pool, root, &catalog));
StatusOr<storage::PageId> SaveCatalog(const Catalog& catalog,
                                      storage::BufferPool* pool);

/// Rebuild `out` (which must be empty) from a SaveCatalog image.
Status LoadCatalog(storage::BufferPool* pool, storage::PageId root,
                   Catalog* out);

}  // namespace pictdb::rel

#endif  // PICTDB_REL_CATALOG_IO_H_
