#ifndef PICTDB_REL_RELATION_H_
#define PICTDB_REL_RELATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/status_or.h"
#include "rel/tuple.h"
#include "rtree/rtree.h"
#include "storage/heap_file.h"

namespace pictdb::rel {

/// A stored relation: heap file of tuples plus optional per-column
/// indexes — B+-trees for alphanumeric columns ("indexed the usual way")
/// and R-trees for pictorial columns. Indexes are maintained on every
/// insert/delete once created.
class Relation {
 public:
  static StatusOr<Relation> Create(storage::BufferPool* pool,
                                   std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Insert a conforming tuple; updates all indexes.
  StatusOr<storage::Rid> Insert(const Tuple& tuple);

  /// Fetch by rid.
  StatusOr<Tuple> Get(const storage::Rid& rid) const;

  /// Delete by rid; updates all indexes.
  Status Delete(const storage::Rid& rid);

  /// Replace the tuple at `rid` with a conforming new tuple, maintaining
  /// every index. The record may relocate; the (possibly new) rid is
  /// returned (§2.3: modification may reorganize the spatial index).
  StatusOr<storage::Rid> Update(const storage::Rid& rid, const Tuple& tuple);

  /// Sequential scan cursor (invalid Rid = end).
  StatusOr<storage::Rid> FirstRid() const;
  StatusOr<storage::Rid> NextRid(const storage::Rid& rid) const;

  StatusOr<uint64_t> Count() const;

  // --- Alphanumeric indexing ---------------------------------------------

  /// Build a B+-tree over an int/double/string column (covers existing
  /// tuples; maintained afterwards).
  Status CreateBTreeIndex(const std::string& column);

  bool HasBTreeIndex(const std::string& column) const;

  /// Rids of tuples with lo <= column <= hi (either bound may be a null
  /// Value for an open end). String-typed bounds use the index's 16-byte
  /// prefix, so callers re-check exact values (the executor does).
  StatusOr<std::vector<storage::Rid>> IndexRange(const std::string& column,
                                                 const Value& lo,
                                                 const Value& hi) const;

  // --- Pictorial indexing --------------------------------------------------

  /// Build an R-tree over a geometry column using the given bulk loader
  /// applied to the MBRs of all existing tuples.
  enum class SpatialLoader { kPack, kStr, kHilbert, kInsert };
  Status CreateSpatialIndex(const std::string& column,
                            const rtree::RTreeOptions& options = {},
                            SpatialLoader loader = SpatialLoader::kPack);

  bool HasSpatialIndex(const std::string& column) const;

  /// The R-tree over `column`; NotFound if none was created.
  StatusOr<const rtree::RTree*> SpatialIndex(const std::string& column) const;

  // --- Persistence ----------------------------------------------------------

  /// First heap page (needed to reopen the relation).
  storage::PageId heap_first_page() const { return heap_.first_page(); }

  /// (column, meta page) pairs of the existing indexes.
  std::vector<std::pair<std::string, storage::PageId>> BTreeIndexMetas()
      const;
  std::vector<std::pair<std::string, storage::PageId>> SpatialIndexMetas()
      const;

  /// Reattach a relation persisted earlier: heap + index metas as
  /// captured by the accessors above.
  static StatusOr<Relation> Open(
      storage::BufferPool* pool, std::string name, Schema schema,
      storage::PageId heap_first,
      const std::vector<std::pair<std::string, storage::PageId>>&
          btree_metas,
      const std::vector<std::pair<std::string, storage::PageId>>&
          spatial_metas);

 private:
  Relation(storage::BufferPool* pool, std::string name, Schema schema,
           storage::HeapFile heap)
      : pool_(pool),
        name_(std::move(name)),
        schema_(std::move(schema)),
        heap_(std::move(heap)) {}

  Status AddToIndexes(const Tuple& tuple, const storage::Rid& rid);
  Status RemoveFromIndexes(const Tuple& tuple, const storage::Rid& rid);

  StatusOr<btree::Key> EncodeKey(size_t column_idx, const Value& value,
                                 const storage::Rid& rid) const;

  storage::BufferPool* pool_;
  std::string name_;
  Schema schema_;
  storage::HeapFile heap_;
  // Keyed by column name. shared_ptr keeps Relation movable/copyable as a
  // handle while the index objects stay put.
  std::map<std::string, std::shared_ptr<btree::BTree>> btree_indexes_;
  std::map<std::string, std::shared_ptr<rtree::RTree>> spatial_indexes_;
};

}  // namespace pictdb::rel

#endif  // PICTDB_REL_RELATION_H_
