#include "rel/tuple.h"

#include <cstring>
#include <sstream>

namespace pictdb::rel {

Status Tuple::ConformsTo(const Schema& schema) const {
  if (values_.size() != schema.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values_.size()) +
        " != schema arity " + std::to_string(schema.size()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].is_null()) continue;
    if (values_[i].type() != schema.at(i).type) {
      return Status::InvalidArgument(
          "column " + schema.at(i).name + " expects " +
          TypeName(schema.at(i).type) + ", got " +
          TypeName(values_[i].type()));
    }
  }
  return Status::OK();
}

std::string Tuple::Serialize() const {
  std::string out;
  uint32_t count = static_cast<uint32_t>(values_.size());
  char buf[4];
  std::memcpy(buf, &count, 4);
  out.append(buf, 4);
  for (const Value& v : values_) v.SerializeTo(&out);
  return out;
}

StatusOr<Tuple> Tuple::Deserialize(const std::string& data) {
  if (data.size() < 4) return Status::Corruption("truncated tuple header");
  uint32_t count;
  std::memcpy(&count, data.data(), 4);
  // Every value takes at least a type byte, so a count beyond the
  // remaining payload is corruption — reject before reserving memory.
  if (count > data.size() - 4) {
    return Status::Corruption("tuple value count exceeds payload");
  }
  size_t offset = 4;
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PICTDB_ASSIGN_OR_RETURN(Value v, Value::DeserializeFrom(data, &offset));
    values.push_back(std::move(v));
  }
  if (offset != data.size()) {
    return Status::Corruption("trailing bytes after tuple");
  }
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) os << ", ";
    os << values_[i].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace pictdb::rel
