#include "rel/catalog_io.h"

#include <cstring>

#include "geom/wkt.h"
#include "storage/blob.h"

namespace pictdb::rel {

namespace {

// Binary catalog image. All integers little-endian fixed width; strings
// are u32-length-prefixed. Layout:
//   u32 magic 'PCAT'; u32 version
//   u32 nrel { str name; u32 ncol {str name; u8 type};
//              u32 heap_first;
//              u32 nbtree {str col; u32 meta};
//              u32 nrtree {str col; u32 meta} }
//   u32 npic { str name; f64 x1,y1,x2,y2; u32 nassoc {str rel; str col} }
//   u32 nloc { str name; str wkt }
constexpr uint32_t kMagic = 0x50434154;  // "PCAT"
constexpr uint32_t kVersion = 1;

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutF64(double v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutStr(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

class Reader {
 public:
  explicit Reader(std::string data) : data_(std::move(data)) {}

  StatusOr<uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  StatusOr<uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  StatusOr<double> F64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    double v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  StatusOr<std::string> Str() {
    PICTDB_ASSIGN_OR_RETURN(const uint32_t len, U32());
    if (pos_ + len > data_.size()) return Truncated();
    std::string s(data_.data() + pos_, len);
    pos_ += len;
    return s;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  static Status Truncated() {
    return Status::Corruption("truncated catalog image");
  }
  std::string data_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<storage::PageId> SaveCatalog(const Catalog& catalog,
                                      storage::BufferPool* pool) {
  std::string image;
  PutU32(kMagic, &image);
  PutU32(kVersion, &image);

  const std::vector<std::string> names = catalog.RelationNames();
  PutU32(static_cast<uint32_t>(names.size()), &image);
  for (const std::string& name : names) {
    PICTDB_ASSIGN_OR_RETURN(const Relation* rel, catalog.GetRelation(name));
    PutStr(name, &image);
    PutU32(static_cast<uint32_t>(rel->schema().size()), &image);
    for (const Column& col : rel->schema().columns()) {
      PutStr(col.name, &image);
      PutU8(static_cast<uint8_t>(col.type), &image);
    }
    PutU32(rel->heap_first_page(), &image);
    const auto btrees = rel->BTreeIndexMetas();
    PutU32(static_cast<uint32_t>(btrees.size()), &image);
    for (const auto& [column, meta] : btrees) {
      PutStr(column, &image);
      PutU32(meta, &image);
    }
    const auto rtrees = rel->SpatialIndexMetas();
    PutU32(static_cast<uint32_t>(rtrees.size()), &image);
    for (const auto& [column, meta] : rtrees) {
      PutStr(column, &image);
      PutU32(meta, &image);
    }
  }

  const auto pictures = catalog.Pictures();
  PutU32(static_cast<uint32_t>(pictures.size()), &image);
  for (const Picture* pic : pictures) {
    PutStr(pic->name, &image);
    PutF64(pic->frame.lo.x, &image);
    PutF64(pic->frame.lo.y, &image);
    PutF64(pic->frame.hi.x, &image);
    PutF64(pic->frame.hi.y, &image);
    PutU32(static_cast<uint32_t>(pic->associations.size()), &image);
    for (const auto& [rel, col] : pic->associations) {
      PutStr(rel, &image);
      PutStr(col, &image);
    }
  }

  const auto locations = catalog.Locations();
  PutU32(static_cast<uint32_t>(locations.size()), &image);
  for (const auto& [name, geometry] : locations) {
    PutStr(name, &image);
    PutStr(geom::ToWkt(geometry), &image);
  }

  return storage::WriteBlob(pool, Slice(image));
}

Status LoadCatalog(storage::BufferPool* pool, storage::PageId root,
                   Catalog* out) {
  PICTDB_ASSIGN_OR_RETURN(std::string image, storage::ReadBlob(pool, root));
  Reader r(std::move(image));

  PICTDB_ASSIGN_OR_RETURN(const uint32_t magic, r.U32());
  if (magic != kMagic) return Status::Corruption("bad catalog magic");
  PICTDB_ASSIGN_OR_RETURN(const uint32_t version, r.U32());
  if (version != kVersion) {
    return Status::NotSupported("unknown catalog version " +
                                std::to_string(version));
  }

  PICTDB_ASSIGN_OR_RETURN(const uint32_t nrel, r.U32());
  for (uint32_t i = 0; i < nrel; ++i) {
    PICTDB_ASSIGN_OR_RETURN(const std::string name, r.Str());
    PICTDB_ASSIGN_OR_RETURN(const uint32_t ncol, r.U32());
    std::vector<Column> columns;
    for (uint32_t c = 0; c < ncol; ++c) {
      Column col;
      PICTDB_ASSIGN_OR_RETURN(col.name, r.Str());
      PICTDB_ASSIGN_OR_RETURN(const uint8_t type, r.U8());
      if (type > static_cast<uint8_t>(ValueType::kGeometry)) {
        return Status::Corruption("bad column type in catalog image");
      }
      col.type = static_cast<ValueType>(type);
      columns.push_back(std::move(col));
    }
    PICTDB_ASSIGN_OR_RETURN(const uint32_t heap_first, r.U32());
    std::vector<std::pair<std::string, storage::PageId>> btrees;
    PICTDB_ASSIGN_OR_RETURN(const uint32_t nbtree, r.U32());
    for (uint32_t b = 0; b < nbtree; ++b) {
      PICTDB_ASSIGN_OR_RETURN(std::string col, r.Str());
      PICTDB_ASSIGN_OR_RETURN(const uint32_t meta, r.U32());
      btrees.emplace_back(std::move(col), meta);
    }
    std::vector<std::pair<std::string, storage::PageId>> rtrees;
    PICTDB_ASSIGN_OR_RETURN(const uint32_t nrtree, r.U32());
    for (uint32_t t = 0; t < nrtree; ++t) {
      PICTDB_ASSIGN_OR_RETURN(std::string col, r.Str());
      PICTDB_ASSIGN_OR_RETURN(const uint32_t meta, r.U32());
      rtrees.emplace_back(std::move(col), meta);
    }
    PICTDB_ASSIGN_OR_RETURN(
        Relation rel, Relation::Open(pool, name, Schema(std::move(columns)),
                                     heap_first, btrees, rtrees));
    PICTDB_RETURN_IF_ERROR(
        out->AttachRelation(std::make_unique<Relation>(std::move(rel))));
  }

  PICTDB_ASSIGN_OR_RETURN(const uint32_t npic, r.U32());
  for (uint32_t i = 0; i < npic; ++i) {
    Picture pic;
    PICTDB_ASSIGN_OR_RETURN(pic.name, r.Str());
    PICTDB_ASSIGN_OR_RETURN(const double x1, r.F64());
    PICTDB_ASSIGN_OR_RETURN(const double y1, r.F64());
    PICTDB_ASSIGN_OR_RETURN(const double x2, r.F64());
    PICTDB_ASSIGN_OR_RETURN(const double y2, r.F64());
    pic.frame = geom::Rect(x1, y1, x2, y2);
    PICTDB_ASSIGN_OR_RETURN(const uint32_t nassoc, r.U32());
    for (uint32_t a = 0; a < nassoc; ++a) {
      PICTDB_ASSIGN_OR_RETURN(std::string rel, r.Str());
      PICTDB_ASSIGN_OR_RETURN(std::string col, r.Str());
      pic.associations[std::move(rel)] = std::move(col);
    }
    PICTDB_RETURN_IF_ERROR(out->AttachPicture(std::move(pic)));
  }

  PICTDB_ASSIGN_OR_RETURN(const uint32_t nloc, r.U32());
  for (uint32_t i = 0; i < nloc; ++i) {
    PICTDB_ASSIGN_OR_RETURN(const std::string name, r.Str());
    PICTDB_ASSIGN_OR_RETURN(const std::string wkt, r.Str());
    PICTDB_ASSIGN_OR_RETURN(geom::Geometry g, geom::ParseWkt(wkt));
    PICTDB_RETURN_IF_ERROR(out->DefineLocation(name, std::move(g)));
  }

  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in catalog image");
  }
  return Status::OK();
}

}  // namespace pictdb::rel
