#include "rel/relation.h"

#include "common/logging.h"
#include "pack/hilbert.h"
#include "pack/pack.h"
#include "pack/str.h"

namespace pictdb::rel {

using storage::Rid;

StatusOr<Relation> Relation::Create(storage::BufferPool* pool,
                                    std::string name, Schema schema) {
  if (schema.size() == 0) {
    return Status::InvalidArgument("relation needs at least one column");
  }
  PICTDB_ASSIGN_OR_RETURN(storage::HeapFile heap,
                          storage::HeapFile::Create(pool));
  return Relation(pool, std::move(name), std::move(schema), std::move(heap));
}

StatusOr<Rid> Relation::Insert(const Tuple& tuple) {
  PICTDB_RETURN_IF_ERROR(tuple.ConformsTo(schema_));
  const std::string bytes = tuple.Serialize();
  PICTDB_ASSIGN_OR_RETURN(const Rid rid, heap_.Insert(Slice(bytes)));
  PICTDB_RETURN_IF_ERROR(AddToIndexes(tuple, rid));
  return rid;
}

StatusOr<Tuple> Relation::Get(const Rid& rid) const {
  PICTDB_ASSIGN_OR_RETURN(const std::string bytes, heap_.Get(rid));
  return Tuple::Deserialize(bytes);
}

Status Relation::Delete(const Rid& rid) {
  PICTDB_ASSIGN_OR_RETURN(const Tuple tuple, Get(rid));
  PICTDB_RETURN_IF_ERROR(RemoveFromIndexes(tuple, rid));
  return heap_.Delete(rid);
}

StatusOr<Rid> Relation::Update(const Rid& rid, const Tuple& tuple) {
  PICTDB_RETURN_IF_ERROR(tuple.ConformsTo(schema_));
  PICTDB_ASSIGN_OR_RETURN(const Tuple old_tuple, Get(rid));
  PICTDB_RETURN_IF_ERROR(RemoveFromIndexes(old_tuple, rid));
  const std::string bytes = tuple.Serialize();
  PICTDB_ASSIGN_OR_RETURN(const Rid new_rid,
                          heap_.Update(rid, Slice(bytes)));
  PICTDB_RETURN_IF_ERROR(AddToIndexes(tuple, new_rid));
  return new_rid;
}

StatusOr<Rid> Relation::FirstRid() const { return heap_.First(); }

StatusOr<Rid> Relation::NextRid(const Rid& rid) const {
  return heap_.Next(rid);
}

StatusOr<uint64_t> Relation::Count() const { return heap_.Count(); }

StatusOr<btree::Key> Relation::EncodeKey(size_t column_idx,
                                         const Value& value,
                                         const Rid& rid) const {
  switch (schema_.at(column_idx).type) {
    case ValueType::kInt:
      return btree::KeyEncoder::FromInt64(value.as_int(), rid);
    case ValueType::kDouble:
      return btree::KeyEncoder::FromDouble(value.as_double(), rid);
    case ValueType::kString:
      return btree::KeyEncoder::FromString(value.as_string(), rid);
    default:
      return Status::InvalidArgument("column type not B+tree indexable");
  }
}

Status Relation::AddToIndexes(const Tuple& tuple, const Rid& rid) {
  for (auto& [column, index] : btree_indexes_) {
    PICTDB_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(column));
    if (tuple.at(idx).is_null()) continue;
    PICTDB_ASSIGN_OR_RETURN(const btree::Key key,
                            EncodeKey(idx, tuple.at(idx), rid));
    PICTDB_RETURN_IF_ERROR(index->Insert(key, rid));
  }
  for (auto& [column, index] : spatial_indexes_) {
    PICTDB_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(column));
    if (tuple.at(idx).is_null()) continue;
    PICTDB_RETURN_IF_ERROR(
        index->Insert(tuple.at(idx).as_geometry().Mbr(), rid));
  }
  return Status::OK();
}

Status Relation::RemoveFromIndexes(const Tuple& tuple, const Rid& rid) {
  for (auto& [column, index] : btree_indexes_) {
    PICTDB_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(column));
    if (tuple.at(idx).is_null()) continue;
    PICTDB_ASSIGN_OR_RETURN(const btree::Key key,
                            EncodeKey(idx, tuple.at(idx), rid));
    PICTDB_RETURN_IF_ERROR(index->Delete(key));
  }
  for (auto& [column, index] : spatial_indexes_) {
    PICTDB_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(column));
    if (tuple.at(idx).is_null()) continue;
    PICTDB_RETURN_IF_ERROR(
        index->Delete(tuple.at(idx).as_geometry().Mbr(), rid));
  }
  return Status::OK();
}

Status Relation::CreateBTreeIndex(const std::string& column) {
  if (btree_indexes_.count(column) != 0) {
    return Status::AlreadyExists("index on " + column + " already exists");
  }
  PICTDB_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(column));
  const ValueType type = schema_.at(idx).type;
  if (type != ValueType::kInt && type != ValueType::kDouble &&
      type != ValueType::kString) {
    return Status::InvalidArgument("column " + column +
                                   " is not alphanumeric");
  }
  PICTDB_ASSIGN_OR_RETURN(btree::BTree tree, btree::BTree::Create(pool_));
  auto index = std::make_shared<btree::BTree>(std::move(tree));
  // Backfill existing tuples.
  PICTDB_ASSIGN_OR_RETURN(Rid rid, FirstRid());
  while (rid.IsValid()) {
    PICTDB_ASSIGN_OR_RETURN(const Tuple tuple, Get(rid));
    if (!tuple.at(idx).is_null()) {
      PICTDB_ASSIGN_OR_RETURN(const btree::Key key,
                              EncodeKey(idx, tuple.at(idx), rid));
      PICTDB_RETURN_IF_ERROR(index->Insert(key, rid));
    }
    PICTDB_ASSIGN_OR_RETURN(rid, NextRid(rid));
  }
  btree_indexes_[column] = std::move(index);
  return Status::OK();
}

bool Relation::HasBTreeIndex(const std::string& column) const {
  return btree_indexes_.count(column) != 0;
}

StatusOr<std::vector<Rid>> Relation::IndexRange(const std::string& column,
                                                const Value& lo,
                                                const Value& hi) const {
  const auto it = btree_indexes_.find(column);
  if (it == btree_indexes_.end()) {
    return Status::NotFound("no B+tree index on " + column);
  }
  PICTDB_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(column));
  const ValueType type = schema_.at(idx).type;

  auto encode_bound = [&](const Value& v, bool lower) -> StatusOr<btree::Key> {
    if (v.is_null()) {
      // Open end: all-0 or all-1 key.
      btree::Key k;
      k.bytes.fill(lower ? 0x00 : 0xFF);
      return k;
    }
    switch (type) {
      case ValueType::kInt:
        return lower ? btree::KeyEncoder::Int64LowerBound(v.as_int())
                     : btree::KeyEncoder::Int64UpperBound(v.as_int());
      case ValueType::kDouble: {
        PICTDB_ASSIGN_OR_RETURN(const double d, v.AsNumeric());
        return lower ? btree::KeyEncoder::DoubleLowerBound(d)
                     : btree::KeyEncoder::DoubleUpperBound(d);
      }
      case ValueType::kString:
        return lower ? btree::KeyEncoder::StringLowerBound(v.as_string())
                     : btree::KeyEncoder::StringUpperBound(v.as_string());
      default:
        return Status::InvalidArgument("unindexable bound type");
    }
  };

  PICTDB_ASSIGN_OR_RETURN(const btree::Key lo_key,
                          encode_bound(lo, /*lower=*/true));
  PICTDB_ASSIGN_OR_RETURN(const btree::Key hi_key,
                          encode_bound(hi, /*lower=*/false));
  return it->second->Scan(lo_key, hi_key);
}

Status Relation::CreateSpatialIndex(const std::string& column,
                                    const rtree::RTreeOptions& options,
                                    SpatialLoader loader) {
  if (spatial_indexes_.count(column) != 0) {
    return Status::AlreadyExists("spatial index on " + column +
                                 " already exists");
  }
  PICTDB_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(column));
  if (schema_.at(idx).type != ValueType::kGeometry) {
    return Status::InvalidArgument("column " + column + " is not pictorial");
  }
  PICTDB_ASSIGN_OR_RETURN(rtree::RTree tree,
                          rtree::RTree::Create(pool_, options));
  auto index = std::make_shared<rtree::RTree>(std::move(tree));

  // Gather existing objects; a new pictorial database is packed, per the
  // paper ("databases that are created for the first time must be
  // efficiently organized").
  std::vector<rtree::Entry> items;
  PICTDB_ASSIGN_OR_RETURN(Rid rid, FirstRid());
  while (rid.IsValid()) {
    PICTDB_ASSIGN_OR_RETURN(const Tuple tuple, Get(rid));
    if (!tuple.at(idx).is_null()) {
      rtree::Entry e;
      e.mbr = tuple.at(idx).as_geometry().Mbr();
      e.payload = rtree::Entry::PayloadFromRid(rid);
      items.push_back(e);
    }
    PICTDB_ASSIGN_OR_RETURN(rid, NextRid(rid));
  }
  switch (loader) {
    case SpatialLoader::kPack:
      PICTDB_RETURN_IF_ERROR(
          pack::PackNearestNeighbor(index.get(), std::move(items)));
      break;
    case SpatialLoader::kStr:
      PICTDB_RETURN_IF_ERROR(pack::PackStr(index.get(), std::move(items)));
      break;
    case SpatialLoader::kHilbert:
      PICTDB_RETURN_IF_ERROR(
          pack::PackHilbert(index.get(), std::move(items)));
      break;
    case SpatialLoader::kInsert:
      for (const rtree::Entry& e : items) {
        PICTDB_RETURN_IF_ERROR(index->Insert(e.mbr, e.AsRid()));
      }
      break;
  }
  spatial_indexes_[column] = std::move(index);
  return Status::OK();
}

bool Relation::HasSpatialIndex(const std::string& column) const {
  return spatial_indexes_.count(column) != 0;
}

StatusOr<const rtree::RTree*> Relation::SpatialIndex(
    const std::string& column) const {
  const auto it = spatial_indexes_.find(column);
  if (it == spatial_indexes_.end()) {
    return Status::NotFound("no spatial index on " + column);
  }
  return static_cast<const rtree::RTree*>(it->second.get());
}

std::vector<std::pair<std::string, storage::PageId>>
Relation::BTreeIndexMetas() const {
  std::vector<std::pair<std::string, storage::PageId>> out;
  for (const auto& [column, index] : btree_indexes_) {
    out.emplace_back(column, index->meta_page());
  }
  return out;
}

std::vector<std::pair<std::string, storage::PageId>>
Relation::SpatialIndexMetas() const {
  std::vector<std::pair<std::string, storage::PageId>> out;
  for (const auto& [column, index] : spatial_indexes_) {
    out.emplace_back(column, index->meta_page());
  }
  return out;
}

StatusOr<Relation> Relation::Open(
    storage::BufferPool* pool, std::string name, Schema schema,
    storage::PageId heap_first,
    const std::vector<std::pair<std::string, storage::PageId>>& btree_metas,
    const std::vector<std::pair<std::string, storage::PageId>>&
        spatial_metas) {
  Relation rel(pool, std::move(name), std::move(schema),
               storage::HeapFile::Open(pool, heap_first));
  for (const auto& [column, meta] : btree_metas) {
    if (!rel.schema_.HasColumn(column)) {
      return Status::Corruption("persisted index on unknown column " +
                                column);
    }
    rel.btree_indexes_[column] =
        std::make_shared<btree::BTree>(btree::BTree::Open(pool, meta));
  }
  for (const auto& [column, meta] : spatial_metas) {
    if (!rel.schema_.HasColumn(column)) {
      return Status::Corruption("persisted index on unknown column " +
                                column);
    }
    PICTDB_ASSIGN_OR_RETURN(rtree::RTree tree, rtree::RTree::Open(pool, meta));
    rel.spatial_indexes_[column] =
        std::make_shared<rtree::RTree>(std::move(tree));
  }
  return rel;
}

}  // namespace pictdb::rel
