#ifndef PICTDB_GEOM_TRANSFORM_H_
#define PICTDB_GEOM_TRANSFORM_H_

#include <vector>

#include "geom/point.h"

namespace pictdb::geom {

/// 2D affine transform (rotation/scale/translation), row-major 2x3 matrix:
///   x' = m00*x + m01*y + tx
///   y' = m10*x + m11*y + ty
/// Used by the Lemma 3.1 / Theorem 3.2 machinery, which rotates the whole
/// database frame of reference before packing.
class Transform {
 public:
  /// Identity.
  Transform() = default;

  /// Counter-clockwise rotation about the origin by `radians`.
  static Transform Rotation(double radians);

  /// Translation by (dx, dy).
  static Transform Translation(double dx, double dy);

  /// Uniform scale about the origin.
  static Transform Scale(double s);

  Point Apply(const Point& p) const;
  std::vector<Point> Apply(const std::vector<Point>& pts) const;

  /// Composition: (a.Then(b)).Apply(p) == b.Apply(a.Apply(p)).
  Transform Then(const Transform& next) const;

  /// Inverse transform; requires the matrix to be invertible.
  Transform Inverse() const;

 private:
  double m00_ = 1.0, m01_ = 0.0, tx_ = 0.0;
  double m10_ = 0.0, m11_ = 1.0, ty_ = 0.0;
};

/// True if all x-coordinates in `pts` are pairwise distinct — the property
/// F(S) = |S| from Lemma 3.1.
bool AllXDistinct(const std::vector<Point>& pts);

/// Finds an angle α such that rotating `pts` counter-clockwise by α yields
/// pairwise-distinct x-coordinates (Lemma 3.1 guarantees existence for any
/// finite point set). Deterministic: tries candidate angles that avoid the
/// finitely many "bad" directions determined by point pairs.
double FindDistinctXRotation(const std::vector<Point>& pts);

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_TRANSFORM_H_
