#ifndef PICTDB_GEOM_POINT_H_
#define PICTDB_GEOM_POINT_H_

#include <cmath>

namespace pictdb::geom {

/// A point in the picture plane. Coordinates are doubles; the paper's
/// experiments use integer coordinates in [0,1000]² which embed exactly.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }

  friend Point operator+(const Point& a, const Point& b) {
    return Point{a.x + b.x, a.y + b.y};
  }
  friend Point operator-(const Point& a, const Point& b) {
    return Point{a.x - b.x, a.y - b.y};
  }
  friend Point operator*(const Point& a, double s) {
    return Point{a.x * s, a.y * s};
  }
};

/// Euclidean distance.
inline double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Squared Euclidean distance (no sqrt; for nearest-neighbour comparisons).
inline double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Cross product of (b-a) x (c-a); sign gives orientation.
inline double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// Dot product of (b-a) . (c-a).
inline double Dot(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.x - a.x) + (b.y - a.y) * (c.y - a.y);
}

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_POINT_H_
