#include "geom/distance.h"

#include <algorithm>
#include <limits>

namespace pictdb::geom {

namespace {

double PointToRect(const Rect& r, const Point& p) { return MinDistance(r, p); }

double PointToPolygon(const Polygon& poly, const Point& p) {
  if (poly.Contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < poly.size(); ++i) {
    best = std::min(best, Distance(poly.Edge(i), p));
  }
  return best;
}

double RectToSegment(const Rect& r, const Segment& s) {
  if (Intersects(s, r)) return 0.0;
  // Segment outside the rect: nearest pair is edge-to-segment.
  const Polygon outline = Polygon::FromRect(r);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < 4; ++i) {
    best = std::min(best, Distance(outline.Edge(i), s));
  }
  return best;
}

double PolygonToSegment(const Polygon& poly, const Segment& s) {
  if (poly.Contains(s.a) || poly.Contains(s.b)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < poly.size(); ++i) {
    best = std::min(best, Distance(poly.Edge(i), s));
    if (best == 0.0) return 0.0;
  }
  return best;
}

double RectToRect(const Rect& a, const Rect& b) { return MinDistance(a, b); }

double RectToPolygon(const Rect& r, const Polygon& poly) {
  if (poly.empty()) return std::numeric_limits<double>::infinity();
  if (Intersects(poly, r)) return 0.0;
  const Polygon outline = Polygon::FromRect(r);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < 4; ++i) {
    best = std::min(best, PolygonToSegment(poly, outline.Edge(i)));
  }
  return best;
}

double PolygonToPolygon(const Polygon& a, const Polygon& b) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  if (Intersects(a, b)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::min(best, PolygonToSegment(b, a.Edge(i)));
  }
  return best;
}

}  // namespace

double Distance(const Segment& a, const Segment& b) {
  if (Intersects(a, b)) return 0.0;
  return std::min(std::min(Distance(a, b.a), Distance(a, b.b)),
                  std::min(Distance(b, a.a), Distance(b, a.b)));
}

double DistanceTo(const Geometry& g, const Point& p) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return Distance(g.point(), p);
    case GeometryType::kSegment:
      return Distance(g.segment(), p);
    case GeometryType::kRect:
      return PointToRect(g.rect(), p);
    case GeometryType::kRegion:
      return PointToPolygon(g.region(), p);
  }
  return std::numeric_limits<double>::infinity();
}

double DistanceBetween(const Geometry& a, const Geometry& b) {
  // Normalize so a.type <= b.type (the metric is symmetric).
  if (static_cast<int>(a.type()) > static_cast<int>(b.type())) {
    return DistanceBetween(b, a);
  }
  switch (a.type()) {
    case GeometryType::kPoint:
      return DistanceTo(b, a.point());
    case GeometryType::kSegment:
      switch (b.type()) {
        case GeometryType::kSegment:
          return Distance(a.segment(), b.segment());
        case GeometryType::kRect:
          return RectToSegment(b.rect(), a.segment());
        case GeometryType::kRegion:
          return PolygonToSegment(b.region(), a.segment());
        default:
          break;
      }
      break;
    case GeometryType::kRect:
      switch (b.type()) {
        case GeometryType::kRect:
          return RectToRect(a.rect(), b.rect());
        case GeometryType::kRegion:
          return RectToPolygon(a.rect(), b.region());
        default:
          break;
      }
      break;
    case GeometryType::kRegion:
      return PolygonToPolygon(a.region(), b.region());
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace pictdb::geom
