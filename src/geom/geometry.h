#ifndef PICTDB_GEOM_GEOMETRY_H_
#define PICTDB_GEOM_GEOMETRY_H_

#include <string>
#include <variant>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace pictdb::geom {

/// Pictorial object classes from the paper: "In a spatial database it is
/// convenient to classify data objects as points, segments, or regions."
/// Rect is included as a cheap region representation (windows, MBRs).
enum class GeometryType { kPoint, kSegment, kRect, kRegion };

/// A spatial object stored at an R-tree leaf or carried in a pictorial
/// column. The object is "atomic as far as the search is concerned" —
/// predicates treat it as a whole, never decomposed into primitives.
class Geometry {
 public:
  Geometry() : value_(Point{}) {}
  explicit Geometry(Point p) : value_(p) {}
  explicit Geometry(Segment s) : value_(s) {}
  explicit Geometry(Rect r) : value_(r) {}
  explicit Geometry(Polygon poly) : value_(std::move(poly)) {}

  GeometryType type() const {
    return static_cast<GeometryType>(value_.index());
  }
  bool is_point() const { return type() == GeometryType::kPoint; }
  bool is_segment() const { return type() == GeometryType::kSegment; }
  bool is_rect() const { return type() == GeometryType::kRect; }
  bool is_region() const { return type() == GeometryType::kRegion; }

  const Point& point() const { return std::get<Point>(value_); }
  const Segment& segment() const { return std::get<Segment>(value_); }
  const Rect& rect() const { return std::get<Rect>(value_); }
  const Polygon& region() const { return std::get<Polygon>(value_); }

  /// Minimal bounding rectangle of the object.
  Rect Mbr() const;

  /// Area of the object (0 for points and segments).
  double Area() const;

 private:
  std::variant<Point, Segment, Rect, Polygon> value_;
};

/// PSQL spatial comparison operators (§2.2): each receives two objects and
/// answers whether they satisfy the relation on the picture.

/// `a covered-by b`: every point of a lies within b.
bool CoveredBy(const Geometry& a, const Geometry& b);

/// `a covering b`: alias for CoveredBy(b, a).
bool Covering(const Geometry& a, const Geometry& b);

/// `a overlapping b`: they share at least one point.
bool Overlapping(const Geometry& a, const Geometry& b);

/// `a disjoined b`: they share no point.
bool Disjoined(const Geometry& a, const Geometry& b);

/// Human-readable geometry type name ("point", "segment", ...).
std::string TypeName(GeometryType t);

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_GEOMETRY_H_
