#include "geom/transform.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pictdb::geom {

Transform Transform::Rotation(double radians) {
  Transform t;
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  t.m00_ = c;
  t.m01_ = -s;
  t.m10_ = s;
  t.m11_ = c;
  return t;
}

Transform Transform::Translation(double dx, double dy) {
  Transform t;
  t.tx_ = dx;
  t.ty_ = dy;
  return t;
}

Transform Transform::Scale(double s) {
  Transform t;
  t.m00_ = s;
  t.m11_ = s;
  return t;
}

Point Transform::Apply(const Point& p) const {
  return Point{m00_ * p.x + m01_ * p.y + tx_,
               m10_ * p.x + m11_ * p.y + ty_};
}

std::vector<Point> Transform::Apply(const std::vector<Point>& pts) const {
  std::vector<Point> out;
  out.reserve(pts.size());
  for (const Point& p : pts) out.push_back(Apply(p));
  return out;
}

Transform Transform::Then(const Transform& next) const {
  Transform t;
  t.m00_ = next.m00_ * m00_ + next.m01_ * m10_;
  t.m01_ = next.m00_ * m01_ + next.m01_ * m11_;
  t.tx_ = next.m00_ * tx_ + next.m01_ * ty_ + next.tx_;
  t.m10_ = next.m10_ * m00_ + next.m11_ * m10_;
  t.m11_ = next.m10_ * m01_ + next.m11_ * m11_;
  t.ty_ = next.m10_ * tx_ + next.m11_ * ty_ + next.ty_;
  return t;
}

Transform Transform::Inverse() const {
  const double det = m00_ * m11_ - m01_ * m10_;
  PICTDB_CHECK(det != 0.0) << "non-invertible transform";
  Transform t;
  t.m00_ = m11_ / det;
  t.m01_ = -m01_ / det;
  t.m10_ = -m10_ / det;
  t.m11_ = m00_ / det;
  t.tx_ = -(t.m00_ * tx_ + t.m01_ * ty_);
  t.ty_ = -(t.m10_ * tx_ + t.m11_ * ty_);
  return t;
}

bool AllXDistinct(const std::vector<Point>& pts) {
  std::vector<double> xs;
  xs.reserve(pts.size());
  for (const Point& p : pts) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  return std::adjacent_find(xs.begin(), xs.end()) == xs.end();
}

double FindDistinctXRotation(const std::vector<Point>& pts) {
  // There are at most |S|²/2 bad directions (Lemma 3.1), so scanning a
  // dense deterministic sequence of candidate angles terminates. Exact
  // duplicate points can never be separated; they are skipped so the
  // function remains total.
  auto distinct_after = [&pts](double alpha) {
    const Transform rot = Transform::Rotation(alpha);
    std::vector<Point> rotated = rot.Apply(pts);
    std::sort(rotated.begin(), rotated.end(),
              [](const Point& a, const Point& b) {
                return a.x < b.x || (a.x == b.x && a.y < b.y);
              });
    for (size_t i = 1; i < rotated.size(); ++i) {
      if (rotated[i].x == rotated[i - 1].x &&
          rotated[i].y != rotated[i - 1].y) {
        return false;
      }
    }
    return true;
  };

  // Golden-angle stepping visits angles that are maximally spread out, so
  // a candidate far from all bad directions appears quickly.
  constexpr double kGoldenAngle = 2.399963229728653;
  double alpha = 0.0;
  for (int i = 0; i < 10000; ++i) {
    if (distinct_after(alpha)) return alpha;
    alpha = std::fmod(alpha + kGoldenAngle, 2.0 * M_PI);
  }
  PICTDB_CHECK(false) << "no distinct-x rotation found in 10000 candidates";
  return 0.0;
}

}  // namespace pictdb::geom
