#ifndef PICTDB_GEOM_DISTANCE_H_
#define PICTDB_GEOM_DISTANCE_H_

#include "geom/geometry.h"

namespace pictdb::geom {

/// Exact distance from `p` to the nearest point of `g` (0 when `p` lies
/// on or inside the object). Complements the R-tree's MBR-level MINDIST:
/// k-NN callers refine candidate order with this when objects are
/// extended (segments, regions).
double DistanceTo(const Geometry& g, const Point& p);

/// Minimum distance between two segments (0 if they intersect).
double Distance(const Segment& a, const Segment& b);

/// Minimum distance between two geometries (0 if they share a point).
/// Exact for every type combination.
double DistanceBetween(const Geometry& a, const Geometry& b);

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_DISTANCE_H_
