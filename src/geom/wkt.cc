#include "geom/wkt.h"

#include <cctype>
#include <charconv>
#include <sstream>
#include <vector>

namespace pictdb::geom {

namespace {

/// Tiny recursive-descent reader over the WKT text.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

  std::string ReadWord() {
    SkipSpace();
    std::string word;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      word.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(text_[pos_]))));
      ++pos_;
    }
    return word;
  }

  StatusOr<double> ReadNumber() {
    SkipSpace();
    double value = 0.0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr == begin) {
      return Status::InvalidArgument("expected number in WKT at position " +
                                     std::to_string(pos_));
    }
    pos_ += static_cast<size_t>(ptr - begin);
    return value;
  }

  StatusOr<Point> ReadPoint() {
    PICTDB_ASSIGN_OR_RETURN(const double x, ReadNumber());
    PICTDB_ASSIGN_OR_RETURN(const double y, ReadNumber());
    return Point{x, y};
  }

  /// Comma-separated point list up to the closing paren.
  StatusOr<std::vector<Point>> ReadPointList() {
    std::vector<Point> pts;
    do {
      PICTDB_ASSIGN_OR_RETURN(const Point p, ReadPoint());
      pts.push_back(p);
    } while (Eat(','));
    return pts;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

std::string FormatDouble(double v) {
  // Shortest representation that round-trips exactly: WKT doubles as a
  // storage encoding must not lose precision.
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PICTDB_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

}  // namespace

StatusOr<Geometry> ParseWkt(std::string_view text) {
  Reader r(text);
  const std::string kind = r.ReadWord();
  if (kind.empty()) return Status::InvalidArgument("empty WKT");
  if (!r.Eat('(')) return Status::InvalidArgument("expected ( in WKT");

  if (kind == "POINT") {
    PICTDB_ASSIGN_OR_RETURN(const Point p, r.ReadPoint());
    if (!r.Eat(')')) return Status::InvalidArgument("expected ) in WKT");
    if (!r.AtEnd()) return Status::InvalidArgument("trailing WKT input");
    return Geometry(p);
  }
  if (kind == "SEGMENT" || kind == "LINESTRING") {
    PICTDB_ASSIGN_OR_RETURN(const std::vector<Point> pts, r.ReadPointList());
    if (!r.Eat(')')) return Status::InvalidArgument("expected ) in WKT");
    if (!r.AtEnd()) return Status::InvalidArgument("trailing WKT input");
    if (pts.size() != 2) {
      return Status::InvalidArgument("segment needs exactly 2 points");
    }
    return Geometry(Segment{pts[0], pts[1]});
  }
  if (kind == "BOX" || kind == "RECT") {
    PICTDB_ASSIGN_OR_RETURN(const std::vector<Point> pts, r.ReadPointList());
    if (!r.Eat(')')) return Status::InvalidArgument("expected ) in WKT");
    if (!r.AtEnd()) return Status::InvalidArgument("trailing WKT input");
    if (pts.size() != 2) {
      return Status::InvalidArgument("box needs exactly 2 corner points");
    }
    return Geometry(Rect(pts[0], pts[1]));
  }
  if (kind == "POLYGON") {
    if (!r.Eat('(')) {
      return Status::InvalidArgument("expected (( in POLYGON WKT");
    }
    PICTDB_ASSIGN_OR_RETURN(std::vector<Point> pts, r.ReadPointList());
    if (!r.Eat(')') || !r.Eat(')')) {
      return Status::InvalidArgument("expected )) in POLYGON WKT");
    }
    if (!r.AtEnd()) return Status::InvalidArgument("trailing WKT input");
    // Tolerate an explicit closing vertex, standard in WKT.
    if (pts.size() >= 2 && pts.front() == pts.back()) pts.pop_back();
    if (pts.size() < 3) {
      return Status::InvalidArgument("polygon needs at least 3 vertices");
    }
    return Geometry(Polygon(std::move(pts)));
  }
  return Status::InvalidArgument("unknown WKT kind: " + kind);
}

std::string ToWkt(const Geometry& g) {
  std::ostringstream os;
  switch (g.type()) {
    case GeometryType::kPoint:
      os << "POINT(" << FormatDouble(g.point().x) << " "
         << FormatDouble(g.point().y) << ")";
      break;
    case GeometryType::kSegment:
      os << "SEGMENT(" << FormatDouble(g.segment().a.x) << " "
         << FormatDouble(g.segment().a.y) << ", "
         << FormatDouble(g.segment().b.x) << " "
         << FormatDouble(g.segment().b.y) << ")";
      break;
    case GeometryType::kRect:
      os << "BOX(" << FormatDouble(g.rect().lo.x) << " "
         << FormatDouble(g.rect().lo.y) << ", "
         << FormatDouble(g.rect().hi.x) << " " << FormatDouble(g.rect().hi.y)
         << ")";
      break;
    case GeometryType::kRegion: {
      os << "POLYGON((";
      const auto& vs = g.region().vertices();
      for (size_t i = 0; i < vs.size(); ++i) {
        if (i) os << ", ";
        os << FormatDouble(vs[i].x) << " " << FormatDouble(vs[i].y);
      }
      os << "))";
      break;
    }
  }
  return os.str();
}

}  // namespace pictdb::geom
