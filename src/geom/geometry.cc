#include "geom/geometry.h"

#include <algorithm>

namespace pictdb::geom {

namespace {

bool PointOnSegment(const Point& p, const Segment& s) {
  if (Cross(s.a, s.b, p) != 0.0) return false;
  return std::min(s.a.x, s.b.x) <= p.x && p.x <= std::max(s.a.x, s.b.x) &&
         std::min(s.a.y, s.b.y) <= p.y && p.y <= std::max(s.a.y, s.b.y);
}

bool SegmentIntersectsPolygon(const Segment& s, const Polygon& poly) {
  if (poly.empty()) return false;
  if (poly.Contains(s.a) || poly.Contains(s.b)) return true;
  for (size_t i = 0; i < poly.size(); ++i) {
    if (Intersects(s, poly.Edge(i))) return true;
  }
  return false;
}

bool PolygonContainsSegment(const Polygon& poly, const Segment& s) {
  if (!poly.Contains(s.a) || !poly.Contains(s.b)) return false;
  // For a simple polygon the segment could still exit through a concavity;
  // a crossing of the boundary at a non-endpoint reveals that. Sample the
  // midpoint of each boundary-intersecting subsegment: cheap and exact for
  // the polygon shapes the library generates (convex or mildly concave).
  for (size_t i = 0; i < poly.size(); ++i) {
    if (Intersects(s, poly.Edge(i))) {
      const Point mid{(s.a.x + s.b.x) * 0.5, (s.a.y + s.b.y) * 0.5};
      if (!poly.Contains(mid)) return false;
    }
  }
  return true;
}

}  // namespace

Rect Geometry::Mbr() const {
  switch (type()) {
    case GeometryType::kPoint:
      return Rect::FromPoint(point());
    case GeometryType::kSegment:
      return segment().Mbr();
    case GeometryType::kRect:
      return rect();
    case GeometryType::kRegion:
      return region().Mbr();
  }
  return Rect();
}

double Geometry::Area() const {
  switch (type()) {
    case GeometryType::kPoint:
    case GeometryType::kSegment:
      return 0.0;
    case GeometryType::kRect:
      return rect().Area();
    case GeometryType::kRegion:
      return region().Area();
  }
  return 0.0;
}

bool CoveredBy(const Geometry& a, const Geometry& b) {
  switch (b.type()) {
    case GeometryType::kRect: {
      const Rect& w = b.rect();
      switch (a.type()) {
        case GeometryType::kPoint:
          return w.Contains(a.point());
        case GeometryType::kSegment:
          return ContainedIn(a.segment(), w);
        case GeometryType::kRect:
          return w.Contains(a.rect());
        case GeometryType::kRegion:
          return ContainedIn(a.region(), w);
      }
      return false;
    }
    case GeometryType::kRegion: {
      const Polygon& poly = b.region();
      switch (a.type()) {
        case GeometryType::kPoint:
          return poly.Contains(a.point());
        case GeometryType::kSegment:
          return PolygonContainsSegment(poly, a.segment());
        case GeometryType::kRect:
          return Contains(poly, Polygon::FromRect(a.rect()));
        case GeometryType::kRegion:
          return Contains(poly, a.region());
      }
      return false;
    }
    case GeometryType::kSegment: {
      // A zero-area object can only cover points / collinear subsegments.
      const Segment& s = b.segment();
      switch (a.type()) {
        case GeometryType::kPoint:
          return PointOnSegment(a.point(), s);
        case GeometryType::kSegment:
          return PointOnSegment(a.segment().a, s) &&
                 PointOnSegment(a.segment().b, s);
        default:
          return false;
      }
    }
    case GeometryType::kPoint:
      return a.is_point() && a.point() == b.point();
  }
  return false;
}

bool Covering(const Geometry& a, const Geometry& b) { return CoveredBy(b, a); }

bool Overlapping(const Geometry& a, const Geometry& b) {
  // Symmetric "share at least one point". Normalize so a.type <= b.type.
  if (static_cast<int>(a.type()) > static_cast<int>(b.type())) {
    return Overlapping(b, a);
  }
  switch (a.type()) {
    case GeometryType::kPoint:
      switch (b.type()) {
        case GeometryType::kPoint:
          return a.point() == b.point();
        case GeometryType::kSegment:
          return PointOnSegment(a.point(), b.segment());
        case GeometryType::kRect:
          return b.rect().Contains(a.point());
        case GeometryType::kRegion:
          return b.region().Contains(a.point());
      }
      return false;
    case GeometryType::kSegment:
      switch (b.type()) {
        case GeometryType::kSegment:
          return Intersects(a.segment(), b.segment());
        case GeometryType::kRect:
          return Intersects(a.segment(), b.rect());
        case GeometryType::kRegion:
          return SegmentIntersectsPolygon(a.segment(), b.region());
        default:
          return false;
      }
    case GeometryType::kRect:
      switch (b.type()) {
        case GeometryType::kRect:
          return a.rect().Intersects(b.rect());
        case GeometryType::kRegion:
          return Intersects(b.region(), a.rect());
        default:
          return false;
      }
    case GeometryType::kRegion:
      return Intersects(a.region(), b.region());
  }
  return false;
}

bool Disjoined(const Geometry& a, const Geometry& b) {
  return !Overlapping(a, b);
}

std::string TypeName(GeometryType t) {
  switch (t) {
    case GeometryType::kPoint:
      return "point";
    case GeometryType::kSegment:
      return "segment";
    case GeometryType::kRect:
      return "rect";
    case GeometryType::kRegion:
      return "region";
  }
  return "unknown";
}

}  // namespace pictdb::geom
