#include "geom/rect.h"

#include <cmath>
#include <sstream>

namespace pictdb::geom {

Rect UnionOf(const Rect& a, const Rect& b) {
  Rect out = a;
  out.ExpandToInclude(b);
  return out;
}

Rect IntersectionOf(const Rect& a, const Rect& b) {
  if (!a.Intersects(b)) return Rect();
  Rect out;
  out.lo.x = std::max(a.lo.x, b.lo.x);
  out.lo.y = std::max(a.lo.y, b.lo.y);
  out.hi.x = std::min(a.hi.x, b.hi.x);
  out.hi.y = std::min(a.hi.y, b.hi.y);
  return out;
}

double Enlargement(const Rect& base, const Rect& add) {
  return UnionOf(base, add).Area() - base.Area();
}

double MinDistance(const Rect& a, const Rect& b) {
  if (a.IsEmpty() || b.IsEmpty()) return std::numeric_limits<double>::infinity();
  const double dx =
      std::max({0.0, a.lo.x - b.hi.x, b.lo.x - a.hi.x});
  const double dy =
      std::max({0.0, a.lo.y - b.hi.y, b.lo.y - a.hi.y});
  return std::hypot(dx, dy);
}

double MinDistance(const Rect& r, const Point& p) {
  return MinDistance(r, Rect::FromPoint(p));
}

std::string ToString(const Rect& r) {
  std::ostringstream os;
  if (r.IsEmpty()) {
    os << "RECT(empty)";
  } else {
    os << "RECT(" << r.lo.x << " " << r.lo.y << ", " << r.hi.x << " "
       << r.hi.y << ")";
  }
  return os.str();
}

}  // namespace pictdb::geom
