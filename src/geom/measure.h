#ifndef PICTDB_GEOM_MEASURE_H_
#define PICTDB_GEOM_MEASURE_H_

#include <vector>

#include "geom/rect.h"

namespace pictdb::geom {

/// Σ area(r) over all rects, counting overlapping regions multiple times —
/// exactly the paper's "coverage" when applied to the leaf MBRs.
double TotalArea(const std::vector<Rect>& rects);

/// Measure of the region covered by at least one rect (Klee's problem).
double UnionArea(const std::vector<Rect>& rects);

/// Measure of the region covered by at least `k` of the rects. k=2 is the
/// paper's "overlap": "the total area contained within two or more leaf
/// MBRs". Exact x-slab sweep with y-interval counting; O(n² log n) worst
/// case, which is ample at experiment scale.
double AreaCoveredAtLeast(const std::vector<Rect>& rects, int k);

/// Reference implementation of AreaCoveredAtLeast via full coordinate
/// compression and a 2D difference grid. O(n²) cells — for tests that
/// cross-validate the sweep, not for production use.
double AreaCoveredAtLeastBrute(const std::vector<Rect>& rects, int k);

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_MEASURE_H_
