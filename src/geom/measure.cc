#include "geom/measure.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace pictdb::geom {

namespace {

/// Total length of y covered by >= k of the given closed intervals.
double LengthCoveredAtLeast(std::vector<std::pair<double, int>>* events,
                            int k) {
  std::sort(events->begin(), events->end());
  double covered = 0.0;
  int depth = 0;
  double prev_y = 0.0;
  for (const auto& [y, delta] : *events) {
    if (depth >= k) covered += y - prev_y;
    depth += delta;
    prev_y = y;
  }
  return covered;
}

}  // namespace

double TotalArea(const std::vector<Rect>& rects) {
  double sum = 0.0;
  for (const Rect& r : rects) sum += r.Area();
  return sum;
}

double UnionArea(const std::vector<Rect>& rects) {
  return AreaCoveredAtLeast(rects, 1);
}

double AreaCoveredAtLeast(const std::vector<Rect>& rects, int k) {
  PICTDB_CHECK(k >= 1);
  std::vector<Rect> live;
  live.reserve(rects.size());
  for (const Rect& r : rects) {
    if (!r.IsEmpty() && r.Area() > 0.0) live.push_back(r);
  }
  if (static_cast<int>(live.size()) < k) return 0.0;

  // Slab sweep over distinct x coordinates. Within each slab the active
  // rects are constant, so the covered-≥k area is slab_width times the y
  // length covered ≥k.
  std::vector<double> xs;
  xs.reserve(live.size() * 2);
  for (const Rect& r : live) {
    xs.push_back(r.lo.x);
    xs.push_back(r.hi.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  // Index rects by entering slab boundary for incremental maintenance.
  std::sort(live.begin(), live.end(), [](const Rect& a, const Rect& b) {
    return a.lo.x < b.lo.x;
  });

  double area = 0.0;
  size_t next_enter = 0;
  // Active rects, removed lazily when their hi.x no longer spans the slab.
  std::vector<Rect> active;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    const double x0 = xs[i];
    const double x1 = xs[i + 1];
    while (next_enter < live.size() && live[next_enter].lo.x <= x0) {
      active.push_back(live[next_enter]);
      ++next_enter;
    }
    std::erase_if(active, [x1](const Rect& r) { return r.hi.x < x1; });
    if (static_cast<int>(active.size()) < k) continue;
    std::vector<std::pair<double, int>> events;
    events.reserve(active.size() * 2);
    for (const Rect& r : active) {
      events.emplace_back(r.lo.y, +1);
      events.emplace_back(r.hi.y, -1);
    }
    area += (x1 - x0) * LengthCoveredAtLeast(&events, k);
  }
  return area;
}

double AreaCoveredAtLeastBrute(const std::vector<Rect>& rects, int k) {
  PICTDB_CHECK(k >= 1);
  std::vector<double> xs, ys;
  for (const Rect& r : rects) {
    if (r.IsEmpty()) continue;
    xs.push_back(r.lo.x);
    xs.push_back(r.hi.x);
    ys.push_back(r.lo.y);
    ys.push_back(r.hi.y);
  }
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  auto xi = [&xs](double v) {
    return std::lower_bound(xs.begin(), xs.end(), v) - xs.begin();
  };
  auto yi = [&ys](double v) {
    return std::lower_bound(ys.begin(), ys.end(), v) - ys.begin();
  };

  const size_t nx = xs.size();
  const size_t ny = ys.size();
  std::vector<int> count(nx * ny, 0);
  for (const Rect& r : rects) {
    if (r.IsEmpty()) continue;
    for (size_t i = xi(r.lo.x); i < static_cast<size_t>(xi(r.hi.x)); ++i) {
      for (size_t j = yi(r.lo.y); j < static_cast<size_t>(yi(r.hi.y)); ++j) {
        ++count[i * ny + j];
      }
    }
  }
  double area = 0.0;
  for (size_t i = 0; i + 1 < nx; ++i) {
    for (size_t j = 0; j + 1 < ny; ++j) {
      if (count[i * ny + j] >= k) {
        area += (xs[i + 1] - xs[i]) * (ys[j + 1] - ys[j]);
      }
    }
  }
  return area;
}

}  // namespace pictdb::geom
