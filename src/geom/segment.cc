#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace pictdb::geom {

namespace {

bool OnSegment(const Point& p, const Point& q, const Point& r) {
  // Assumes p, q, r collinear: is q within the box spanned by p..r?
  return std::min(p.x, r.x) <= q.x && q.x <= std::max(p.x, r.x) &&
         std::min(p.y, r.y) <= q.y && q.y <= std::max(p.y, r.y);
}

int Sign(double v) {
  if (v > 0) return 1;
  if (v < 0) return -1;
  return 0;
}

}  // namespace

bool Intersects(const Segment& s, const Segment& t) {
  const int d1 = Sign(Cross(t.a, t.b, s.a));
  const int d2 = Sign(Cross(t.a, t.b, s.b));
  const int d3 = Sign(Cross(s.a, s.b, t.a));
  const int d4 = Sign(Cross(s.a, s.b, t.b));
  if (d1 != d2 && d3 != d4) return true;
  if (d1 == 0 && OnSegment(t.a, s.a, t.b)) return true;
  if (d2 == 0 && OnSegment(t.a, s.b, t.b)) return true;
  if (d3 == 0 && OnSegment(s.a, t.a, s.b)) return true;
  if (d4 == 0 && OnSegment(s.a, t.b, s.b)) return true;
  return false;
}

bool Intersects(const Segment& s, const Rect& r) {
  if (r.IsEmpty()) return false;
  if (r.Contains(s.a) || r.Contains(s.b)) return true;
  if (!r.Intersects(s.Mbr())) return false;
  // Neither endpoint inside: the segment intersects iff it crosses one of
  // the rect's four edges.
  const Point p1{r.lo.x, r.lo.y};
  const Point p2{r.hi.x, r.lo.y};
  const Point p3{r.hi.x, r.hi.y};
  const Point p4{r.lo.x, r.hi.y};
  return Intersects(s, Segment{p1, p2}) || Intersects(s, Segment{p2, p3}) ||
         Intersects(s, Segment{p3, p4}) || Intersects(s, Segment{p4, p1});
}

bool ContainedIn(const Segment& s, const Rect& r) {
  return r.Contains(s.a) && r.Contains(s.b);
}

double Distance(const Segment& s, const Point& p) {
  const double len2 = DistanceSquared(s.a, s.b);
  if (len2 == 0.0) return Distance(s.a, p);
  // Project p onto the line through a,b clamped to the segment.
  double t = Dot(s.a, s.b, p) / len2;
  t = std::clamp(t, 0.0, 1.0);
  const Point proj = s.a + (s.b - s.a) * t;
  return Distance(proj, p);
}

}  // namespace pictdb::geom
