#ifndef PICTDB_GEOM_RECT_H_
#define PICTDB_GEOM_RECT_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geom/point.h"

namespace pictdb::geom {

/// Axis-aligned rectangle (the paper's minimal bounding rectangle, MBR).
/// Invariant for non-empty rects: lo.x <= hi.x and lo.y <= hi.y.
/// A default-constructed Rect is "empty" (inverted bounds) and acts as the
/// identity for ExpandToInclude/UnionOf.
struct Rect {
  Point lo{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Point hi{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  Rect() = default;
  Rect(double x1, double y1, double x2, double y2)
      : lo{std::min(x1, x2), std::min(y1, y2)},
        hi{std::max(x1, x2), std::max(y1, y2)} {}
  Rect(const Point& a, const Point& b)
      : Rect(a.x, a.y, b.x, b.y) {}

  /// Degenerate rectangle covering a single point.
  static Rect FromPoint(const Point& p) { return Rect(p.x, p.y, p.x, p.y); }

  /// The paper's `{x±dx, y±dy}` window syntax.
  static Rect FromCenterHalfExtent(double cx, double dx, double cy,
                                   double dy) {
    return Rect(cx - dx, cy - dy, cx + dx, cy + dy);
  }

  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  double Width() const { return IsEmpty() ? 0.0 : hi.x - lo.x; }
  double Height() const { return IsEmpty() ? 0.0 : hi.y - lo.y; }
  double Area() const { return Width() * Height(); }
  /// Half-perimeter; the margin used by some split heuristics.
  double Margin() const { return Width() + Height(); }
  Point Center() const {
    return Point{(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }

  /// Closed-boundary intersection test (rects touching at an edge
  /// intersect, matching the paper's INTERSECTS).
  bool Intersects(const Rect& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y &&
           o.lo.y <= hi.y;
  }

  /// True if this rect fully contains `o` (boundaries may coincide);
  /// the paper's `covers` operator for rectangles.
  bool Contains(const Rect& o) const {
    if (o.IsEmpty()) return true;
    if (IsEmpty()) return false;
    return lo.x <= o.lo.x && o.hi.x <= hi.x && lo.y <= o.lo.y &&
           o.hi.y <= hi.y;
  }

  bool Contains(const Point& p) const {
    return !IsEmpty() && lo.x <= p.x && p.x <= hi.x && lo.y <= p.y &&
           p.y <= hi.y;
  }

  /// Interiors intersect but neither contains the other — the paper's
  /// `overlapping` operator.
  bool Overlaps(const Rect& o) const {
    if (!IntersectsInterior(o)) return false;
    return !Contains(o) && !o.Contains(*this);
  }

  /// Open-interval intersection: true only if the common region has
  /// positive area.
  bool IntersectsInterior(const Rect& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y;
  }

  /// The paper's `disjoined` operator.
  bool Disjoint(const Rect& o) const { return !Intersects(o); }

  /// Grow in place to include `o`.
  void ExpandToInclude(const Rect& o) {
    if (o.IsEmpty()) return;
    lo.x = std::min(lo.x, o.lo.x);
    lo.y = std::min(lo.y, o.lo.y);
    hi.x = std::max(hi.x, o.hi.x);
    hi.y = std::max(hi.y, o.hi.y);
  }

  void ExpandToInclude(const Point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Smallest rect containing both arguments.
Rect UnionOf(const Rect& a, const Rect& b);

/// Common region of both arguments; empty if they do not intersect.
Rect IntersectionOf(const Rect& a, const Rect& b);

/// Area growth of `base` needed to include `add` (Guttman's enlargement
/// criterion for ChooseLeaf).
double Enlargement(const Rect& base, const Rect& add);

/// Minimum distance between two rects (0 if they intersect).
double MinDistance(const Rect& a, const Rect& b);

/// Minimum distance from a point to a rect (0 if inside).
double MinDistance(const Rect& r, const Point& p);

/// "RECT(x1 y1, x2 y2)" for debugging.
std::string ToString(const Rect& r);

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_RECT_H_
