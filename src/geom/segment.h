#ifndef PICTDB_GEOM_SEGMENT_H_
#define PICTDB_GEOM_SEGMENT_H_

#include "geom/point.h"
#include "geom/rect.h"

namespace pictdb::geom {

/// Line segment — the paper's "segment" pictorial class (e.g. highway
/// sections). Stored by its two endpoints.
struct Segment {
  Point a;
  Point b;

  Rect Mbr() const {
    Rect r = Rect::FromPoint(a);
    r.ExpandToInclude(b);
    return r;
  }

  double Length() const { return Distance(a, b); }

  friend bool operator==(const Segment& s, const Segment& t) {
    return s.a == t.a && s.b == t.b;
  }
};

/// True if segments `s` and `t` share at least one point (proper or
/// touching intersections both count).
bool Intersects(const Segment& s, const Segment& t);

/// True if any point of the segment lies within the rect (clips the
/// segment against the rect boundary).
bool Intersects(const Segment& s, const Rect& r);

/// True if both endpoints (and hence the whole segment) lie inside `r`.
bool ContainedIn(const Segment& s, const Rect& r);

/// Distance from point `p` to the closest point of segment `s`.
double Distance(const Segment& s, const Point& p);

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_SEGMENT_H_
