#ifndef PICTDB_GEOM_POLYGON_H_
#define PICTDB_GEOM_POLYGON_H_

#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace pictdb::geom {

/// Simple polygon — the paper's "region" pictorial class (states, lakes,
/// time zones). Vertices are stored in ring order without a repeated
/// closing vertex; edges implicitly wrap around.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  /// Axis-aligned rectangle as a 4-vertex polygon.
  static Polygon FromRect(const Rect& r);

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  Rect Mbr() const;

  /// Signed shoelace area (positive for counter-clockwise rings).
  double SignedArea() const;
  /// |SignedArea| — the paper's `area` function on regions.
  double Area() const;

  /// Ring perimeter.
  double Perimeter() const;

  /// Point-in-polygon (boundary counts as inside). Ray-casting with
  /// on-edge detection.
  bool Contains(const Point& p) const;

  /// The i-th edge (wraps around at the end).
  Segment Edge(size_t i) const;

 private:
  std::vector<Point> vertices_;
};

/// True if the polygons share at least one point (edge crossing, touching,
/// or one containing the other).
bool Intersects(const Polygon& a, const Polygon& b);

/// True if any point of `poly` lies inside `r`.
bool Intersects(const Polygon& poly, const Rect& r);

/// True if every vertex of `poly` lies inside `r` (sufficient for simple
/// polygons since `r` is convex).
bool ContainedIn(const Polygon& poly, const Rect& r);

/// True if polygon `outer` fully contains polygon `inner`
/// (no edge crossings and one inner vertex inside outer).
bool Contains(const Polygon& outer, const Polygon& inner);

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_POLYGON_H_
