#ifndef PICTDB_GEOM_WKT_H_
#define PICTDB_GEOM_WKT_H_

#include <string>
#include <string_view>

#include "common/status_or.h"
#include "geom/geometry.h"

namespace pictdb::geom {

/// Text encodings for pictorial objects, in the spirit of WKT:
///   POINT(x y)
///   SEGMENT(x1 y1, x2 y2)
///   BOX(x1 y1, x2 y2)
///   POLYGON((x1 y1, x2 y2, ...))
/// Used by tests, examples, and PSQL constant geometry literals.
StatusOr<Geometry> ParseWkt(std::string_view text);

/// Inverse of ParseWkt.
std::string ToWkt(const Geometry& g);

}  // namespace pictdb::geom

#endif  // PICTDB_GEOM_WKT_H_
