#include "geom/polygon.h"

#include <cmath>

#include "common/logging.h"

namespace pictdb::geom {

Polygon Polygon::FromRect(const Rect& r) {
  PICTDB_DCHECK(!r.IsEmpty());
  return Polygon({{r.lo.x, r.lo.y},
                  {r.hi.x, r.lo.y},
                  {r.hi.x, r.hi.y},
                  {r.lo.x, r.hi.y}});
}

Rect Polygon::Mbr() const {
  Rect r;
  for (const Point& v : vertices_) r.ExpandToInclude(v);
  return r;
}

double Polygon::SignedArea() const {
  if (vertices_.size() < 3) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % vertices_.size()];
    sum += p.x * q.y - q.x * p.y;
  }
  return sum * 0.5;
}

double Polygon::Area() const { return std::fabs(SignedArea()); }

double Polygon::Perimeter() const {
  if (vertices_.size() < 2) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    sum += Edge(i).Length();
  }
  return sum;
}

Segment Polygon::Edge(size_t i) const {
  PICTDB_DCHECK(i < vertices_.size());
  return Segment{vertices_[i], vertices_[(i + 1) % vertices_.size()]};
}

bool Polygon::Contains(const Point& p) const {
  if (vertices_.size() < 3) return false;
  // Boundary counts as inside.
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Segment e = Edge(i);
    if (Cross(e.a, e.b, p) == 0.0 &&
        std::min(e.a.x, e.b.x) <= p.x && p.x <= std::max(e.a.x, e.b.x) &&
        std::min(e.a.y, e.b.y) <= p.y && p.y <= std::max(e.a.y, e.b.y)) {
      return true;
    }
  }
  // Ray casting toward +x counting crossings, with the usual half-open
  // rule to avoid double-counting vertices.
  bool inside = false;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_cross > p.x) inside = !inside;
    }
  }
  return inside;
}

bool Intersects(const Polygon& a, const Polygon& b) {
  if (a.empty() || b.empty()) return false;
  if (!a.Mbr().Intersects(b.Mbr())) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (Intersects(a.Edge(i), b.Edge(j))) return true;
    }
  }
  // No edge crossings: either disjoint or one inside the other.
  return a.Contains(b.vertices()[0]) || b.Contains(a.vertices()[0]);
}

bool Intersects(const Polygon& poly, const Rect& r) {
  if (poly.empty() || r.IsEmpty()) return false;
  if (!poly.Mbr().Intersects(r)) return false;
  for (const Point& v : poly.vertices()) {
    if (r.Contains(v)) return true;
  }
  // Rect corner inside the polygon (rect fully within region)?
  if (poly.Contains(Point{r.lo.x, r.lo.y})) return true;
  // Edge crossings.
  for (size_t i = 0; i < poly.size(); ++i) {
    if (Intersects(poly.Edge(i), r)) return true;
  }
  return false;
}

bool ContainedIn(const Polygon& poly, const Rect& r) {
  if (poly.empty()) return false;
  for (const Point& v : poly.vertices()) {
    if (!r.Contains(v)) return false;
  }
  return true;
}

bool Contains(const Polygon& outer, const Polygon& inner) {
  if (outer.size() < 3 || inner.empty()) return false;
  // Any edge crossing disqualifies containment of a simple polygon, except
  // touching; we use the strict test: all inner vertices inside outer and
  // no proper edge crossings.
  for (const Point& v : inner.vertices()) {
    if (!outer.Contains(v)) return false;
  }
  for (size_t i = 0; i < outer.size(); ++i) {
    for (size_t j = 0; j < inner.size(); ++j) {
      const Segment eo = outer.Edge(i);
      const Segment ei = inner.Edge(j);
      if (Intersects(eo, ei)) {
        // Shared boundary points are fine; a proper crossing is not. Test
        // whether the inner edge has points strictly outside.
        const Point mid{(ei.a.x + ei.b.x) * 0.5, (ei.a.y + ei.b.y) * 0.5};
        if (!outer.Contains(mid)) return false;
      }
    }
  }
  return true;
}

}  // namespace pictdb::geom
