#include "quadtree/quadtree.h"

#include <algorithm>

#include "common/logging.h"

namespace pictdb::quadtree {

using geom::Point;
using geom::Rect;

QuadTree::QuadTree(const Rect& frame, int max_depth, size_t split_threshold)
    : max_depth_(max_depth), split_threshold_(split_threshold) {
  PICTDB_CHECK(!frame.IsEmpty());
  PICTDB_CHECK(max_depth_ >= 1 && split_threshold_ >= 1);
  root_.bounds = frame;
  root_.depth = 0;
}

Rect QuadTree::ChildBounds(const Cell& cell, int quadrant) {
  const Point c = cell.bounds.Center();
  switch (quadrant) {
    case 0:  // NW
      return Rect(cell.bounds.lo.x, c.y, c.x, cell.bounds.hi.y);
    case 1:  // NE
      return Rect(c.x, c.y, cell.bounds.hi.x, cell.bounds.hi.y);
    case 2:  // SW
      return Rect(cell.bounds.lo.x, cell.bounds.lo.y, c.x, c.y);
    default:  // SE
      return Rect(c.x, cell.bounds.lo.y, cell.bounds.hi.x, c.y);
  }
}

int QuadTree::QuadrantOf(const Cell& cell, const Rect& mbr) {
  for (int q = 0; q < 4; ++q) {
    if (ChildBounds(cell, q).Contains(mbr)) return q;
  }
  return -1;  // straddles the center lines: pinned here
}

void QuadTree::SplitCell(Cell* cell) {
  cell->split = true;
  // Push down every entry that fits wholly inside a child quadrant.
  std::vector<QuadEntry> keep;
  for (const QuadEntry& e : cell->entries) {
    const int q = QuadrantOf(*cell, e.mbr);
    if (q < 0) {
      keep.push_back(e);
      continue;
    }
    if (cell->children[q] == nullptr) {
      cell->children[q] = std::make_unique<Cell>();
      cell->children[q]->bounds = ChildBounds(*cell, q);
      cell->children[q]->depth = cell->depth + 1;
    }
    InsertInto(cell->children[q].get(), e);
  }
  cell->entries = std::move(keep);
}

void QuadTree::InsertInto(Cell* cell, const QuadEntry& entry) {
  for (;;) {
    if (!cell->split) {
      if (cell->entries.size() < split_threshold_ ||
          cell->depth >= max_depth_) {
        cell->entries.push_back(entry);
        return;
      }
      SplitCell(cell);
      // fall through: cell is now split
    }
    const int q = QuadrantOf(*cell, entry.mbr);
    if (q < 0) {
      cell->entries.push_back(entry);
      return;
    }
    if (cell->children[q] == nullptr) {
      cell->children[q] = std::make_unique<Cell>();
      cell->children[q]->bounds = ChildBounds(*cell, q);
      cell->children[q]->depth = cell->depth + 1;
    }
    cell = cell->children[q].get();
  }
}

Status QuadTree::Insert(const Rect& mbr, const storage::Rid& rid) {
  if (mbr.IsEmpty()) {
    return Status::InvalidArgument("cannot index an empty rectangle");
  }
  if (!root_.bounds.Contains(mbr)) {
    return Status::InvalidArgument("object outside the quad-tree frame");
  }
  InsertInto(&root_, QuadEntry{mbr, rid});
  ++size_;
  return Status::OK();
}

Status QuadTree::Delete(const Rect& mbr, const storage::Rid& rid) {
  Cell* cell = &root_;
  while (cell != nullptr) {
    for (size_t i = 0; i < cell->entries.size(); ++i) {
      if (cell->entries[i].rid == rid && cell->entries[i].mbr == mbr) {
        cell->entries.erase(cell->entries.begin() + i);
        --size_;
        return Status::OK();
      }
    }
    const int q = QuadrantOf(*cell, mbr);
    cell = q >= 0 && cell->children[q] != nullptr
               ? cell->children[q].get()
               : nullptr;
  }
  return Status::NotFound("entry not in quad-tree");
}

void QuadTree::SearchRec(const Cell& cell, const Rect& window,
                         std::vector<QuadEntry>* out,
                         QuadStats* stats) const {
  if (stats != nullptr) ++stats->cells_visited;
  for (const QuadEntry& e : cell.entries) {
    if (stats != nullptr) ++stats->entries_tested;
    if (e.mbr.Intersects(window)) {
      out->push_back(e);
      if (stats != nullptr) ++stats->results;
    }
  }
  for (int q = 0; q < 4; ++q) {
    if (cell.children[q] != nullptr &&
        cell.children[q]->bounds.Intersects(window)) {
      SearchRec(*cell.children[q], window, out, stats);
    }
  }
}

std::vector<QuadEntry> QuadTree::SearchIntersects(const Rect& window,
                                                  QuadStats* stats) const {
  std::vector<QuadEntry> out;
  if (root_.bounds.Intersects(window)) {
    SearchRec(root_, window, &out, stats);
  }
  return out;
}

std::vector<QuadEntry> QuadTree::SearchPoint(const Point& p,
                                             QuadStats* stats) const {
  return SearchIntersects(Rect::FromPoint(p), stats);
}

size_t QuadTree::CountCells(const Cell& cell) {
  size_t n = 1;
  for (int q = 0; q < 4; ++q) {
    if (cell.children[q] != nullptr) n += CountCells(*cell.children[q]);
  }
  return n;
}

size_t QuadTree::CellCount() const { return CountCells(root_); }

int QuadTree::MaxDepth(const Cell& cell) {
  int deepest = cell.depth;
  for (int q = 0; q < 4; ++q) {
    if (cell.children[q] != nullptr) {
      deepest = std::max(deepest, MaxDepth(*cell.children[q]));
    }
  }
  return deepest;
}

int QuadTree::DepthInUse() const { return MaxDepth(root_); }

}  // namespace pictdb::quadtree
