#ifndef PICTDB_QUADTREE_QUADTREE_H_
#define PICTDB_QUADTREE_QUADTREE_H_

#include <memory>
#include <vector>

#include "common/status_or.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "storage/heap_file.h"

namespace pictdb::quadtree {

/// Search accounting, comparable with rtree::SearchStats.
struct QuadStats {
  uint64_t cells_visited = 0;
  uint64_t entries_tested = 0;
  uint64_t results = 0;
};

/// One indexed object.
struct QuadEntry {
  geom::Rect mbr;
  storage::Rid rid;
};

/// The paper's comparison structure (§1): a quad-tree over the picture
/// space. This is an MX-CIF-style variant: the frame is recursively
/// quartered, and each object is stored at the *smallest* cell that
/// wholly contains its MBR — so large or boundary-straddling objects sit
/// high in the tree, the "decomposition into quadrants" behaviour the
/// paper criticizes. Point objects descend to the depth cap.
///
/// Provided as the evaluation baseline; it is an in-memory structure
/// (the baseline does not need the paged substrate).
class QuadTree {
 public:
  /// `frame` must contain every object ever inserted; `max_depth` caps
  /// the decomposition (cells below ~frame/2^max_depth are not split).
  explicit QuadTree(const geom::Rect& frame, int max_depth = 16,
                    size_t split_threshold = 8);

  /// Insert an object; InvalidArgument if its MBR is outside the frame.
  Status Insert(const geom::Rect& mbr, const storage::Rid& rid);

  /// Remove an exact (mbr, rid) entry; NotFound if absent.
  Status Delete(const geom::Rect& mbr, const storage::Rid& rid);

  /// All entries whose MBR intersects the window.
  std::vector<QuadEntry> SearchIntersects(const geom::Rect& window,
                                          QuadStats* stats = nullptr) const;

  /// All entries whose MBR contains the point.
  std::vector<QuadEntry> SearchPoint(const geom::Point& p,
                                     QuadStats* stats = nullptr) const;

  size_t Size() const { return size_; }

  /// Total allocated cells (the quad-tree's "nodes" count).
  size_t CellCount() const;

  /// Maximum depth currently in use.
  int DepthInUse() const;

 private:
  struct Cell {
    geom::Rect bounds;
    int depth = 0;
    std::vector<QuadEntry> entries;          // objects pinned to this cell
    std::unique_ptr<Cell> children[4];       // NW, NE, SW, SE (lazily)
    bool split = false;
  };

  /// Index of the child quadrant wholly containing `mbr`, or -1.
  static int QuadrantOf(const Cell& cell, const geom::Rect& mbr);
  static geom::Rect ChildBounds(const Cell& cell, int quadrant);

  void InsertInto(Cell* cell, const QuadEntry& entry);
  void SplitCell(Cell* cell);
  void SearchRec(const Cell& cell, const geom::Rect& window,
                 std::vector<QuadEntry>* out, QuadStats* stats) const;
  static size_t CountCells(const Cell& cell);
  static int MaxDepth(const Cell& cell);

  Cell root_;
  int max_depth_;
  size_t split_threshold_;
  size_t size_ = 0;
};

}  // namespace pictdb::quadtree

#endif  // PICTDB_QUADTREE_QUADTREE_H_
