#ifndef PICTDB_VIZ_SVG_H_
#define PICTDB_VIZ_SVG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace pictdb::viz {

/// Minimal SVG emitter for the figure-style outputs (Fig 3.8a-c): points,
/// MBR outlines per tree level, segments, polygons. World y is flipped so
/// pictures render with north up.
class SvgWriter {
 public:
  /// `frame` is the world viewport; output is scaled to width_px wide.
  SvgWriter(const geom::Rect& frame, double width_px = 800.0);

  void AddPoint(const geom::Point& p, const std::string& color = "black",
                double radius = 2.0);
  void AddRect(const geom::Rect& r, const std::string& stroke = "steelblue",
               double stroke_width = 1.0);
  void AddSegment(const geom::Segment& s, const std::string& stroke = "gray",
                  double stroke_width = 1.0);
  void AddPolygon(const geom::Polygon& poly,
                  const std::string& stroke = "darkgreen",
                  const std::string& fill = "none");
  void AddLabel(const geom::Point& p, const std::string& text,
                double font_px = 10.0);

  /// Serialize the document.
  std::string Finish() const;

  /// Serialize and write to `path`.
  Status WriteFile(const std::string& path) const;

  /// Serialize and write to FigurePath(filename).
  Status WriteFigure(const std::string& filename) const;

 private:
  double X(double wx) const;
  double Y(double wy) const;

  geom::Rect frame_;
  double width_px_;
  double height_px_;
  double scale_;
  std::vector<std::string> elements_;
};

/// Canonical home for generated figures: `$PICTDB_FIGURE_DIR` when set,
/// `examples/figures/` otherwise. The directory is created on demand and
/// the joined path for `filename` returned, so figure-emitting tools all
/// land in one place instead of littering the working directory.
std::string FigurePath(const std::string& filename);

}  // namespace pictdb::viz

#endif  // PICTDB_VIZ_SVG_H_
