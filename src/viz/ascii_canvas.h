#ifndef PICTDB_VIZ_ASCII_CANVAS_H_
#define PICTDB_VIZ_ASCII_CANVAS_H_

#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "geom/segment.h"

namespace pictdb::viz {

/// Terminal-resolution "graphics monitor": renders pictorial query output
/// as a character grid. World coordinates are mapped from `frame` onto a
/// cols×rows cell raster (y grows upward, so row 0 prints last).
class AsciiCanvas {
 public:
  AsciiCanvas(const geom::Rect& frame, size_t cols, size_t rows);

  /// Plot a point marker.
  void DrawPoint(const geom::Point& p, char marker = '*');

  /// Draw the outline of a rectangle with -, | and + characters.
  void DrawRect(const geom::Rect& r, char corner = '+');

  /// Draw a line segment (Bresenham over the cell raster).
  void DrawSegment(const geom::Segment& s, char marker = '.');

  /// Place a label with its first character at the cell containing `p`.
  void DrawLabel(const geom::Point& p, const std::string& text);

  /// Render to a newline-joined string (top row first).
  std::string Render() const;

  size_t cols() const { return cols_; }
  size_t rows() const { return rows_; }

 private:
  bool ToCell(const geom::Point& p, long* cx, long* cy) const;
  void Put(long cx, long cy, char c);

  geom::Rect frame_;
  size_t cols_;
  size_t rows_;
  std::vector<std::string> grid_;  // grid_[row][col], row 0 = top
};

}  // namespace pictdb::viz

#endif  // PICTDB_VIZ_ASCII_CANVAS_H_
