#include "viz/svg.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/logging.h"

namespace pictdb::viz {

SvgWriter::SvgWriter(const geom::Rect& frame, double width_px)
    : frame_(frame), width_px_(width_px) {
  PICTDB_CHECK(!frame.IsEmpty() && width_px > 0);
  scale_ = width_px_ / std::max(frame_.Width(), 1e-12);
  height_px_ = frame_.Height() * scale_;
  if (height_px_ < 1.0) height_px_ = 1.0;
}

double SvgWriter::X(double wx) const { return (wx - frame_.lo.x) * scale_; }
double SvgWriter::Y(double wy) const {
  return height_px_ - (wy - frame_.lo.y) * scale_;
}

void SvgWriter::AddPoint(const geom::Point& p, const std::string& color,
                         double radius) {
  std::ostringstream os;
  os << "<circle cx=\"" << X(p.x) << "\" cy=\"" << Y(p.y) << "\" r=\""
     << radius << "\" fill=\"" << color << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::AddRect(const geom::Rect& r, const std::string& stroke,
                        double stroke_width) {
  if (r.IsEmpty()) return;
  std::ostringstream os;
  os << "<rect x=\"" << X(r.lo.x) << "\" y=\"" << Y(r.hi.y) << "\" width=\""
     << r.Width() * scale_ << "\" height=\"" << r.Height() * scale_
     << "\" fill=\"none\" stroke=\"" << stroke << "\" stroke-width=\""
     << stroke_width << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::AddSegment(const geom::Segment& s, const std::string& stroke,
                           double stroke_width) {
  std::ostringstream os;
  os << "<line x1=\"" << X(s.a.x) << "\" y1=\"" << Y(s.a.y) << "\" x2=\""
     << X(s.b.x) << "\" y2=\"" << Y(s.b.y) << "\" stroke=\"" << stroke
     << "\" stroke-width=\"" << stroke_width << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::AddPolygon(const geom::Polygon& poly,
                           const std::string& stroke,
                           const std::string& fill) {
  if (poly.empty()) return;
  std::ostringstream os;
  os << "<polygon points=\"";
  for (size_t i = 0; i < poly.size(); ++i) {
    if (i) os << " ";
    os << X(poly.vertices()[i].x) << "," << Y(poly.vertices()[i].y);
  }
  os << "\" fill=\"" << fill << "\" stroke=\"" << stroke << "\"/>";
  elements_.push_back(os.str());
}

void SvgWriter::AddLabel(const geom::Point& p, const std::string& text,
                         double font_px) {
  std::ostringstream os;
  os << "<text x=\"" << X(p.x) << "\" y=\"" << Y(p.y) << "\" font-size=\""
     << font_px << "\" font-family=\"sans-serif\">" << text << "</text>";
  elements_.push_back(os.str());
}

std::string SvgWriter::Finish() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_
     << "\" height=\"" << height_px_ << "\" viewBox=\"0 0 " << width_px_
     << " " << height_px_ << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const std::string& e : elements_) os << e << "\n";
  os << "</svg>\n";
  return os.str();
}

Status SvgWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string doc = Finish();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) return Status::IOError("short write " + path);
  return Status::OK();
}

Status SvgWriter::WriteFigure(const std::string& filename) const {
  return WriteFile(FigurePath(filename));
}

std::string FigurePath(const std::string& filename) {
  const char* env = std::getenv("PICTDB_FIGURE_DIR");
  const std::filesystem::path dir =
      env != nullptr && env[0] != '\0' ? env : "examples/figures";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open reports
  return (dir / filename).string();
}

}  // namespace pictdb::viz
