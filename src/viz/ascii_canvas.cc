#include "viz/ascii_canvas.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pictdb::viz {

AsciiCanvas::AsciiCanvas(const geom::Rect& frame, size_t cols, size_t rows)
    : frame_(frame), cols_(cols), rows_(rows) {
  PICTDB_CHECK(!frame.IsEmpty() && cols >= 2 && rows >= 2);
  grid_.assign(rows_, std::string(cols_, ' '));
}

bool AsciiCanvas::ToCell(const geom::Point& p, long* cx, long* cy) const {
  if (!frame_.Contains(p)) return false;
  const double fx = (p.x - frame_.lo.x) / std::max(frame_.Width(), 1e-12);
  const double fy = (p.y - frame_.lo.y) / std::max(frame_.Height(), 1e-12);
  *cx = std::min<long>(static_cast<long>(fx * static_cast<double>(cols_)),
                       static_cast<long>(cols_) - 1);
  // Row 0 is the top of the picture (max y).
  *cy = std::min<long>(static_cast<long>((1.0 - fy) * static_cast<double>(rows_)),
                       static_cast<long>(rows_) - 1);
  return true;
}

void AsciiCanvas::Put(long cx, long cy, char c) {
  if (cx < 0 || cy < 0 || cx >= static_cast<long>(cols_) ||
      cy >= static_cast<long>(rows_)) {
    return;
  }
  grid_[static_cast<size_t>(cy)][static_cast<size_t>(cx)] = c;
}

void AsciiCanvas::DrawPoint(const geom::Point& p, char marker) {
  long cx, cy;
  if (ToCell(p, &cx, &cy)) Put(cx, cy, marker);
}

void AsciiCanvas::DrawRect(const geom::Rect& r, char corner) {
  if (r.IsEmpty()) return;
  long x0, y0, x1, y1;
  // Clamp the rect into the frame first so partially visible rects draw.
  const geom::Rect clipped = geom::IntersectionOf(r, frame_);
  if (clipped.IsEmpty()) return;
  if (!ToCell(clipped.lo, &x0, &y0) || !ToCell(clipped.hi, &x1, &y1)) return;
  // ToCell flips y: lo -> bottom row (larger cy).
  std::swap(y0, y1);
  for (long x = x0; x <= x1; ++x) {
    Put(x, y0, '-');
    Put(x, y1, '-');
  }
  for (long y = y0; y <= y1; ++y) {
    Put(x0, y, '|');
    Put(x1, y, '|');
  }
  Put(x0, y0, corner);
  Put(x1, y0, corner);
  Put(x0, y1, corner);
  Put(x1, y1, corner);
}

void AsciiCanvas::DrawSegment(const geom::Segment& s, char marker) {
  long x0, y0, x1, y1;
  if (!ToCell(s.a, &x0, &y0) || !ToCell(s.b, &x1, &y1)) return;
  // Bresenham.
  const long dx = std::labs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  const long dy = -std::labs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  long err = dx + dy;
  long x = x0, y = y0;
  for (;;) {
    Put(x, y, marker);
    if (x == x1 && y == y1) break;
    const long e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y += sy;
    }
  }
}

void AsciiCanvas::DrawLabel(const geom::Point& p, const std::string& text) {
  long cx, cy;
  if (!ToCell(p, &cx, &cy)) return;
  for (size_t i = 0; i < text.size(); ++i) {
    Put(cx + static_cast<long>(i), cy, text[i]);
  }
}

std::string AsciiCanvas::Render() const {
  std::string out;
  out.reserve((cols_ + 1) * rows_);
  for (const std::string& row : grid_) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace pictdb::viz
