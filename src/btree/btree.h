#ifndef PICTDB_BTREE_BTREE_H_
#define PICTDB_BTREE_BTREE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace pictdb::btree {

/// Fixed-width order-preserving key. The first 16 bytes encode the user
/// key (int64 / double / truncated string); the last 8 bytes embed the Rid
/// so duplicate user keys remain unique index entries. memcmp order.
struct Key {
  std::array<unsigned char, 24> bytes{};

  int Compare(const Key& o) const {
    return std::memcmp(bytes.data(), o.bytes.data(), bytes.size());
  }
  friend bool operator<(const Key& a, const Key& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator==(const Key& a, const Key& b) {
    return a.Compare(b) == 0;
  }
};

/// Order-preserving encodings for the user-key prefix. Strings longer than
/// 16 bytes are truncated: entries with equal 16-byte prefixes become
/// adjacent and callers re-check the full value after the index probe.
class KeyEncoder {
 public:
  static Key FromInt64(int64_t v, const storage::Rid& rid);
  static Key FromDouble(double v, const storage::Rid& rid);
  static Key FromString(std::string_view s, const storage::Rid& rid);

  /// Range endpoints: same encodings with the Rid part saturated so the
  /// range [LowerBound(k), UpperBound(k)] spans every Rid for user key k.
  static Key Int64LowerBound(int64_t v);
  static Key Int64UpperBound(int64_t v);
  static Key DoubleLowerBound(double v);
  static Key DoubleUpperBound(double v);
  static Key StringLowerBound(std::string_view s);
  static Key StringUpperBound(std::string_view s);
};

class BTreeCursor;

/// Disk-resident B+-tree mapping Key -> Rid, the library's "usual way" of
/// indexing alphanumeric relation columns. Leaves are chained for range
/// scans. Single-threaded; splits/merges happen top-down per operation.
class BTree {
 public:
  /// Create an empty tree (allocates the root page).
  static StatusOr<BTree> Create(storage::BufferPool* pool);

  /// Reattach to an existing tree. `meta_page` is the id returned by
  /// meta_page() after Create.
  static BTree Open(storage::BufferPool* pool, storage::PageId meta_page);

  /// Insert an entry. Duplicate (key,rid) pairs are rejected.
  Status Insert(const Key& key, const storage::Rid& rid);

  /// Remove an entry; NotFound if absent.
  Status Delete(const Key& key);

  /// Exact lookup.
  StatusOr<storage::Rid> Get(const Key& key) const;

  /// All rids with lo <= key <= hi, in key order.
  StatusOr<std::vector<storage::Rid>> Scan(const Key& lo,
                                           const Key& hi) const;

  /// Total live entries.
  StatusOr<uint64_t> Count() const;

  /// Tree height (1 = root is a leaf).
  StatusOr<int> Height() const;

  /// Verify structural invariants (ordering, fill factors, leaf chain);
  /// returns Corruption on the first violation. For tests.
  Status Validate() const;

  storage::PageId meta_page() const { return meta_page_; }

 private:
  friend class BTreeCursor;

  BTree(storage::BufferPool* pool, storage::PageId meta_page)
      : pool_(pool), meta_page_(meta_page) {}

  struct SplitResult {
    bool split = false;
    Key separator;                // first key of the right node
    storage::PageId right_child = storage::kInvalidPageId;
  };

  StatusOr<storage::PageId> Root() const;
  Status SetRoot(storage::PageId root);

  StatusOr<SplitResult> InsertRec(storage::PageId node, const Key& key,
                                  const storage::Rid& rid);
  /// Returns true if the child at `node` is now underfull.
  StatusOr<bool> DeleteRec(storage::PageId node, const Key& key);
  Status ValidateRec(storage::PageId node, int depth, int leaf_depth_expected,
                     const Key* lo, const Key* hi, int* leaf_depth_seen,
                     bool is_root) const;

  storage::BufferPool* pool_;
  storage::PageId meta_page_;
};

}  // namespace pictdb::btree

#endif  // PICTDB_BTREE_BTREE_H_
