#ifndef PICTDB_BTREE_CURSOR_H_
#define PICTDB_BTREE_CURSOR_H_

#include <optional>

#include "btree/btree.h"

namespace pictdb::btree {

/// Streaming range scan over a B+-tree: walks the leaf chain from the
/// first key >= lo, yielding (key, rid) pairs until the key exceeds hi.
/// The tree must not be modified while the cursor is open.
class BTreeCursor {
 public:
  struct Item {
    Key key;
    storage::Rid rid;
  };

  /// Scan [lo, hi], both inclusive.
  BTreeCursor(const BTree* tree, const Key& lo, const Key& hi)
      : tree_(tree), lo_(lo), hi_(hi) {}

  /// Next entry in key order, or nullopt at the end of the range.
  StatusOr<std::optional<Item>> Next();

 private:
  const BTree* tree_;
  Key lo_;
  Key hi_;
  bool positioned_ = false;
  bool done_ = false;
  storage::PageId leaf_ = storage::kInvalidPageId;
  size_t pos_ = 0;
};

}  // namespace pictdb::btree

#endif  // PICTDB_BTREE_CURSOR_H_
