#include "btree/btree.h"

#include <algorithm>

#include "btree/cursor.h"
#include "common/logging.h"

namespace pictdb::btree {

using storage::BufferPool;
using storage::kInvalidPageId;
using storage::PageGuard;
using storage::PageId;
using storage::Rid;

namespace {

// ---------------------------------------------------------------------------
// On-page node layout.
//
//   header  : { uint8 is_leaf; uint8 pad; uint16 count; PageId next }
//   leaf    : entries of { Key (24B), Rid (8B: page,u16 slot,u16 pad) }
//   internal: entries of { Key (24B), PageId child (4B) }
//
// Internal nodes use the min-key convention: entry[i].key is the smallest
// key stored in the subtree of entry[i].child, so entry[0].key is the
// subtree minimum and separator maintenance is uniform.
// ---------------------------------------------------------------------------

constexpr size_t kHeaderSize = 8;
constexpr size_t kLeafEntrySize = 32;
constexpr size_t kInternalEntrySize = 28;

struct LeafEntry {
  Key key;
  Rid rid;
};

struct InternalEntry {
  Key key;
  PageId child;
};

bool IsLeaf(const char* page) { return page[0] != 0; }
void SetLeaf(char* page, bool leaf) { page[0] = leaf ? 1 : 0; }

uint16_t NodeCount(const char* page) {
  uint16_t c;
  std::memcpy(&c, page + 2, sizeof(c));
  return c;
}
void SetNodeCount(char* page, uint16_t c) { std::memcpy(page + 2, &c, sizeof(c)); }

PageId NextLeaf(const char* page) {
  PageId id;
  std::memcpy(&id, page + 4, sizeof(id));
  return id;
}
void SetNextLeaf(char* page, PageId id) {
  std::memcpy(page + 4, &id, sizeof(id));
}

size_t LeafCapacity(uint32_t page_size) {
  return (page_size - kHeaderSize) / kLeafEntrySize;
}
size_t InternalCapacity(uint32_t page_size) {
  return (page_size - kHeaderSize) / kInternalEntrySize;
}

LeafEntry GetLeafEntry(const char* page, size_t i) {
  LeafEntry e;
  const char* p = page + kHeaderSize + i * kLeafEntrySize;
  std::memcpy(e.key.bytes.data(), p, 24);
  std::memcpy(&e.rid.page_id, p + 24, 4);
  std::memcpy(&e.rid.slot, p + 28, 2);
  return e;
}

void SetLeafEntry(char* page, size_t i, const LeafEntry& e) {
  char* p = page + kHeaderSize + i * kLeafEntrySize;
  std::memcpy(p, e.key.bytes.data(), 24);
  std::memcpy(p + 24, &e.rid.page_id, 4);
  std::memcpy(p + 28, &e.rid.slot, 2);
  std::memset(p + 30, 0, 2);
}

InternalEntry GetInternalEntry(const char* page, size_t i) {
  InternalEntry e;
  const char* p = page + kHeaderSize + i * kInternalEntrySize;
  std::memcpy(e.key.bytes.data(), p, 24);
  std::memcpy(&e.child, p + 24, 4);
  return e;
}

void SetInternalEntry(char* page, size_t i, const InternalEntry& e) {
  char* p = page + kHeaderSize + i * kInternalEntrySize;
  std::memcpy(p, e.key.bytes.data(), 24);
  std::memcpy(p + 24, &e.child, 4);
}

/// Shift entries [from, count) right by one (making room at `from`).
void ShiftRight(char* page, size_t from, size_t count, size_t entry_size) {
  char* base = page + kHeaderSize;
  std::memmove(base + (from + 1) * entry_size, base + from * entry_size,
               (count - from) * entry_size);
}

/// Shift entries [from+1, count) left by one (removing entry `from`).
void ShiftLeft(char* page, size_t from, size_t count, size_t entry_size) {
  char* base = page + kHeaderSize;
  std::memmove(base + from * entry_size, base + (from + 1) * entry_size,
               (count - from - 1) * entry_size);
}

/// Index of the first leaf entry with entry.key >= key.
size_t LeafLowerBound(const char* page, const Key& key) {
  size_t lo = 0, hi = NodeCount(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (GetLeafEntry(page, mid).key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child slot to descend into: the last entry with entry.key <= key, or 0.
size_t InternalChildIndex(const char* page, const Key& key) {
  size_t lo = 0, hi = NodeCount(page);
  // First entry with entry.key > key:
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (key < GetInternalEntry(page, mid).key) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

Key MinKeyOfNode(const char* page) {
  PICTDB_CHECK(NodeCount(page) > 0);
  if (IsLeaf(page)) return GetLeafEntry(page, 0).key;
  return GetInternalEntry(page, 0).key;
}

// Meta page layout: { PageId root }.
PageId MetaRoot(const char* page) {
  PageId id;
  std::memcpy(&id, page, sizeof(id));
  return id;
}
void SetMetaRoot(char* page, PageId id) {
  std::memcpy(page, &id, sizeof(id));
}

void EncodeRid(const Rid& rid, unsigned char* out8) {
  out8[0] = static_cast<unsigned char>(rid.page_id >> 24);
  out8[1] = static_cast<unsigned char>(rid.page_id >> 16);
  out8[2] = static_cast<unsigned char>(rid.page_id >> 8);
  out8[3] = static_cast<unsigned char>(rid.page_id);
  out8[4] = static_cast<unsigned char>(rid.slot >> 8);
  out8[5] = static_cast<unsigned char>(rid.slot);
  out8[6] = 0;
  out8[7] = 0;
}

void EncodeUint64BE(uint64_t v, unsigned char* out8) {
  for (int i = 7; i >= 0; --i) {
    out8[7 - i] = static_cast<unsigned char>(v >> (i * 8));
  }
}

Key MakeKey(const unsigned char prefix16[16], const Rid& rid) {
  Key k;
  std::memcpy(k.bytes.data(), prefix16, 16);
  EncodeRid(rid, k.bytes.data() + 16);
  return k;
}

Key MakeBoundKey(const unsigned char prefix16[16], unsigned char fill) {
  Key k;
  std::memcpy(k.bytes.data(), prefix16, 16);
  std::memset(k.bytes.data() + 16, fill, 8);
  return k;
}

void EncodeInt64Prefix(int64_t v, unsigned char out16[16]) {
  std::memset(out16, 0, 16);
  EncodeUint64BE(static_cast<uint64_t>(v) ^ 0x8000000000000000ULL, out16);
}

void EncodeDoublePrefix(double v, unsigned char out16[16]) {
  std::memset(out16, 0, 16);
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  // Order-preserving transform: positive doubles get the sign bit set;
  // negative doubles are bitwise complemented.
  if (bits & 0x8000000000000000ULL) {
    bits = ~bits;
  } else {
    bits |= 0x8000000000000000ULL;
  }
  EncodeUint64BE(bits, out16);
}

void EncodeStringPrefix(std::string_view s, unsigned char out16[16]) {
  std::memset(out16, 0, 16);
  std::memcpy(out16, s.data(), std::min<size_t>(s.size(), 16));
}

}  // namespace

Key KeyEncoder::FromInt64(int64_t v, const Rid& rid) {
  unsigned char p[16];
  EncodeInt64Prefix(v, p);
  return MakeKey(p, rid);
}
Key KeyEncoder::FromDouble(double v, const Rid& rid) {
  unsigned char p[16];
  EncodeDoublePrefix(v, p);
  return MakeKey(p, rid);
}
Key KeyEncoder::FromString(std::string_view s, const Rid& rid) {
  unsigned char p[16];
  EncodeStringPrefix(s, p);
  return MakeKey(p, rid);
}
Key KeyEncoder::Int64LowerBound(int64_t v) {
  unsigned char p[16];
  EncodeInt64Prefix(v, p);
  return MakeBoundKey(p, 0x00);
}
Key KeyEncoder::Int64UpperBound(int64_t v) {
  unsigned char p[16];
  EncodeInt64Prefix(v, p);
  return MakeBoundKey(p, 0xFF);
}
Key KeyEncoder::DoubleLowerBound(double v) {
  unsigned char p[16];
  EncodeDoublePrefix(v, p);
  return MakeBoundKey(p, 0x00);
}
Key KeyEncoder::DoubleUpperBound(double v) {
  unsigned char p[16];
  EncodeDoublePrefix(v, p);
  return MakeBoundKey(p, 0xFF);
}
Key KeyEncoder::StringLowerBound(std::string_view s) {
  unsigned char p[16];
  EncodeStringPrefix(s, p);
  return MakeBoundKey(p, 0x00);
}
Key KeyEncoder::StringUpperBound(std::string_view s) {
  unsigned char p[16];
  EncodeStringPrefix(s, p);
  return MakeBoundKey(p, 0xFF);
}

StatusOr<BTree> BTree::Create(BufferPool* pool) {
  PICTDB_CHECK(LeafCapacity(pool->page_size()) >= 3 &&
               InternalCapacity(pool->page_size()) >= 3)
      << "page too small for B+tree nodes";
  PICTDB_ASSIGN_OR_RETURN(PageGuard meta, pool->NewPage());
  PICTDB_ASSIGN_OR_RETURN(PageGuard root, pool->NewPage());
  SetLeaf(root.mutable_data(), true);
  SetNodeCount(root.mutable_data(), 0);
  SetNextLeaf(root.mutable_data(), kInvalidPageId);
  SetMetaRoot(meta.mutable_data(), root.id());
  return BTree(pool, meta.id());
}

BTree BTree::Open(BufferPool* pool, PageId meta_page) {
  return BTree(pool, meta_page);
}

StatusOr<PageId> BTree::Root() const {
  PICTDB_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  return MetaRoot(meta.data());
}

Status BTree::SetRoot(PageId root) {
  PICTDB_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  SetMetaRoot(meta.mutable_data(), root);
  return Status::OK();
}

StatusOr<BTree::SplitResult> BTree::InsertRec(PageId node, const Key& key,
                                              const Rid& rid) {
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
  const uint32_t ps = pool_->page_size();

  if (IsLeaf(guard.data())) {
    const size_t pos = LeafLowerBound(guard.data(), key);
    const uint16_t count = NodeCount(guard.data());
    if (pos < count && GetLeafEntry(guard.data(), pos).key == key) {
      return Status::AlreadyExists("duplicate B+tree entry");
    }
    if (count < LeafCapacity(ps)) {
      char* page = guard.mutable_data();
      ShiftRight(page, pos, count, kLeafEntrySize);
      SetLeafEntry(page, pos, LeafEntry{key, rid});
      SetNodeCount(page, static_cast<uint16_t>(count + 1));
      return SplitResult{};
    }

    // Full: split. Decode into memory first — the page cannot hold the
    // M+1 entries even transiently.
    std::vector<LeafEntry> entries;
    entries.reserve(count + 1u);
    for (size_t i = 0; i < count; ++i) {
      entries.push_back(GetLeafEntry(guard.data(), i));
    }
    entries.insert(entries.begin() + pos, LeafEntry{key, rid});

    const size_t total = entries.size();
    const size_t keep = total / 2;
    PICTDB_ASSIGN_OR_RETURN(PageGuard right, pool_->NewPage());
    char* rpage = right.mutable_data();
    char* page = guard.mutable_data();
    SetLeaf(rpage, true);
    for (size_t i = 0; i < keep; ++i) SetLeafEntry(page, i, entries[i]);
    for (size_t i = keep; i < total; ++i) {
      SetLeafEntry(rpage, i - keep, entries[i]);
    }
    SetNodeCount(rpage, static_cast<uint16_t>(total - keep));
    SetNodeCount(page, static_cast<uint16_t>(keep));
    SetNextLeaf(rpage, NextLeaf(page));
    SetNextLeaf(page, right.id());
    SplitResult result;
    result.split = true;
    result.separator = entries[keep].key;
    result.right_child = right.id();
    return result;
  }

  const size_t child_idx = InternalChildIndex(guard.data(), key);
  const InternalEntry child_entry = GetInternalEntry(guard.data(), child_idx);
  // Release the pin across the recursive call to keep pin depth at O(1)
  // rather than O(height); single-threaded so the page cannot change.
  guard.Release();
  PICTDB_ASSIGN_OR_RETURN(const SplitResult child_split,
                          InsertRec(child_entry.child, key, rid));

  PICTDB_ASSIGN_OR_RETURN(guard, pool_->FetchPage(node));
  char* page = guard.mutable_data();
  // Maintain the min-key convention when the new key is the new minimum.
  if (key < GetInternalEntry(page, 0).key) {
    InternalEntry e0 = GetInternalEntry(page, 0);
    e0.key = key;
    SetInternalEntry(page, 0, e0);
  }
  if (!child_split.split) return SplitResult{};

  const uint16_t count = NodeCount(page);
  const size_t pos = child_idx + 1;
  if (count < InternalCapacity(ps)) {
    ShiftRight(page, pos, count, kInternalEntrySize);
    SetInternalEntry(page, pos,
                     InternalEntry{child_split.separator,
                                   child_split.right_child});
    SetNodeCount(page, static_cast<uint16_t>(count + 1));
    return SplitResult{};
  }

  // Full internal node: split via an in-memory copy (see leaf path).
  std::vector<InternalEntry> entries;
  entries.reserve(count + 1u);
  for (size_t i = 0; i < count; ++i) {
    entries.push_back(GetInternalEntry(page, i));
  }
  entries.insert(
      entries.begin() + pos,
      InternalEntry{child_split.separator, child_split.right_child});

  const size_t total = entries.size();
  const size_t keep = total / 2;
  PICTDB_ASSIGN_OR_RETURN(PageGuard right, pool_->NewPage());
  char* rpage = right.mutable_data();
  SetLeaf(rpage, false);
  for (size_t i = 0; i < keep; ++i) SetInternalEntry(page, i, entries[i]);
  for (size_t i = keep; i < total; ++i) {
    SetInternalEntry(rpage, i - keep, entries[i]);
  }
  SetNodeCount(rpage, static_cast<uint16_t>(total - keep));
  SetNodeCount(page, static_cast<uint16_t>(keep));
  SplitResult result;
  result.split = true;
  result.separator = entries[keep].key;
  result.right_child = right.id();
  return result;
}

Status BTree::Insert(const Key& key, const Rid& rid) {
  PICTDB_ASSIGN_OR_RETURN(const PageId root, Root());
  PICTDB_ASSIGN_OR_RETURN(const SplitResult split, InsertRec(root, key, rid));
  if (!split.split) return Status::OK();

  // Grow the tree: a new root referencing the old root and its new sibling.
  Key left_min;
  {
    PICTDB_ASSIGN_OR_RETURN(PageGuard old_root, pool_->FetchPage(root));
    left_min = MinKeyOfNode(old_root.data());
  }
  PICTDB_ASSIGN_OR_RETURN(PageGuard new_root, pool_->NewPage());
  char* page = new_root.mutable_data();
  SetLeaf(page, false);
  SetInternalEntry(page, 0, InternalEntry{left_min, root});
  SetInternalEntry(page, 1, InternalEntry{split.separator, split.right_child});
  SetNodeCount(page, 2);
  return SetRoot(new_root.id());
}

StatusOr<storage::Rid> BTree::Get(const Key& key) const {
  PICTDB_ASSIGN_OR_RETURN(PageId node, Root());
  for (;;) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    if (IsLeaf(guard.data())) {
      const size_t pos = LeafLowerBound(guard.data(), key);
      if (pos < NodeCount(guard.data())) {
        const LeafEntry e = GetLeafEntry(guard.data(), pos);
        if (e.key == key) return e.rid;
      }
      return Status::NotFound("key not in B+tree");
    }
    node = GetInternalEntry(guard.data(),
                            InternalChildIndex(guard.data(), key))
               .child;
  }
}

StatusOr<std::vector<storage::Rid>> BTree::Scan(const Key& lo,
                                                const Key& hi) const {
  std::vector<Rid> out;
  PICTDB_ASSIGN_OR_RETURN(PageId node, Root());
  // Descend to the leaf that would hold `lo`.
  for (;;) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    if (IsLeaf(guard.data())) break;
    node = GetInternalEntry(guard.data(),
                            InternalChildIndex(guard.data(), lo))
               .child;
  }
  // Walk the leaf chain.
  while (node != kInvalidPageId) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    const uint16_t count = NodeCount(guard.data());
    for (size_t i = LeafLowerBound(guard.data(), lo); i < count; ++i) {
      const LeafEntry e = GetLeafEntry(guard.data(), i);
      if (hi < e.key) return out;
      out.push_back(e.rid);
    }
    node = NextLeaf(guard.data());
  }
  return out;
}

StatusOr<bool> BTree::DeleteRec(PageId node, const Key& key) {
  const uint32_t ps = pool_->page_size();
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));

  if (IsLeaf(guard.data())) {
    const size_t pos = LeafLowerBound(guard.data(), key);
    const uint16_t count = NodeCount(guard.data());
    if (pos >= count || !(GetLeafEntry(guard.data(), pos).key == key)) {
      return Status::NotFound("key not in B+tree");
    }
    char* page = guard.mutable_data();
    ShiftLeft(page, pos, count, kLeafEntrySize);
    SetNodeCount(page, static_cast<uint16_t>(count - 1));
    return (count - 1u) < LeafCapacity(ps) / 2;
  }

  const size_t child_idx = InternalChildIndex(guard.data(), key);
  const InternalEntry child_entry = GetInternalEntry(guard.data(), child_idx);
  guard.Release();
  PICTDB_ASSIGN_OR_RETURN(const bool child_underfull,
                          DeleteRec(child_entry.child, key));

  PICTDB_ASSIGN_OR_RETURN(guard, pool_->FetchPage(node));
  char* page = guard.mutable_data();

  // Refresh the separator (the child's minimum may have changed).
  {
    PICTDB_ASSIGN_OR_RETURN(PageGuard child, pool_->FetchPage(child_entry.child));
    if (NodeCount(child.data()) > 0) {
      InternalEntry e = GetInternalEntry(page, child_idx);
      e.key = MinKeyOfNode(child.data());
      SetInternalEntry(page, child_idx, e);
    }
  }
  if (!child_underfull) return false;

  const uint16_t count = NodeCount(page);
  PICTDB_CHECK(count >= 1);
  // Choose a sibling to borrow from or merge with (prefer left).
  const size_t left_idx = child_idx > 0 ? child_idx - 1 : child_idx;
  const size_t right_idx = left_idx + 1;
  if (right_idx >= count) {
    // Only child: nothing to rebalance against at this level.
    return count < InternalCapacity(ps) / 2;
  }
  const PageId left_id = GetInternalEntry(page, left_idx).child;
  const PageId right_id = GetInternalEntry(page, right_idx).child;

  PICTDB_ASSIGN_OR_RETURN(PageGuard left, pool_->FetchPage(left_id));
  PICTDB_ASSIGN_OR_RETURN(PageGuard right, pool_->FetchPage(right_id));
  char* lpage = left.mutable_data();
  char* rpage = right.mutable_data();
  const bool leaves = IsLeaf(lpage);
  const size_t entry_size = leaves ? kLeafEntrySize : kInternalEntrySize;
  const size_t cap = leaves ? LeafCapacity(ps) : InternalCapacity(ps);
  const size_t min_fill = cap / 2;
  const uint16_t lcount = NodeCount(lpage);
  const uint16_t rcount = NodeCount(rpage);

  auto copy_entry = [&](char* dst, size_t di, const char* src, size_t si) {
    std::memcpy(dst + kHeaderSize + di * entry_size,
                src + kHeaderSize + si * entry_size, entry_size);
  };

  if (lcount + rcount <= cap) {
    // Merge right into left.
    for (size_t i = 0; i < rcount; ++i) {
      copy_entry(lpage, lcount + i, rpage, i);
    }
    SetNodeCount(lpage, static_cast<uint16_t>(lcount + rcount));
    if (leaves) SetNextLeaf(lpage, NextLeaf(rpage));
    right.Release();
    PICTDB_RETURN_IF_ERROR(pool_->FreePage(right_id));
    ShiftLeft(page, right_idx, count, kInternalEntrySize);
    SetNodeCount(page, static_cast<uint16_t>(count - 1));
    // The left node may have been emptied by the deletion before
    // absorbing its sibling, so its separator must be recomputed.
    InternalEntry le = GetInternalEntry(page, left_idx);
    le.key = MinKeyOfNode(lpage);
    SetInternalEntry(page, left_idx, le);
    return (count - 1u) < InternalCapacity(ps) / 2;
  }

  // Borrow: move one entry across the boundary toward the underfull side.
  if (lcount < min_fill) {
    // Move right's first entry to left's end.
    copy_entry(lpage, lcount, rpage, 0);
    SetNodeCount(lpage, static_cast<uint16_t>(lcount + 1));
    ShiftLeft(rpage, 0, rcount, entry_size);
    SetNodeCount(rpage, static_cast<uint16_t>(rcount - 1));
  } else {
    // Move left's last entry to right's front.
    ShiftRight(rpage, 0, rcount, entry_size);
    copy_entry(rpage, 0, lpage, lcount - 1);
    SetNodeCount(rpage, static_cast<uint16_t>(rcount + 1));
    SetNodeCount(lpage, static_cast<uint16_t>(lcount - 1));
  }
  // Refresh both separators.
  InternalEntry le = GetInternalEntry(page, left_idx);
  le.key = MinKeyOfNode(lpage);
  SetInternalEntry(page, left_idx, le);
  InternalEntry re = GetInternalEntry(page, right_idx);
  re.key = MinKeyOfNode(rpage);
  SetInternalEntry(page, right_idx, re);
  return false;
}

Status BTree::Delete(const Key& key) {
  PICTDB_ASSIGN_OR_RETURN(const PageId root, Root());
  PICTDB_ASSIGN_OR_RETURN(const bool underfull, DeleteRec(root, key));
  (void)underfull;  // the root may be arbitrarily empty
  // Collapse the root while it is an internal node with a single child.
  for (;;) {
    PICTDB_ASSIGN_OR_RETURN(const PageId r, Root());
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(r));
    if (IsLeaf(guard.data()) || NodeCount(guard.data()) != 1) break;
    const PageId only_child = GetInternalEntry(guard.data(), 0).child;
    guard.Release();
    PICTDB_RETURN_IF_ERROR(pool_->FreePage(r));
    PICTDB_RETURN_IF_ERROR(SetRoot(only_child));
  }
  return Status::OK();
}

StatusOr<uint64_t> BTree::Count() const {
  // Walk to the leftmost leaf, then the chain.
  PICTDB_ASSIGN_OR_RETURN(PageId node, Root());
  for (;;) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    if (IsLeaf(guard.data())) break;
    node = GetInternalEntry(guard.data(), 0).child;
  }
  uint64_t n = 0;
  while (node != kInvalidPageId) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    n += NodeCount(guard.data());
    node = NextLeaf(guard.data());
  }
  return n;
}

StatusOr<int> BTree::Height() const {
  PICTDB_ASSIGN_OR_RETURN(PageId node, Root());
  int h = 1;
  for (;;) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    if (IsLeaf(guard.data())) return h;
    node = GetInternalEntry(guard.data(), 0).child;
    ++h;
  }
}

Status BTree::ValidateRec(PageId node, int depth, int leaf_depth_expected,
                          const Key* lo, const Key* hi, int* leaf_depth_seen,
                          bool is_root) const {
  PICTDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
  const uint32_t ps = pool_->page_size();
  const uint16_t count = NodeCount(guard.data());
  const bool leaf = IsLeaf(guard.data());

  if (leaf) {
    if (*leaf_depth_seen == -1) {
      *leaf_depth_seen = depth;
    } else if (*leaf_depth_seen != depth) {
      return Status::Corruption("leaves at different depths");
    }
    if (leaf_depth_expected >= 0 && depth != leaf_depth_expected) {
      return Status::Corruption("leaf depth mismatch");
    }
  }

  if (!is_root) {
    const size_t cap = leaf ? LeafCapacity(ps) : InternalCapacity(ps);
    if (count > cap) return Status::Corruption("node overfull");
  }
  if (!leaf && count == 0) return Status::Corruption("empty internal node");

  Key prev;
  bool have_prev = false;
  for (size_t i = 0; i < count; ++i) {
    const Key k = leaf ? GetLeafEntry(guard.data(), i).key
                       : GetInternalEntry(guard.data(), i).key;
    if (have_prev && !(prev < k)) {
      return Status::Corruption("keys out of order");
    }
    if (lo != nullptr && k < *lo) return Status::Corruption("key below bound");
    if (hi != nullptr && *hi < k) return Status::Corruption("key above bound");
    prev = k;
    have_prev = true;
  }

  if (!leaf) {
    for (size_t i = 0; i < count; ++i) {
      const InternalEntry e = GetInternalEntry(guard.data(), i);
      const Key child_lo = e.key;
      Key child_hi;
      const Key* child_hi_ptr = hi;
      if (i + 1 < count) {
        child_hi = GetInternalEntry(guard.data(), i + 1).key;
        child_hi_ptr = &child_hi;
      }
      // Child minimum must equal the separator.
      {
        PICTDB_ASSIGN_OR_RETURN(PageGuard child, pool_->FetchPage(e.child));
        if (NodeCount(child.data()) > 0 &&
            !(MinKeyOfNode(child.data()) == e.key)) {
          return Status::Corruption("separator != child minimum");
        }
      }
      PICTDB_RETURN_IF_ERROR(ValidateRec(e.child, depth + 1,
                                         leaf_depth_expected, &child_lo,
                                         child_hi_ptr, leaf_depth_seen,
                                         /*is_root=*/false));
    }
  }
  return Status::OK();
}

Status BTree::Validate() const {
  PICTDB_ASSIGN_OR_RETURN(const PageId root, Root());
  int leaf_depth_seen = -1;
  return ValidateRec(root, 0, -1, nullptr, nullptr, &leaf_depth_seen,
                     /*is_root=*/true);
}

// --- BTreeCursor (defined here for access to the page-layout helpers) ----

StatusOr<std::optional<BTreeCursor::Item>> BTreeCursor::Next() {
  if (done_) return std::optional<Item>();

  if (!positioned_) {
    // Descend to the leaf that would hold lo_.
    PICTDB_ASSIGN_OR_RETURN(PageId node, tree_->Root());
    for (;;) {
      PICTDB_ASSIGN_OR_RETURN(PageGuard guard, tree_->pool_->FetchPage(node));
      if (IsLeaf(guard.data())) break;
      node = GetInternalEntry(guard.data(),
                              InternalChildIndex(guard.data(), lo_))
                 .child;
    }
    leaf_ = node;
    {
      PICTDB_ASSIGN_OR_RETURN(PageGuard guard,
                              tree_->pool_->FetchPage(leaf_));
      pos_ = LeafLowerBound(guard.data(), lo_);
    }
    positioned_ = true;
  }

  while (leaf_ != kInvalidPageId) {
    PICTDB_ASSIGN_OR_RETURN(PageGuard guard, tree_->pool_->FetchPage(leaf_));
    const uint16_t count = NodeCount(guard.data());
    if (pos_ < count) {
      const LeafEntry e = GetLeafEntry(guard.data(), pos_);
      if (hi_ < e.key) {
        done_ = true;
        return std::optional<Item>();
      }
      ++pos_;
      return std::optional<Item>(Item{e.key, e.rid});
    }
    leaf_ = NextLeaf(guard.data());
    pos_ = 0;
  }
  done_ = true;
  return std::optional<Item>();
}

}  // namespace pictdb::btree
