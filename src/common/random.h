#ifndef PICTDB_COMMON_RANDOM_H_
#define PICTDB_COMMON_RANDOM_H_

#include <cstdint>

namespace pictdb {

/// Deterministic 64-bit PRNG (xoshiro256++ seeded via SplitMix64).
/// Every workload generator and benchmark takes an explicit seed so
/// experiments are reproducible bit-for-bit across runs and machines.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal (Box-Muller).
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pictdb

#endif  // PICTDB_COMMON_RANDOM_H_
