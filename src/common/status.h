#ifndef PICTDB_COMMON_STATUS_H_
#define PICTDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace pictdb {

/// Error categories used across the library. Mirrors the classic storage
/// engine idiom: library functions return a Status instead of throwing.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIOError = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kAlreadyExists = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  kDataLoss = 10,
  kDeadlineExceeded = 11,
};

/// Return-value error type. Cheap to copy in the OK case (no allocation);
/// error statuses carry a message.
///
/// [[nodiscard]]: ignoring a returned Status silently swallows the
/// error, so every call site must consume it — check it, propagate it,
/// or (rarely, e.g. teardown with nowhere to report) discard it
/// explicitly with a `(void)` cast and a comment saying why.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status DataLoss(std::string_view msg) {
    return Status(StatusCode::kDataLoss, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Category>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace pictdb

/// Propagate a non-OK status to the caller.
#define PICTDB_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::pictdb::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluate a StatusOr expression, assigning the value or returning the
/// error. Usage: PICTDB_ASSIGN_OR_RETURN(auto v, MakeThing());
#define PICTDB_ASSIGN_OR_RETURN(lhs, expr)           \
  PICTDB_ASSIGN_OR_RETURN_IMPL_(                     \
      PICTDB_STATUS_CONCAT_(_statusor_, __LINE__), lhs, expr)

#define PICTDB_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                  \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value();

#define PICTDB_STATUS_CONCAT_(a, b) PICTDB_STATUS_CONCAT_IMPL_(a, b)
#define PICTDB_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // PICTDB_COMMON_STATUS_H_
