#ifndef PICTDB_COMMON_SLICE_H_
#define PICTDB_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

#include "common/logging.h"

namespace pictdb {

/// Non-owning view over a byte buffer; the pointed-to storage must outlive
/// the Slice. Used for tuple payloads and page regions.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    PICTDB_DCHECK(i < size_);
    return data_[i];
  }

  /// Drop the first n bytes.
  void RemovePrefix(size_t n) {
    PICTDB_DCHECK(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ && std::memcmp(a.data_, b.data_, a.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace pictdb

#endif  // PICTDB_COMMON_SLICE_H_
