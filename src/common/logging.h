#ifndef PICTDB_COMMON_LOGGING_H_
#define PICTDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pictdb {
namespace internal_logging {

/// Collects a message via operator<< and aborts the process when
/// destroyed. Used only by the CHECK macros below; invariant violations in
/// a storage engine are not recoverable.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lets the CHECK macro terminate a streamed expression with a low
/// precedence operator so `PICTDB_CHECK(x) << "msg"` parses.
struct Voidify {
  void operator&(const FatalMessage&) {}
};

}  // namespace internal_logging
}  // namespace pictdb

/// Abort with a message if `cond` is false. Always on (release included):
/// these guard structural invariants whose violation means corruption.
/// Supports streaming extra context: PICTDB_CHECK(n > 0) << "n=" << n;
#define PICTDB_CHECK(cond)                                            \
  (cond) ? (void)0                                                    \
         : ::pictdb::internal_logging::Voidify() &                    \
               ::pictdb::internal_logging::FatalMessage(__FILE__,     \
                                                        __LINE__, #cond)

#define PICTDB_CHECK_OK(expr)                                       \
  do {                                                              \
    ::pictdb::Status _st = (expr);                                  \
    PICTDB_CHECK(_st.ok()) << _st.ToString();                       \
  } while (0)

#ifndef NDEBUG
#define PICTDB_DCHECK(cond) PICTDB_CHECK(cond)
#else
#define PICTDB_DCHECK(cond) PICTDB_CHECK(true)
#endif

namespace pictdb {
namespace internal_logging {

/// Collects a message via operator<< and emits it to stderr when
/// destroyed. Unlike FatalMessage this does not abort: it reports
/// recoverable anomalies (double frees, leaked pins, injected faults)
/// that the caller handles by returning early or degrading.
class WarnMessage {
 public:
  WarnMessage(const char* file, int line) {
    stream_ << file << ":" << line << " WARNING: ";
  }

  WarnMessage(const WarnMessage&) = delete;
  WarnMessage& operator=(const WarnMessage&) = delete;

  ~WarnMessage() { std::cerr << stream_.str() << std::endl; }

  template <typename T>
  WarnMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace pictdb

/// Non-fatal log line: PICTDB_LOG_WARN() << "freed page " << id << " twice";
#define PICTDB_LOG_WARN() \
  ::pictdb::internal_logging::WarnMessage(__FILE__, __LINE__)

#endif  // PICTDB_COMMON_LOGGING_H_
