#ifndef PICTDB_COMMON_STATUS_OR_H_
#define PICTDB_COMMON_STATUS_OR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace pictdb {

/// Holds either a value of type T or an error Status. Accessing the value
/// of an error StatusOr aborts (library code should check ok() first or use
/// PICTDB_ASSIGN_OR_RETURN).
///
/// [[nodiscard]] for the same reason as Status: a dropped StatusOr is a
/// dropped error (and a dropped value).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return value;` or `return Status::NotFound(...);` naturally.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    PICTDB_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    PICTDB_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PICTDB_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T value() && {
    PICTDB_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

}  // namespace pictdb

#endif  // PICTDB_COMMON_STATUS_OR_H_
