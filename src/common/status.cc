#include "common/status.h"

namespace pictdb {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pictdb
