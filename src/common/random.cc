#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace pictdb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = RotL(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  PICTDB_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace pictdb
