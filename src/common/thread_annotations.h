#ifndef PICTDB_COMMON_THREAD_ANNOTATIONS_H_
#define PICTDB_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations.
///
/// These macros expand to clang's `thread_safety` attributes when the
/// compiler supports them (clang with -Wthread-safety) and to nothing
/// everywhere else (GCC, MSVC), so annotated code stays portable. The
/// analysis is purely static: annotating a field with GUARDED_BY(mu)
/// makes every unlocked access a compile error under
/// `clang++ -Wthread-safety -Werror`, turning lock-discipline bugs into
/// build breaks instead of TSan lottery tickets.
///
/// The annotations only fire on types declared as capabilities, which
/// is why the project wraps std::mutex in pictdb::Mutex (see
/// common/mutex.h) — libstdc++'s std::mutex carries no annotations.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#define PICTDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PICTDB_THREAD_ANNOTATION_(x)  // no-op on non-clang compilers
#endif

/// Declares a class to be a capability (lockable) type.
#define CAPABILITY(x) PICTDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY PICTDB_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated field may only be accessed while holding the given
/// capability.
#define GUARDED_BY(x) PICTDB_THREAD_ANNOTATION_(guarded_by(x))

/// The pointee of the annotated pointer may only be accessed while
/// holding the given capability.
#define PT_GUARDED_BY(x) PICTDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Callers must hold the given capability (exclusively) when calling
/// the annotated function; the function neither acquires nor releases
/// it.
#define REQUIRES(...) \
  PICTDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// As REQUIRES, but shared (reader) access suffices.
#define REQUIRES_SHARED(...) \
  PICTDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on
/// return; callers must not already hold it.
#define ACQUIRE(...) \
  PICTDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// As ACQUIRE, for shared (reader) acquisition.
#define ACQUIRE_SHARED(...) \
  PICTDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the capability, which callers must
/// hold on entry.
#define RELEASE(...) \
  PICTDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// As RELEASE, for shared (reader) release.
#define RELEASE_SHARED(...) \
  PICTDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The annotated function releases a capability held either exclusively
/// or shared.
#define RELEASE_GENERIC(...) \
  PICTDB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The annotated function attempts to acquire the capability, returning
/// the given value on success.
#define TRY_ACQUIRE(...) \
  PICTDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Callers must NOT hold the given capability (deadlock prevention for
/// non-reentrant locks).
#define EXCLUDES(...) PICTDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume so from here on.
#define ASSERT_CAPABILITY(x) \
  PICTDB_THREAD_ANNOTATION_(assert_capability(x))

/// The annotated function returns a reference to the given capability
/// (used by accessors that expose a mutex).
#define RETURN_CAPABILITY(x) PICTDB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis inside the annotated function.
/// Every use must carry a comment justifying why the analysis cannot
/// see the invariant (see DESIGN.md §10 for the suppression policy).
#define NO_THREAD_SAFETY_ANALYSIS \
  PICTDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PICTDB_COMMON_THREAD_ANNOTATIONS_H_
