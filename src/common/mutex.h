#ifndef PICTDB_COMMON_MUTEX_H_
#define PICTDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace pictdb {

/// Annotated wrapper around std::mutex. The project uses this (not the
/// bare standard type) for every lock so that clang's thread safety
/// analysis can check lock discipline at compile time: std::mutex from
/// libstdc++ carries no capability annotations, so GUARDED_BY against
/// it would be inert. The wrapper is zero-overhead — every method is a
/// forwarding inline call.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// For CondVar only: the annotated layer never touches the raw mutex.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated wrapper around std::shared_mutex (reader/writer lock).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard analogue the
/// analysis understands).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to pictdb::Mutex. Wait() takes the wrapper
/// so call sites keep their REQUIRES obligations visible to the
/// analysis; internally it adopts the already-held std::mutex for the
/// duration of the wait and releases ownership back on wake (the
/// classic port-layer adopt/release dance).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks until notified, reacquires *mu.
  /// Spurious wakeups happen: always wait in a predicate loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->native_handle(),
                                      std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still logically holds *mu
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pictdb

#endif  // PICTDB_COMMON_MUTEX_H_
