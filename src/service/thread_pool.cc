#include "service/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace pictdb::service {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(1, queue_capacity)) {
  PICTDB_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::InvalidArgument("thread pool is shut down");
    }
    if (queue_.size() >= queue_capacity_) {
      return Status::ResourceExhausted("submission queue full (" +
                                       std::to_string(queue_capacity_) +
                                       " tasks)");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutting_down_ = true;
  work_cv_.notify_all();
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (joined_) return;
  joined_ = true;
  lock.unlock();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace pictdb::service
