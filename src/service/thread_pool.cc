#include "service/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace pictdb::service {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(1, queue_capacity)) {
  PICTDB_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::TrySubmit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (shutting_down_) {
      return Status::InvalidArgument("thread pool is shut down");
    }
    if (queue_.size() >= queue_capacity_) {
      return Status::ResourceExhausted("submission queue full (" +
                                       std::to_string(queue_capacity_) +
                                       " tasks)");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  mu_.Lock();
  shutting_down_ = true;
  work_cv_.NotifyAll();
  while (!queue_.empty() || active_ != 0) {
    drain_cv_.Wait(&mu_);
  }
  if (joined_) {
    mu_.Unlock();
    return;
  }
  joined_ = true;
  mu_.Unlock();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) {
        work_cv_.Wait(&mu_);
      }
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) drain_cv_.NotifyAll();
    }
  }
}

}  // namespace pictdb::service
