#include "service/metrics.h"

#include <cstdio>

namespace pictdb::service {

std::string HistogramSnapshot::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%llu p95=%llu p99=%llu max=%llu n=%llu",
                static_cast<unsigned long long>(ValueAtQuantile(0.50)),
                static_cast<unsigned long long>(ValueAtQuantile(0.95)),
                static_cast<unsigned long long>(ValueAtQuantile(0.99)),
                static_cast<unsigned long long>(max),
                static_cast<unsigned long long>(count()));
  return buf;
}

}  // namespace pictdb::service
