#ifndef PICTDB_SERVICE_METRICS_H_
#define PICTDB_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pictdb::service {

/// Query variants the service distinguishes for per-variant accounting.
/// Order matches the std::variant alternatives of service::Query
/// (query_service.h static_asserts the correspondence).
inline constexpr size_t kQueryVariants = 6;
inline constexpr const char* kQueryVariantNames[kQueryVariants] = {
    "window", "point", "knn", "join", "psql", "batch"};

/// Plain-value image of a LatencyHistogram: copyable, mergeable,
/// serializable. Buckets are log-linear (HdrHistogram-style): values
/// 0..7 are exact, then 8 sub-buckets per power of two, so the relative
/// quantization error is bounded by 12.5% at any magnitude. The last
/// bucket absorbs everything past ~2^35 (an hours-long latency is an
/// outage, not a measurement).
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 256;

  std::array<uint64_t, kBuckets> counts{};
  uint64_t sum = 0;
  uint64_t max = 0;

  /// Bucket index for a recorded value (shared with LatencyHistogram).
  static size_t BucketIndex(uint64_t v) {
    if (v < 8) return static_cast<size_t>(v);
    const int octave = std::bit_width(v) - 4;  // v >> octave is in [8,16)
    const size_t index =
        8 * static_cast<size_t>(octave) + static_cast<size_t>(v >> octave);
    return index < kBuckets ? index : kBuckets - 1;
  }

  /// Inclusive lower bound of bucket `i` (its reported representative).
  static uint64_t BucketLowerBound(size_t i) {
    if (i < 8) return i;
    const uint64_t octave = i / 8 - 1;
    return (i - 8 * octave) << octave;
  }

  uint64_t count() const {
    uint64_t n = 0;
    for (uint64_t c : counts) n += c;
    return n;
  }

  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum) / static_cast<double>(n);
  }

  /// Value at quantile q in [0,1] (lower bucket bound; q=1 returns the
  /// exact observed max). 0 when empty.
  uint64_t ValueAtQuantile(double q) const {
    const uint64_t n = count();
    if (n == 0) return 0;
    if (q >= 1.0) return max;
    if (q < 0.0) q = 0.0;
    // Rank of the q-th ordered sample, 1-based; ceil so q=0.5 of 2
    // samples picks the first.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
    if (rank < n) ++rank;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) return BucketLowerBound(i);
    }
    return max;
  }

  /// Pointwise sum: combine per-thread or per-replica histograms.
  void Merge(const HistogramSnapshot& other) {
    for (size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
    sum += other.sum;
    if (other.max > max) max = other.max;
  }

  /// "p50=12 p95=80 p99=200 max=512 n=1000" (values in recorded units).
  std::string Summary() const;
};

/// Thread-safe latency histogram: lock-free atomic buckets, recorded in
/// microseconds by convention. Snapshot() yields the plain struct above;
/// the server and the load generator both report through this type so
/// their percentile math is identical by construction.
class LatencyHistogram {
 public:
  void Record(uint64_t value) {
    counts_[HistogramSnapshot::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<uint64_t>, HistogramSnapshot::kBuckets> counts_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Plain-value service counters, safe to copy, compare, and serialize.
struct ServiceMetricsSnapshot {
  uint64_t submitted = 0;  // accepted into the queue
  uint64_t rejected = 0;   // refused by admission control
  uint64_t completed = 0;  // finished with an OK result
  uint64_t failed = 0;     // finished with an error status
  uint64_t total_latency_us = 0;
  uint64_t max_latency_us = 0;
  uint64_t total_nodes_visited = 0;
  uint64_t total_results = 0;
  uint64_t deadline_exceeded = 0;  // failures due to deadline/cancel
  uint64_t degraded = 0;           // completions with partial results
  /// Service latency (queue wait + execution, microseconds) per query
  /// variant, indexed per kQueryVariantNames. Failures are recorded too:
  /// a deadline expiry is latency the client observed.
  std::array<HistogramSnapshot, kQueryVariants> variant_latency{};

  /// All variants merged into one distribution.
  HistogramSnapshot TotalLatency() const {
    HistogramSnapshot total;
    for (const auto& h : variant_latency) total.Merge(h);
    return total;
  }

  uint64_t finished() const { return completed + failed; }
  double avg_latency_us() const {
    const uint64_t n = finished();
    return n == 0 ? 0.0
                  : static_cast<double>(total_latency_us) /
                        static_cast<double>(n);
  }
  double avg_nodes_visited() const {
    const uint64_t n = finished();
    return n == 0 ? 0.0
                  : static_cast<double>(total_nodes_visited) /
                        static_cast<double>(n);
  }
};

/// Lock-free aggregation of per-query accounting into a service-level
/// view. Workers record into atomics; Snapshot() produces the plain
/// struct above for reporting.
class ServiceMetrics {
 public:
  void RecordSubmitted() { Add(submitted_); }
  void RecordRejected() { Add(rejected_); }

  void RecordCompleted(size_t variant, uint64_t latency_us,
                       uint64_t nodes_visited, uint64_t results) {
    Add(completed_);
    total_latency_us_.fetch_add(latency_us, std::memory_order_relaxed);
    total_nodes_visited_.fetch_add(nodes_visited,
                                   std::memory_order_relaxed);
    total_results_.fetch_add(results, std::memory_order_relaxed);
    UpdateMax(latency_us);
    RecordVariantLatency(variant, latency_us);
  }

  void RecordFailed(size_t variant, uint64_t latency_us) {
    Add(failed_);
    total_latency_us_.fetch_add(latency_us, std::memory_order_relaxed);
    UpdateMax(latency_us);
    RecordVariantLatency(variant, latency_us);
  }

  /// The failure was a deadline expiry or cancellation (in addition to
  /// RecordFailed).
  void RecordDeadlineExceeded() { Add(deadline_exceeded_); }

  /// The completion skipped unreadable subtrees (in addition to
  /// RecordCompleted).
  void RecordDegraded() { Add(degraded_); }

  ServiceMetricsSnapshot Snapshot() const {
    ServiceMetricsSnapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.total_latency_us = total_latency_us_.load(std::memory_order_relaxed);
    s.max_latency_us = max_latency_us_.load(std::memory_order_relaxed);
    s.total_nodes_visited =
        total_nodes_visited_.load(std::memory_order_relaxed);
    s.total_results = total_results_.load(std::memory_order_relaxed);
    s.deadline_exceeded =
        deadline_exceeded_.load(std::memory_order_relaxed);
    s.degraded = degraded_.load(std::memory_order_relaxed);
    for (size_t v = 0; v < kQueryVariants; ++v) {
      s.variant_latency[v] = variant_latency_[v].Snapshot();
    }
    return s;
  }

 private:
  static void Add(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordVariantLatency(size_t variant, uint64_t latency_us) {
    if (variant < kQueryVariants) {
      variant_latency_[variant].Record(latency_us);
    }
  }

  void UpdateMax(uint64_t latency_us) {
    uint64_t prev = max_latency_us_.load(std::memory_order_relaxed);
    while (prev < latency_us &&
           !max_latency_us_.compare_exchange_weak(
               prev, latency_us, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> total_latency_us_{0};
  std::atomic<uint64_t> max_latency_us_{0};
  std::atomic<uint64_t> total_nodes_visited_{0};
  std::atomic<uint64_t> total_results_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> degraded_{0};
  std::array<LatencyHistogram, kQueryVariants> variant_latency_{};
};

/// Plain-value image of the write-path counters. Writes are accounted
/// separately from queries on purpose: the query-side snapshot (and its
/// wire encoding in StatsResponse) predates online mutation and stays
/// byte-compatible.
struct WriteMetricsSnapshot {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t updates = 0;
  /// Commit-path errors (log append/sync/apply); NotFound precondition
  /// misses are counted in `not_found`, not here.
  uint64_t failed = 0;
  uint64_t not_found = 0;
  /// Latency of successful commits (append + fsync + apply), in
  /// microseconds.
  HistogramSnapshot commit_latency;

  uint64_t committed() const { return inserts + deletes + updates; }
};

/// Lock-free write-path accounting, mirror of ServiceMetrics for the
/// mutation side.
class WriteMetrics {
 public:
  /// `kind` indexes the WriteOp variant order: insert, delete, update.
  void RecordCommitted(size_t kind, uint64_t latency_us) {
    switch (kind) {
      case 0: Add(inserts_); break;
      case 1: Add(deletes_); break;
      default: Add(updates_); break;
    }
    commit_latency_.Record(latency_us);
  }
  void RecordNotFound() { Add(not_found_); }
  void RecordFailed() { Add(failed_); }

  WriteMetricsSnapshot Snapshot() const {
    WriteMetricsSnapshot s;
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.deletes = deletes_.load(std::memory_order_relaxed);
    s.updates = updates_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.not_found = not_found_.load(std::memory_order_relaxed);
    s.commit_latency = commit_latency_.Snapshot();
    return s;
  }

 private:
  static void Add(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> not_found_{0};
  LatencyHistogram commit_latency_;
};

}  // namespace pictdb::service

#endif  // PICTDB_SERVICE_METRICS_H_
