#ifndef PICTDB_SERVICE_METRICS_H_
#define PICTDB_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>

namespace pictdb::service {

/// Plain-value service counters, safe to copy, compare, and serialize.
struct ServiceMetricsSnapshot {
  uint64_t submitted = 0;  // accepted into the queue
  uint64_t rejected = 0;   // refused by admission control
  uint64_t completed = 0;  // finished with an OK result
  uint64_t failed = 0;     // finished with an error status
  uint64_t total_latency_us = 0;
  uint64_t max_latency_us = 0;
  uint64_t total_nodes_visited = 0;
  uint64_t total_results = 0;
  uint64_t deadline_exceeded = 0;  // failures due to deadline/cancel
  uint64_t degraded = 0;           // completions with partial results

  uint64_t finished() const { return completed + failed; }
  double avg_latency_us() const {
    const uint64_t n = finished();
    return n == 0 ? 0.0
                  : static_cast<double>(total_latency_us) /
                        static_cast<double>(n);
  }
  double avg_nodes_visited() const {
    const uint64_t n = finished();
    return n == 0 ? 0.0
                  : static_cast<double>(total_nodes_visited) /
                        static_cast<double>(n);
  }
};

/// Lock-free aggregation of per-query accounting into a service-level
/// view. Workers record into atomics; Snapshot() produces the plain
/// struct above for reporting.
class ServiceMetrics {
 public:
  void RecordSubmitted() { Add(submitted_); }
  void RecordRejected() { Add(rejected_); }

  void RecordCompleted(uint64_t latency_us, uint64_t nodes_visited,
                       uint64_t results) {
    Add(completed_);
    total_latency_us_.fetch_add(latency_us, std::memory_order_relaxed);
    total_nodes_visited_.fetch_add(nodes_visited,
                                   std::memory_order_relaxed);
    total_results_.fetch_add(results, std::memory_order_relaxed);
    UpdateMax(latency_us);
  }

  void RecordFailed(uint64_t latency_us) {
    Add(failed_);
    total_latency_us_.fetch_add(latency_us, std::memory_order_relaxed);
    UpdateMax(latency_us);
  }

  /// The failure was a deadline expiry or cancellation (in addition to
  /// RecordFailed).
  void RecordDeadlineExceeded() { Add(deadline_exceeded_); }

  /// The completion skipped unreadable subtrees (in addition to
  /// RecordCompleted).
  void RecordDegraded() { Add(degraded_); }

  ServiceMetricsSnapshot Snapshot() const {
    ServiceMetricsSnapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.total_latency_us = total_latency_us_.load(std::memory_order_relaxed);
    s.max_latency_us = max_latency_us_.load(std::memory_order_relaxed);
    s.total_nodes_visited =
        total_nodes_visited_.load(std::memory_order_relaxed);
    s.total_results = total_results_.load(std::memory_order_relaxed);
    s.deadline_exceeded =
        deadline_exceeded_.load(std::memory_order_relaxed);
    s.degraded = degraded_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static void Add(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  void UpdateMax(uint64_t latency_us) {
    uint64_t prev = max_latency_us_.load(std::memory_order_relaxed);
    while (prev < latency_us &&
           !max_latency_us_.compare_exchange_weak(
               prev, latency_us, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> total_latency_us_{0};
  std::atomic<uint64_t> max_latency_us_{0};
  std::atomic<uint64_t> total_nodes_visited_{0};
  std::atomic<uint64_t> total_results_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> degraded_{0};
};

}  // namespace pictdb::service

#endif  // PICTDB_SERVICE_METRICS_H_
