#ifndef PICTDB_SERVICE_QUERY_SERVICE_H_
#define PICTDB_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status_or.h"
#include "psql/executor.h"
#include "rtree/join.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "service/metrics.h"
#include "service/thread_pool.h"
#include "storage/quarantine.h"

namespace pictdb::wal {
class DurableRTree;
}  // namespace pictdb::wal

namespace pictdb::service {

/// Window search over the shared tree: all leaf entries intersecting
/// `window`, or strictly contained in it (the paper's SEARCH) when
/// `contained_only` is set.
struct WindowQuery {
  geom::Rect window;
  bool contained_only = false;
};

/// The Table 1 query "is point (x,y) contained in the database?".
struct PointQuery {
  geom::Point point;
};

/// Branch-and-bound k nearest neighbours of `point`.
struct KnnQuery {
  geom::Point point;
  size_t k = 1;
};

/// Juxtaposition of the shared tree with another (immutable) tree; the
/// result is the number of intersecting leaf pairs.
struct JoinQuery {
  const rtree::RTree* other = nullptr;
};

/// A PSQL select mapping, evaluated through the shared executor.
struct PsqlQuery {
  std::string text;
};

/// Many window searches pushed through one shared tree descent
/// (RTree::SearchBatch): a node read near the root is paid once for
/// every window that reaches it instead of once per window. Each
/// window's hits are bit-identical (including order) to submitting it
/// as a WindowQuery.
struct BatchWindowQuery {
  std::vector<geom::Rect> windows;
  bool contained_only = false;
};

using Query = std::variant<WindowQuery, PointQuery, KnnQuery, JoinQuery,
                           PsqlQuery, BatchWindowQuery>;

// Per-variant metrics (kQueryVariantNames) index by std::variant order.
static_assert(std::variant_size_v<Query> == kQueryVariants,
              "kQueryVariantNames must track the Query alternatives");

// --- Write operations (require a bound wal::DurableRTree) --------------

struct InsertOp {
  geom::Rect mbr;
  storage::Rid rid;
};

struct DeleteOp {
  geom::Rect mbr;
  storage::Rid rid;
};

struct UpdateOp {
  geom::Rect old_mbr;
  storage::Rid old_rid;
  geom::Rect new_mbr;
  storage::Rid new_rid;
};

/// Alternative order is the WriteMetrics kind index (insert=0, delete=1,
/// update=2).
using WriteOp = std::variant<InsertOp, DeleteOp, UpdateOp>;

/// Outcome of one query. Which member is filled depends on the variant:
/// hits for window/point, neighbors for knn, join_pairs for join, table
/// for psql, batch for batch-window. `stats` and `latency_us` are
/// always populated.
struct QueryResult {
  std::vector<rtree::LeafHit> hits;
  std::vector<rtree::Neighbor> neighbors;
  uint64_t join_pairs = 0;
  std::optional<psql::ResultSet> table;
  /// Per-window results, batch[i] for windows[i] (batch queries only).
  std::vector<rtree::BatchHits> batch;
  rtree::SearchStats stats;
  uint64_t latency_us = 0;
  /// True when unreadable subtrees were skipped: the result is partial.
  bool degraded = false;
  /// How many subtrees were skipped (0 unless degraded).
  uint64_t skipped_subtrees = 0;
};

/// Per-query execution controls.
struct QueryOptions {
  /// Wall-clock budget measured from Submit(); 0 = no deadline. Expiry
  /// fails the query with Status::DeadlineExceeded.
  std::chrono::microseconds timeout{0};
  /// Skip unreadable/corrupt subtrees (quarantining their pages) and
  /// return partial results flagged `degraded` instead of failing.
  bool degraded_ok = false;
};

struct ServiceOptions {
  /// Worker threads executing queries.
  size_t num_threads = 4;
  /// Bound on queued (admitted but unstarted) queries; submissions
  /// beyond it are rejected with ResourceExhausted.
  size_t queue_capacity = 256;
};

/// Concurrent query service over one shared packed R-tree (and,
/// optionally, a PSQL executor over a shared catalog).
///
/// Concurrency model: with no writer bound the tree is immutable after
/// PACK, so N worker threads traverse it simultaneously through the
/// thread-safe buffer pool with no tree-level latching at all — the
/// pool's shard mutexes are the only locks on the read path. Binding a
/// wal::DurableRTree (BindWriter, before traffic starts) turns on the
/// online-mutation mode: write ops are serialized through the durable
/// tree's commit lock while queries keep running — each query then
/// brackets its traversal with an epoch guard (pages unlinked by a
/// concurrent restructuring are not reused until the reader leaves) and
/// node reads take the per-frame latches the mutator writes under.
/// Re-PACK of the served tree still requires quiescing the service.
///
/// Admission control: Submit() never blocks. When the bounded queue is
/// full the query is rejected immediately with ResourceExhausted so the
/// caller can shed or retry, instead of the queue growing without bound.
class QueryService {
 public:
  /// `tree` must outlive the service. `executor` may be null when no
  /// PSQL queries will be submitted; it must be used read-only for the
  /// service's lifetime.
  QueryService(const rtree::RTree* tree, const psql::Executor* executor,
               const ServiceOptions& options = {});

  /// Drains in-flight queries, then joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Asynchronous submission. An error here means the query was never
  /// admitted (queue full / shut down); errors during execution surface
  /// through the future instead. `options.timeout` starts counting now,
  /// so time spent queued eats into the budget.
  StatusOr<std::future<StatusOr<QueryResult>>> Submit(
      Query query, const QueryOptions& options = {});

  /// Callback-style submission for event-loop callers (the network
  /// server): on completion `done` runs on the worker thread that
  /// executed the query, after metrics are recorded. A non-OK return
  /// means the query was rejected at admission and `done` will never
  /// run. `done` must not block for long and must not submit
  /// synchronously back into the service from inside itself beyond the
  /// queue bound (it would be rejected, not deadlock).
  Status SubmitWithCallback(Query query, const QueryOptions& options,
                            std::function<void(StatusOr<QueryResult>)> done);

  /// Convenience: submit and wait. Admission errors are returned
  /// directly.
  StatusOr<QueryResult> RunSync(Query query,
                                const QueryOptions& options = {});

  // --- Write path ---------------------------------------------------------

  /// Enable logged mutations through `writer`, whose tree() must be the
  /// same tree this service was constructed over. Call once, before any
  /// traffic — queries start taking epoch guards from this point on.
  void BindWriter(wal::DurableRTree* writer) { writer_ = writer; }

  /// Run after every successfully committed write, on the committing
  /// thread (the network server wires result-cache invalidation here).
  /// Set before traffic starts, like BindWriter.
  void SetCommitHook(std::function<void()> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Execute one write synchronously on the calling thread (writes are
  /// serialized by the durable tree's commit lock regardless, so there
  /// is no parallelism to gain from queueing). NotSupported without a
  /// bound writer; NotFound when a delete/update precondition misses.
  Status ExecuteWrite(const WriteOp& op);

  /// Write-path variant of SubmitWithCallback: runs ExecuteWrite on a
  /// worker so event-loop callers never block on an fsync. Admission
  /// shares the same bounded queue as queries.
  Status SubmitWriteWithCallback(WriteOp op,
                                 std::function<void(Status)> done);

  /// Write-path counters (separate from Metrics(): the query snapshot's
  /// wire encoding predates writes and stays byte-compatible).
  WriteMetricsSnapshot write_metrics() const {
    return write_metrics_.Snapshot();
  }

  /// Cooperatively cancel every in-flight and queued query: each fails
  /// with DeadlineExceeded at its next per-node poll. Queries submitted
  /// afterwards also fail until ClearCancel().
  void CancelAll() { cancel_all_.store(true, std::memory_order_relaxed); }
  void ClearCancel() { cancel_all_.store(false, std::memory_order_relaxed); }

  /// Pages quarantined by degraded-mode queries (input to recovery via
  /// pack::ScrubAndRepack).
  storage::PageQuarantine* quarantine() { return &quarantine_; }

  /// Graceful shutdown: stop admitting, run every already-accepted
  /// query to completion, join the workers. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  /// Service-level aggregation of per-query accounting.
  ServiceMetricsSnapshot Metrics() const { return metrics_.Snapshot(); }

  /// Queries admitted but not yet started.
  size_t queue_depth() const { return pool_.queue_depth(); }

  const ServiceOptions& options() const { return options_; }

 private:
  StatusOr<QueryResult> Dispatch(const Query& query,
                                 const rtree::SearchOptions& search_options);

  const rtree::RTree* tree_;
  const psql::Executor* executor_;
  /// Non-null once BindWriter ran; enables ExecuteWrite and makes every
  /// query traversal epoch-guarded.
  wal::DurableRTree* writer_ = nullptr;
  std::function<void()> commit_hook_;
  ServiceOptions options_;
  ServiceMetrics metrics_;
  WriteMetrics write_metrics_;
  std::atomic<bool> cancel_all_{false};
  storage::PageQuarantine quarantine_;
  ThreadPool pool_;  // last member: workers die before the rest
};

}  // namespace pictdb::service

#endif  // PICTDB_SERVICE_QUERY_SERVICE_H_
