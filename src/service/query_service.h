#ifndef PICTDB_SERVICE_QUERY_SERVICE_H_
#define PICTDB_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status_or.h"
#include "psql/executor.h"
#include "rtree/join.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "service/metrics.h"
#include "service/thread_pool.h"
#include "storage/quarantine.h"

namespace pictdb::service {

/// Window search over the shared tree: all leaf entries intersecting
/// `window`, or strictly contained in it (the paper's SEARCH) when
/// `contained_only` is set.
struct WindowQuery {
  geom::Rect window;
  bool contained_only = false;
};

/// The Table 1 query "is point (x,y) contained in the database?".
struct PointQuery {
  geom::Point point;
};

/// Branch-and-bound k nearest neighbours of `point`.
struct KnnQuery {
  geom::Point point;
  size_t k = 1;
};

/// Juxtaposition of the shared tree with another (immutable) tree; the
/// result is the number of intersecting leaf pairs.
struct JoinQuery {
  const rtree::RTree* other = nullptr;
};

/// A PSQL select mapping, evaluated through the shared executor.
struct PsqlQuery {
  std::string text;
};

using Query =
    std::variant<WindowQuery, PointQuery, KnnQuery, JoinQuery, PsqlQuery>;

// Per-variant metrics (kQueryVariantNames) index by std::variant order.
static_assert(std::variant_size_v<Query> == kQueryVariants,
              "kQueryVariantNames must track the Query alternatives");

/// Outcome of one query. Which member is filled depends on the variant:
/// hits for window/point, neighbors for knn, join_pairs for join, table
/// for psql. `stats` and `latency_us` are always populated.
struct QueryResult {
  std::vector<rtree::LeafHit> hits;
  std::vector<rtree::Neighbor> neighbors;
  uint64_t join_pairs = 0;
  std::optional<psql::ResultSet> table;
  rtree::SearchStats stats;
  uint64_t latency_us = 0;
  /// True when unreadable subtrees were skipped: the result is partial.
  bool degraded = false;
  /// How many subtrees were skipped (0 unless degraded).
  uint64_t skipped_subtrees = 0;
};

/// Per-query execution controls.
struct QueryOptions {
  /// Wall-clock budget measured from Submit(); 0 = no deadline. Expiry
  /// fails the query with Status::DeadlineExceeded.
  std::chrono::microseconds timeout{0};
  /// Skip unreadable/corrupt subtrees (quarantining their pages) and
  /// return partial results flagged `degraded` instead of failing.
  bool degraded_ok = false;
};

struct ServiceOptions {
  /// Worker threads executing queries.
  size_t num_threads = 4;
  /// Bound on queued (admitted but unstarted) queries; submissions
  /// beyond it are rejected with ResourceExhausted.
  size_t queue_capacity = 256;
};

/// Concurrent query service over one shared packed R-tree (and,
/// optionally, a PSQL executor over a shared catalog).
///
/// Concurrency model: after PACK the tree is immutable, so N worker
/// threads traverse it simultaneously through the thread-safe buffer
/// pool with no tree-level latching at all — the pool's shard mutexes
/// are the only locks on the read path. The service must not run
/// concurrently with writers (Insert/Delete/re-PACK); quiesce it first.
///
/// Admission control: Submit() never blocks. When the bounded queue is
/// full the query is rejected immediately with ResourceExhausted so the
/// caller can shed or retry, instead of the queue growing without bound.
class QueryService {
 public:
  /// `tree` must outlive the service. `executor` may be null when no
  /// PSQL queries will be submitted; it must be used read-only for the
  /// service's lifetime.
  QueryService(const rtree::RTree* tree, const psql::Executor* executor,
               const ServiceOptions& options = {});

  /// Drains in-flight queries, then joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Asynchronous submission. An error here means the query was never
  /// admitted (queue full / shut down); errors during execution surface
  /// through the future instead. `options.timeout` starts counting now,
  /// so time spent queued eats into the budget.
  StatusOr<std::future<StatusOr<QueryResult>>> Submit(
      Query query, const QueryOptions& options = {});

  /// Callback-style submission for event-loop callers (the network
  /// server): on completion `done` runs on the worker thread that
  /// executed the query, after metrics are recorded. A non-OK return
  /// means the query was rejected at admission and `done` will never
  /// run. `done` must not block for long and must not submit
  /// synchronously back into the service from inside itself beyond the
  /// queue bound (it would be rejected, not deadlock).
  Status SubmitWithCallback(Query query, const QueryOptions& options,
                            std::function<void(StatusOr<QueryResult>)> done);

  /// Convenience: submit and wait. Admission errors are returned
  /// directly.
  StatusOr<QueryResult> RunSync(Query query,
                                const QueryOptions& options = {});

  /// Cooperatively cancel every in-flight and queued query: each fails
  /// with DeadlineExceeded at its next per-node poll. Queries submitted
  /// afterwards also fail until ClearCancel().
  void CancelAll() { cancel_all_.store(true, std::memory_order_relaxed); }
  void ClearCancel() { cancel_all_.store(false, std::memory_order_relaxed); }

  /// Pages quarantined by degraded-mode queries (input to recovery via
  /// pack::ScrubAndRepack).
  storage::PageQuarantine* quarantine() { return &quarantine_; }

  /// Graceful shutdown: stop admitting, run every already-accepted
  /// query to completion, join the workers. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  /// Service-level aggregation of per-query accounting.
  ServiceMetricsSnapshot Metrics() const { return metrics_.Snapshot(); }

  /// Queries admitted but not yet started.
  size_t queue_depth() const { return pool_.queue_depth(); }

  const ServiceOptions& options() const { return options_; }

 private:
  StatusOr<QueryResult> Dispatch(const Query& query,
                                 const rtree::SearchOptions& search_options);

  const rtree::RTree* tree_;
  const psql::Executor* executor_;
  ServiceOptions options_;
  ServiceMetrics metrics_;
  std::atomic<bool> cancel_all_{false};
  storage::PageQuarantine quarantine_;
  ThreadPool pool_;  // last member: workers die before the rest
};

}  // namespace pictdb::service

#endif  // PICTDB_SERVICE_QUERY_SERVICE_H_
