#include "service/query_service.h"

#include <chrono>
#include <memory>
#include <utility>

#include "storage/epoch.h"
#include "wal/durable_tree.h"

namespace pictdb::service {

namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

QueryService::QueryService(const rtree::RTree* tree,
                           const psql::Executor* executor,
                           const ServiceOptions& options)
    : tree_(tree),
      executor_(executor),
      options_(options),
      pool_(options.num_threads, options.queue_capacity) {}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

StatusOr<QueryResult> QueryService::Dispatch(
    const Query& query, const rtree::SearchOptions& search_options) {
  QueryResult result;
  if (const auto* w = std::get_if<WindowQuery>(&query)) {
    PICTDB_ASSIGN_OR_RETURN(
        result.hits,
        w->contained_only
            ? tree_->SearchContainedIn(w->window, &result.stats,
                                       search_options)
            : tree_->SearchIntersects(w->window, &result.stats,
                                      search_options));
  } else if (const auto* p = std::get_if<PointQuery>(&query)) {
    PICTDB_ASSIGN_OR_RETURN(
        result.hits,
        tree_->SearchPoint(p->point, &result.stats, search_options));
  } else if (const auto* k = std::get_if<KnnQuery>(&query)) {
    PICTDB_ASSIGN_OR_RETURN(
        result.neighbors,
        rtree::SearchNearest(*tree_, k->point, k->k, &result.stats,
                             search_options));
  } else if (const auto* j = std::get_if<JoinQuery>(&query)) {
    if (j->other == nullptr) {
      return Status::InvalidArgument("join query without a right tree");
    }
    rtree::JoinStats join_stats;
    uint64_t pairs = 0;
    PICTDB_RETURN_IF_ERROR(rtree::SpatialJoin(
        *tree_, *j->other,
        [&pairs](const rtree::LeafHit&, const rtree::LeafHit&) { ++pairs; },
        &join_stats, search_options));
    result.join_pairs = pairs;
    result.stats.nodes_visited = join_stats.nodes_visited;
    result.stats.entries_tested = join_stats.pairs_tested;
    result.stats.results = join_stats.results;
    result.stats.skipped_subtrees = join_stats.skipped_subtrees;
    result.stats.degraded = join_stats.degraded;
  } else if (const auto* b = std::get_if<BatchWindowQuery>(&query)) {
    PICTDB_ASSIGN_OR_RETURN(
        result.batch,
        tree_->SearchBatch(b->windows, b->contained_only, &result.stats,
                           search_options));
  } else if (const auto* q = std::get_if<PsqlQuery>(&query)) {
    if (executor_ == nullptr) {
      return Status::InvalidArgument(
          "service was built without a PSQL executor");
    }
    // The PSQL executor has no cooperative poll points yet, so the
    // deadline/cancel check happens only at dispatch.
    PICTDB_RETURN_IF_ERROR(search_options.CheckRunnable());
    PICTDB_ASSIGN_OR_RETURN(psql::ResultSet rs, executor_->Query(q->text));
    result.stats.nodes_visited = rs.stats.rtree_nodes_visited;
    result.stats.results = rs.stats.rows_emitted;
    result.table = std::move(rs);
  }
  result.degraded = result.stats.degraded;
  result.skipped_subtrees = result.stats.skipped_subtrees;
  return result;
}

Status QueryService::SubmitWithCallback(
    Query query, const QueryOptions& options,
    std::function<void(StatusOr<QueryResult>)> done) {
  // shared_ptr because std::function requires copyable callables.
  auto shared_query = std::make_shared<Query>(std::move(query));
  auto shared_done = std::make_shared<std::function<void(
      StatusOr<QueryResult>)>>(std::move(done));
  const size_t variant = shared_query->index();

  // The deadline anchors to submission, not execution start, so queue
  // wait eats into the budget (the caller's clock is what matters).
  rtree::SearchOptions search_options;
  if (options.timeout.count() > 0) {
    search_options.deadline = std::chrono::steady_clock::now() +
                              options.timeout;
  }
  search_options.cancel = &cancel_all_;
  search_options.degraded_ok = options.degraded_ok;
  search_options.quarantine = &quarantine_;

  const Status admitted = pool_.TrySubmit(
      [this, variant, shared_query, shared_done, search_options] {
        const auto start = std::chrono::steady_clock::now();
        // With a writer bound, pin the reclamation epoch for the whole
        // traversal: pages a concurrent mutation unlinks stay allocated
        // until this guard is released.
        storage::EpochGate::ReadGuard epoch_guard;
        if (writer_ != nullptr) epoch_guard = writer_->ReaderEpoch();
        StatusOr<QueryResult> outcome =
            Dispatch(*shared_query, search_options);
        epoch_guard.Release();
        const uint64_t latency_us = ElapsedMicros(start);
        if (outcome.ok()) {
          outcome.value().latency_us = latency_us;
          uint64_t results = outcome.value().stats.results;
          if (results == 0) {
            results = outcome.value().hits.size() +
                      outcome.value().neighbors.size() +
                      outcome.value().join_pairs;
          }
          metrics_.RecordCompleted(
              variant, latency_us, outcome.value().stats.nodes_visited,
              results);
          if (outcome.value().degraded) metrics_.RecordDegraded();
        } else {
          metrics_.RecordFailed(variant, latency_us);
          if (outcome.status().IsDeadlineExceeded()) {
            metrics_.RecordDeadlineExceeded();
          }
        }
        (*shared_done)(std::move(outcome));
      });
  if (!admitted.ok()) {
    metrics_.RecordRejected();
    return admitted;
  }
  metrics_.RecordSubmitted();
  return Status::OK();
}

StatusOr<std::future<StatusOr<QueryResult>>> QueryService::Submit(
    Query query, const QueryOptions& options) {
  auto promise = std::make_shared<std::promise<StatusOr<QueryResult>>>();
  std::future<StatusOr<QueryResult>> future = promise->get_future();
  PICTDB_RETURN_IF_ERROR(SubmitWithCallback(
      std::move(query), options, [promise](StatusOr<QueryResult> outcome) {
        promise->set_value(std::move(outcome));
      }));
  return future;
}

StatusOr<QueryResult> QueryService::RunSync(Query query,
                                            const QueryOptions& options) {
  PICTDB_ASSIGN_OR_RETURN(std::future<StatusOr<QueryResult>> future,
                          Submit(std::move(query), options));
  return future.get();
}

Status QueryService::ExecuteWrite(const WriteOp& op) {
  if (writer_ == nullptr) {
    return Status::NotSupported(
        "service has no writer bound (BindWriter a wal::DurableRTree)");
  }
  const auto start = std::chrono::steady_clock::now();
  const size_t kind = op.index();
  struct Visitor {
    wal::DurableRTree* writer;
    Status operator()(const InsertOp& w) {
      return writer->Insert(w.mbr, w.rid);
    }
    Status operator()(const DeleteOp& w) {
      return writer->Delete(w.mbr, w.rid);
    }
    Status operator()(const UpdateOp& w) {
      return writer->Update(w.old_mbr, w.old_rid, w.new_mbr, w.new_rid);
    }
  };
  const Status st = std::visit(Visitor{writer_}, op);
  const uint64_t latency_us = ElapsedMicros(start);
  if (st.ok()) {
    write_metrics_.RecordCommitted(kind, latency_us);
    if (commit_hook_) commit_hook_();
  } else if (st.IsNotFound()) {
    write_metrics_.RecordNotFound();
  } else {
    write_metrics_.RecordFailed();
  }
  return st;
}

Status QueryService::SubmitWriteWithCallback(
    WriteOp op, std::function<void(Status)> done) {
  if (writer_ == nullptr) {
    return Status::NotSupported(
        "service has no writer bound (BindWriter a wal::DurableRTree)");
  }
  auto shared_op = std::make_shared<WriteOp>(std::move(op));
  auto shared_done =
      std::make_shared<std::function<void(Status)>>(std::move(done));
  return pool_.TrySubmit([this, shared_op, shared_done] {
    (*shared_done)(ExecuteWrite(*shared_op));
  });
}

}  // namespace pictdb::service
