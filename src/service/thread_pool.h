#ifndef PICTDB_SERVICE_THREAD_POOL_H_
#define PICTDB_SERVICE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace pictdb::service {

/// Fixed-size worker pool with a bounded submission queue.
///
/// Admission control is explicit: TrySubmit never blocks and never grows
/// the queue past its bound — a full queue is reported as
/// ResourceExhausted so callers shed load instead of queueing without
/// limit. Shutdown is graceful: already-accepted tasks (queued and
/// in-flight) run to completion before the workers exit.
class ThreadPool {
 public:
  ThreadPool(size_t num_threads, size_t queue_capacity);

  /// Joins the workers after draining accepted tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue `task`. ResourceExhausted when the queue is at capacity;
  /// InvalidArgument after Shutdown.
  Status TrySubmit(std::function<void()> task) EXCLUDES(mu_);

  /// Stop accepting work, wait until the queue is empty and every
  /// in-flight task finished, then join the workers. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks accepted but not yet started (for metrics / tests).
  size_t queue_depth() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  const size_t queue_capacity_;
  mutable Mutex mu_;
  CondVar work_cv_;   // workers: queue non-empty or stop
  CondVar drain_cv_;  // Shutdown: queue empty and idle
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written only by ctor / Shutdown
  size_t active_ GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool shutting_down_ GUARDED_BY(mu_) = false;
  bool joined_ GUARDED_BY(mu_) = false;
};

}  // namespace pictdb::service

#endif  // PICTDB_SERVICE_THREAD_POOL_H_
