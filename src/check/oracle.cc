#include "check/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <sstream>
#include <tuple>

#include "common/random.h"
#include "service/query_service.h"
#include "workload/generators.h"

namespace pictdb::check {

using geom::Point;
using geom::Rect;
using rtree::Entry;
using rtree::LeafHit;
using rtree::Neighbor;

// --- Oracle -----------------------------------------------------------------

void Oracle::Insert(const Rect& mbr, const storage::Rid& rid) {
  Entry e;
  e.mbr = mbr;
  e.payload = Entry::PayloadFromRid(rid);
  entries_.push_back(e);
}

bool Oracle::Delete(const Rect& mbr, const storage::Rid& rid) {
  const uint64_t payload = Entry::PayloadFromRid(rid);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->payload == payload && it->mbr == mbr) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<LeafHit> Oracle::Intersects(const Rect& window) const {
  std::vector<LeafHit> out;
  for (const Entry& e : entries_) {
    if (e.mbr.Intersects(window)) out.push_back(LeafHit{e.mbr, e.AsRid()});
  }
  return out;
}

std::vector<LeafHit> Oracle::ContainedIn(const Rect& window) const {
  std::vector<LeafHit> out;
  for (const Entry& e : entries_) {
    if (window.Contains(e.mbr)) out.push_back(LeafHit{e.mbr, e.AsRid()});
  }
  return out;
}

std::vector<LeafHit> Oracle::AtPoint(const Point& p) const {
  std::vector<LeafHit> out;
  for (const Entry& e : entries_) {
    if (e.mbr.Contains(p)) out.push_back(LeafHit{e.mbr, e.AsRid()});
  }
  return out;
}

std::vector<Neighbor> Oracle::Nearest(const Point& p, size_t k) const {
  std::vector<Neighbor> all;
  all.reserve(entries_.size());
  for (const Entry& e : entries_) {
    all.push_back(
        Neighbor{LeafHit{e.mbr, e.AsRid()}, geom::MinDistance(e.mbr, p)});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });
  all.resize(take);
  return all;
}

uint64_t Oracle::CountJoinPairs(const Oracle& other) const {
  uint64_t pairs = 0;
  for (const Entry& a : entries_) {
    for (const Entry& b : other.entries_) {
      if (a.mbr.Intersects(b.mbr)) ++pairs;
    }
  }
  return pairs;
}

// --- Comparators ------------------------------------------------------------

namespace {

/// Canonical sortable image of one hit: rid plus exact MBR bits.
using HitKey = std::tuple<storage::PageId, uint16_t, double, double, double,
                          double>;

HitKey KeyOf(const LeafHit& h) {
  return HitKey{h.rid.page_id, h.rid.slot, h.mbr.lo.x, h.mbr.lo.y,
                h.mbr.hi.x, h.mbr.hi.y};
}

std::vector<HitKey> Canonical(const std::vector<LeafHit>& hits) {
  std::vector<HitKey> keys;
  keys.reserve(hits.size());
  for (const LeafHit& h : hits) keys.push_back(KeyOf(h));
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool SameDistance(double a, double b) {
  // Both sides compute geom::MinDistance with identical arithmetic, so
  // exact equality is the expected case; the epsilon only forgives
  // re-association inside partial_sort vs the heap traversal.
  return a == b || std::abs(a - b) <= 1e-9 * (1.0 + std::abs(b));
}

}  // namespace

DiffVerdict CompareHits(const std::vector<LeafHit>& got,
                        const std::vector<LeafHit>& want, bool degraded) {
  const std::vector<HitKey> g = Canonical(got);
  const std::vector<HitKey> w = Canonical(want);
  if (g == w) return DiffVerdict::kMatch;
  if (degraded && std::includes(w.begin(), w.end(), g.begin(), g.end())) {
    return DiffVerdict::kDegradedSubset;
  }
  return DiffVerdict::kWrongAnswer;
}

DiffVerdict CompareNeighbors(const std::vector<Neighbor>& got,
                             const Oracle& oracle, const Point& query,
                             size_t k, bool degraded) {
  const std::vector<Neighbor> want = oracle.Nearest(query, k);
  const bool exact_size = got.size() == want.size();
  bool exact = exact_size;
  if (exact) {
    for (size_t i = 0; i < got.size(); ++i) {
      if (!SameDistance(got[i].distance, want[i].distance)) {
        exact = false;
        break;
      }
    }
  }
  if (exact) return DiffVerdict::kMatch;
  if (!degraded) return DiffVerdict::kWrongAnswer;

  // Degraded: at most k results, sorted, and a subsequence of the full
  // distance ranking (every reported neighbour is a real entry at its
  // true rank distance — just possibly with closer ones missing).
  if (got.size() > k) return DiffVerdict::kWrongAnswer;
  const std::vector<Neighbor> full = oracle.Nearest(query, oracle.size());
  size_t j = 0;
  double prev = -1.0;
  for (const Neighbor& n : got) {
    if (n.distance < prev) return DiffVerdict::kWrongAnswer;
    prev = n.distance;
    while (j < full.size() && !SameDistance(full[j].distance, n.distance)) {
      ++j;
    }
    if (j == full.size()) return DiffVerdict::kWrongAnswer;
    ++j;
  }
  return DiffVerdict::kDegradedSubset;
}

// --- DiffRunner -------------------------------------------------------------

std::string DiffReport::Summary() const {
  std::ostringstream os;
  os << queries << " queries: " << matches << " match, " << degraded_subsets
     << " degraded-subset, " << wrong_answers << " wrong, " << failures
     << " failed";
  return os.str();
}

namespace {

enum class QueryKind { kWindow, kContained, kPoint, kKnn, kJoin, kPsql };

struct QueryDesc {
  QueryKind kind = QueryKind::kWindow;
  Rect window;
  Point point;
  size_t k = 1;
  std::string psql_text;
};

std::vector<storage::Rid> RowRids(const psql::ResultSet& rs) {
  std::vector<storage::Rid> rids;
  rids.reserve(rs.row_rids.size());
  for (const auto& per_row : rs.row_rids) {
    if (!per_row.empty()) rids.push_back(per_row.front());
  }
  return rids;
}

DiffVerdict ComparePsqlRids(std::vector<storage::Rid> got,
                            const std::vector<LeafHit>& want) {
  std::vector<std::pair<storage::PageId, uint16_t>> g, w;
  g.reserve(got.size());
  for (const auto& r : got) g.emplace_back(r.page_id, r.slot);
  w.reserve(want.size());
  for (const auto& h : want) w.emplace_back(h.rid.page_id, h.rid.slot);
  std::sort(g.begin(), g.end());
  std::sort(w.begin(), w.end());
  return g == w ? DiffVerdict::kMatch : DiffVerdict::kWrongAnswer;
}

}  // namespace

StatusOr<DiffReport> DiffRunner::Run(const DiffConfig& config) const {
  DiffReport report;
  Random rng(config.seed);
  const Rect frame =
      config.frame.IsEmpty() ? workload::PaperFrame() : config.frame;
  const Rect psql_frame = psql_frame_.IsEmpty() ? frame : psql_frame_;

  // Normalized cumulative weights; unbound kinds get zero.
  double w_join = join_tree_ != nullptr ? config.w_join : 0.0;
  double w_psql = executor_ != nullptr ? config.w_psql : 0.0;
  const double total = config.w_window + config.w_contained + config.w_point +
                       config.w_knn + w_join + w_psql;
  if (total <= 0.0) {
    return Status::InvalidArgument("diff config enables no query kind");
  }

  auto draw_kind = [&]() {
    double r = rng.NextDouble() * total;
    if ((r -= config.w_window) < 0) return QueryKind::kWindow;
    if ((r -= config.w_contained) < 0) return QueryKind::kContained;
    if ((r -= config.w_point) < 0) return QueryKind::kPoint;
    if ((r -= config.w_knn) < 0) return QueryKind::kKnn;
    if ((r -= w_join) < 0) return QueryKind::kJoin;
    return QueryKind::kPsql;
  };
  auto draw_window = [&](const Rect& in) {
    const double cx = rng.UniformDouble(in.lo.x, in.hi.x);
    const double cy = rng.UniformDouble(in.lo.y, in.hi.y);
    const double dx =
        rng.UniformDouble(config.min_half_extent, config.max_half_extent);
    const double dy =
        rng.UniformDouble(config.min_half_extent, config.max_half_extent);
    return Rect::FromCenterHalfExtent(cx, dx, cy, dy);
  };

  std::vector<QueryDesc> batch;
  batch.reserve(config.queries);
  for (size_t i = 0; i < config.queries; ++i) {
    QueryDesc q;
    q.kind = draw_kind();
    switch (q.kind) {
      case QueryKind::kWindow:
      case QueryKind::kContained:
        q.window = draw_window(frame);
        break;
      case QueryKind::kPoint:
        q.point = Point{rng.UniformDouble(frame.lo.x, frame.hi.x),
                        rng.UniformDouble(frame.lo.y, frame.hi.y)};
        break;
      case QueryKind::kKnn:
        q.point = Point{rng.UniformDouble(frame.lo.x, frame.hi.x),
                        rng.UniformDouble(frame.lo.y, frame.hi.y)};
        q.k = 1 + rng.Uniform(config.max_k);
        break;
      case QueryKind::kJoin:
        break;
      case QueryKind::kPsql: {
        // Integer centers/extents so the rendered text round-trips
        // exactly through the PSQL lexer.
        const long cx = std::lround(
            rng.UniformDouble(psql_frame.lo.x + 1, psql_frame.hi.x - 1));
        const long cy = std::lround(
            rng.UniformDouble(psql_frame.lo.y + 1, psql_frame.hi.y - 1));
        const long dx = 1 + static_cast<long>(rng.Uniform(8));
        const long dy = 1 + static_cast<long>(rng.Uniform(8));
        q.window = Rect::FromCenterHalfExtent(
            static_cast<double>(cx), static_cast<double>(dx),
            static_cast<double>(cy), static_cast<double>(dy));
        char text[256];
        std::snprintf(text, sizeof(text),
                      "select %s from %s on %s at %s covered-by "
                      "{%ld +- %ld, %ld +- %ld}",
                      psql_attr_.c_str(), psql_relation_.c_str(),
                      psql_map_.c_str(), psql_attr_.c_str(), cx, dx, cy, dy);
        q.psql_text = text;
        break;
      }
    }
    batch.push_back(std::move(q));
  }

  auto record_mismatch = [&](size_t index, const std::string& what) {
    if (report.mismatches.size() < 16) {
      report.mismatches.push_back(DiffMismatch{index, what});
    }
  };

  auto classify = [&](size_t index, const QueryDesc& q,
                      const std::vector<LeafHit>& hits,
                      const std::vector<Neighbor>& neighbors,
                      uint64_t join_pairs, const psql::ResultSet* table,
                      bool degraded) {
    DiffVerdict verdict = DiffVerdict::kWrongAnswer;
    switch (q.kind) {
      case QueryKind::kWindow:
        verdict = CompareHits(hits, oracle_->Intersects(q.window), degraded);
        break;
      case QueryKind::kContained:
        verdict = CompareHits(hits, oracle_->ContainedIn(q.window), degraded);
        break;
      case QueryKind::kPoint:
        verdict = CompareHits(hits, oracle_->AtPoint(q.point), degraded);
        break;
      case QueryKind::kKnn:
        verdict = CompareNeighbors(neighbors, *oracle_, q.point, q.k,
                                   degraded);
        break;
      case QueryKind::kJoin: {
        const uint64_t want = join_oracle_ != nullptr
                                  ? oracle_->CountJoinPairs(*join_oracle_)
                                  : 0;
        if (join_pairs == want) {
          verdict = DiffVerdict::kMatch;
        } else if (degraded && join_pairs < want) {
          verdict = DiffVerdict::kDegradedSubset;
        }
        break;
      }
      case QueryKind::kPsql:
        verdict = table != nullptr
                      ? ComparePsqlRids(RowRids(*table),
                                        psql_oracle_->ContainedIn(q.window))
                      : DiffVerdict::kWrongAnswer;
        break;
    }
    switch (verdict) {
      case DiffVerdict::kMatch:
        ++report.matches;
        break;
      case DiffVerdict::kDegradedSubset:
        ++report.degraded_subsets;
        break;
      case DiffVerdict::kWrongAnswer:
        ++report.wrong_answers;
        record_mismatch(index, "result diverges from oracle");
        break;
    }
  };

  report.queries = batch.size();

  if (config.use_service) {
    service::ServiceOptions sopts;
    sopts.num_threads = config.service_threads;
    sopts.queue_capacity = batch.size() + 1;
    service::QueryService svc(tree_, executor_, sopts);
    service::QueryOptions qopts;
    qopts.degraded_ok = config.degraded_ok;

    std::vector<std::future<StatusOr<service::QueryResult>>> futures;
    futures.reserve(batch.size());
    for (const QueryDesc& q : batch) {
      service::Query query;
      switch (q.kind) {
        case QueryKind::kWindow:
          query = service::WindowQuery{q.window, false};
          break;
        case QueryKind::kContained:
          query = service::WindowQuery{q.window, true};
          break;
        case QueryKind::kPoint:
          query = service::PointQuery{q.point};
          break;
        case QueryKind::kKnn:
          query = service::KnnQuery{q.point, q.k};
          break;
        case QueryKind::kJoin:
          query = service::JoinQuery{join_tree_};
          break;
        case QueryKind::kPsql:
          query = service::PsqlQuery{q.psql_text};
          break;
      }
      PICTDB_ASSIGN_OR_RETURN(auto future,
                              svc.Submit(std::move(query), qopts));
      futures.push_back(std::move(future));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      StatusOr<service::QueryResult> outcome = futures[i].get();
      if (!outcome.ok()) {
        ++report.failures;
        record_mismatch(i, "query failed: " + outcome.status().ToString());
        continue;
      }
      const service::QueryResult& r = outcome.value();
      classify(i, batch[i], r.hits, r.neighbors, r.join_pairs,
               r.table.has_value() ? &*r.table : nullptr, r.degraded);
    }
    return report;
  }

  // Direct single-threaded replay.
  rtree::SearchOptions sopts;
  storage::PageQuarantine quarantine;
  sopts.degraded_ok = config.degraded_ok;
  sopts.quarantine = &quarantine;
  for (size_t i = 0; i < batch.size(); ++i) {
    const QueryDesc& q = batch[i];
    rtree::SearchStats stats;
    switch (q.kind) {
      case QueryKind::kWindow: {
        auto hits = tree_->SearchIntersects(q.window, &stats, sopts);
        if (!hits.ok()) {
          ++report.failures;
          record_mismatch(i, hits.status().ToString());
          continue;
        }
        classify(i, q, *hits, {}, 0, nullptr, stats.degraded);
        break;
      }
      case QueryKind::kContained: {
        auto hits = tree_->SearchContainedIn(q.window, &stats, sopts);
        if (!hits.ok()) {
          ++report.failures;
          record_mismatch(i, hits.status().ToString());
          continue;
        }
        classify(i, q, *hits, {}, 0, nullptr, stats.degraded);
        break;
      }
      case QueryKind::kPoint: {
        auto hits = tree_->SearchPoint(q.point, &stats, sopts);
        if (!hits.ok()) {
          ++report.failures;
          record_mismatch(i, hits.status().ToString());
          continue;
        }
        classify(i, q, *hits, {}, 0, nullptr, stats.degraded);
        break;
      }
      case QueryKind::kKnn: {
        auto nn = rtree::SearchNearest(*tree_, q.point, q.k, &stats, sopts);
        if (!nn.ok()) {
          ++report.failures;
          record_mismatch(i, nn.status().ToString());
          continue;
        }
        classify(i, q, {}, *nn, 0, nullptr, stats.degraded);
        break;
      }
      case QueryKind::kJoin: {
        rtree::JoinStats jstats;
        uint64_t pairs = 0;
        const Status st = rtree::SpatialJoin(
            *tree_, *join_tree_,
            [&pairs](const LeafHit&, const LeafHit&) { ++pairs; }, &jstats,
            sopts);
        if (!st.ok()) {
          ++report.failures;
          record_mismatch(i, st.ToString());
          continue;
        }
        classify(i, q, {}, {}, pairs, nullptr, jstats.degraded);
        break;
      }
      case QueryKind::kPsql: {
        auto rs = executor_->Query(q.psql_text);
        if (!rs.ok()) {
          ++report.failures;
          record_mismatch(i, rs.status().ToString());
          continue;
        }
        classify(i, q, {}, {}, 0, &*rs, /*degraded=*/false);
        break;
      }
    }
  }
  return report;
}

}  // namespace pictdb::check
