#include "check/stress.h"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <memory>
#include <optional>
#include <sstream>

#include "check/invariants.h"
#include "check/oracle.h"
#include "common/random.h"
#include "pack/pack.h"
#include "pack/repack.h"
#include "rtree/knn.h"
#include "rtree/node.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/write_cache.h"
#include "wal/durable_tree.h"
#include "workload/generators.h"

namespace pictdb::check {

using geom::Point;
using geom::Rect;
using rtree::Entry;
using rtree::LeafHit;
using storage::PageId;

std::string StressOutcome::Summary() const {
  std::ostringstream os;
  os << (failed ? "FAILED" : "ok") << ": " << queries << " queries ("
     << wrong_answers << " wrong, " << degraded_subsets << " degraded), "
     << mutations << " mutations, " << validations << " validations";
  if (crashes != 0) os << ", " << crashes << " crashes survived";
  if (failed) os << "; op " << failing_op << ": " << message;
  return os.str();
}

// --- Trace generation -------------------------------------------------------

std::vector<Op> GenerateTrace(const StressConfig& config) {
  Random rng(config.seed);
  const Rect frame =
      config.frame.IsEmpty() ? workload::PaperFrame() : config.frame;
  const double total = config.w_insert + config.w_delete + config.w_update +
                       config.w_window + config.w_contained + config.w_point +
                       config.w_knn + config.w_search_batch + config.w_repack +
                       config.w_repack_region + config.w_checkpoint +
                       config.w_crash + config.w_fault_flip;
  std::vector<Op> trace;
  trace.reserve(config.ops);
  bool faults_armed = false;

  auto draw_window = [&]() {
    const double cx = rng.UniformDouble(frame.lo.x, frame.hi.x);
    const double cy = rng.UniformDouble(frame.lo.y, frame.hi.y);
    const double dx =
        rng.UniformDouble(config.min_half_extent, config.max_half_extent);
    const double dy =
        rng.UniformDouble(config.min_half_extent, config.max_half_extent);
    return Rect::FromCenterHalfExtent(cx, dx, cy, dy);
  };
  auto draw_point = [&]() {
    return Point{rng.UniformDouble(frame.lo.x, frame.hi.x),
                 rng.UniformDouble(frame.lo.y, frame.hi.y)};
  };

  for (size_t i = 0; i < config.ops; ++i) {
    double r = rng.NextDouble() * total;
    Op op;
    if ((r -= config.w_insert) < 0) {
      op.kind = OpKind::kInsert;
      // Mostly points, sometimes small extended objects.
      const Point p = draw_point();
      if (rng.Bernoulli(0.25)) {
        op.rect = Rect::FromCenterHalfExtent(p.x, rng.UniformDouble(0.1, 5),
                                             p.y, rng.UniformDouble(0.1, 5));
      } else {
        op.rect = Rect::FromPoint(p);
      }
    } else if ((r -= config.w_delete) < 0) {
      op.kind = OpKind::kDelete;
      op.a = static_cast<uint32_t>(rng.Uniform(1u << 30));
    } else if ((r -= config.w_update) < 0) {
      op.kind = OpKind::kUpdate;
      op.a = static_cast<uint32_t>(rng.Uniform(1u << 30));
      const Point p = draw_point();
      op.rect = rng.Bernoulli(0.25)
                    ? Rect::FromCenterHalfExtent(p.x, rng.UniformDouble(0.1, 5),
                                                 p.y, rng.UniformDouble(0.1, 5))
                    : Rect::FromPoint(p);
    } else if ((r -= config.w_window) < 0) {
      op.kind = OpKind::kWindow;
      op.rect = draw_window();
    } else if ((r -= config.w_contained) < 0) {
      op.kind = OpKind::kContained;
      op.rect = draw_window();
    } else if ((r -= config.w_point) < 0) {
      op.kind = OpKind::kPoint;
      op.point = draw_point();
    } else if ((r -= config.w_knn) < 0) {
      op.kind = OpKind::kKnn;
      op.point = draw_point();
      op.a = static_cast<uint32_t>(1 + rng.Uniform(config.max_k));
    } else if ((r -= config.w_search_batch) < 0) {
      op.kind = OpKind::kSearchBatch;
      op.rect = draw_window();
      op.a = static_cast<uint32_t>(rng.Uniform(1u << 16));
    } else if ((r -= config.w_repack) < 0) {
      op.kind = OpKind::kRepack;
    } else if ((r -= config.w_repack_region) < 0) {
      op.kind = OpKind::kRepackRegion;
      op.rect = draw_window();
    } else if ((r -= config.w_checkpoint) < 0) {
      op.kind = OpKind::kCheckpoint;
    } else if ((r -= config.w_crash) < 0) {
      op.kind = OpKind::kCrash;
    } else {
      op.kind = faults_armed ? OpKind::kFaultOff : OpKind::kFaultOn;
      faults_armed = !faults_armed;
    }
    trace.push_back(op);
  }
  // Never leave a generated trace in a fault episode: the closing
  // validation wants a quiet medium.
  if (faults_armed) trace.push_back(Op{OpKind::kFaultOff, {}, {}, 0});
  return trace;
}

// --- Text round trip --------------------------------------------------------

namespace {

void AppendRect(std::ostringstream& os, const Rect& r) {
  os << ' ' << r.lo.x << ' ' << r.lo.y << ' ' << r.hi.x << ' ' << r.hi.y;
}

}  // namespace

std::string TraceToText(const std::vector<Op>& trace) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (const Op& op : trace) {
    switch (op.kind) {
      case OpKind::kInsert:
        os << "insert";
        AppendRect(os, op.rect);
        break;
      case OpKind::kDelete:
        os << "delete " << op.a;
        break;
      case OpKind::kUpdate:
        os << "update " << op.a;
        AppendRect(os, op.rect);
        break;
      case OpKind::kWindow:
        os << "window";
        AppendRect(os, op.rect);
        break;
      case OpKind::kContained:
        os << "contained";
        AppendRect(os, op.rect);
        break;
      case OpKind::kPoint:
        os << "point " << op.point.x << ' ' << op.point.y;
        break;
      case OpKind::kKnn:
        os << "knn " << op.point.x << ' ' << op.point.y << ' ' << op.a;
        break;
      case OpKind::kSearchBatch:
        os << "search-batch " << op.a;
        AppendRect(os, op.rect);
        break;
      case OpKind::kRepack:
        os << "repack";
        break;
      case OpKind::kRepackRegion:
        os << "repack-region";
        AppendRect(os, op.rect);
        break;
      case OpKind::kCheckpoint:
        os << "checkpoint";
        break;
      case OpKind::kCrash:
        os << "crash";
        break;
      case OpKind::kFaultOn:
        os << "fault-on";
        break;
      case OpKind::kFaultOff:
        os << "fault-off";
        break;
      case OpKind::kValidate:
        os << "validate";
        break;
      case OpKind::kCorruptMbr:
        os << "corrupt-mbr " << op.a;
        break;
    }
    os << '\n';
  }
  return os.str();
}

StatusOr<std::vector<Op>> ParseTrace(std::string_view text) {
  std::vector<Op> trace;
  std::istringstream lines{std::string(text)};
  std::string line;
  size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    Op op;
    auto rect = [&]() -> bool {
      double x1, y1, x2, y2;
      if (!(in >> x1 >> y1 >> x2 >> y2)) return false;
      op.rect = Rect(x1, y1, x2, y2);
      return true;
    };
    bool ok = true;
    if (verb == "insert") {
      op.kind = OpKind::kInsert;
      ok = rect();
    } else if (verb == "delete") {
      op.kind = OpKind::kDelete;
      ok = static_cast<bool>(in >> op.a);
    } else if (verb == "update") {
      op.kind = OpKind::kUpdate;
      ok = static_cast<bool>(in >> op.a) && rect();
    } else if (verb == "window") {
      op.kind = OpKind::kWindow;
      ok = rect();
    } else if (verb == "contained") {
      op.kind = OpKind::kContained;
      ok = rect();
    } else if (verb == "point") {
      op.kind = OpKind::kPoint;
      ok = static_cast<bool>(in >> op.point.x >> op.point.y);
    } else if (verb == "knn") {
      op.kind = OpKind::kKnn;
      ok = static_cast<bool>(in >> op.point.x >> op.point.y >> op.a);
    } else if (verb == "search-batch") {
      op.kind = OpKind::kSearchBatch;
      ok = static_cast<bool>(in >> op.a) && rect();
    } else if (verb == "repack") {
      op.kind = OpKind::kRepack;
    } else if (verb == "repack-region") {
      op.kind = OpKind::kRepackRegion;
      ok = rect();
    } else if (verb == "checkpoint") {
      op.kind = OpKind::kCheckpoint;
    } else if (verb == "crash") {
      op.kind = OpKind::kCrash;
    } else if (verb == "fault-on") {
      op.kind = OpKind::kFaultOn;
    } else if (verb == "fault-off") {
      op.kind = OpKind::kFaultOff;
    } else if (verb == "validate") {
      op.kind = OpKind::kValidate;
    } else if (verb == "corrupt-mbr") {
      op.kind = OpKind::kCorruptMbr;
      ok = static_cast<bool>(in >> op.a);
    } else {
      ok = false;
    }
    if (!ok) {
      return Status::InvalidArgument("bad trace line " +
                                     std::to_string(lineno) + ": " + line);
    }
    trace.push_back(op);
  }
  return trace;
}

// --- Execution --------------------------------------------------------------

namespace {

/// Flip one mantissa bit of an inner-node entry MBR, rewriting the page
/// through the pool (so its CRC is restamped — the damage is purely
/// structural, exactly what the checksum can NOT catch and the
/// validator must).
Status CorruptInnerMbr(rtree::RTree* tree, uint32_t selector) {
  PICTDB_ASSIGN_OR_RETURN(storage::PageGuard guard,
                          tree->pool()->FetchPage(tree->root()));
  rtree::Node node = rtree::ReadNode(guard.data(), tree->pool()->page_size());
  if (node.entries.empty()) {
    return Status::InvalidArgument("cannot corrupt an empty root");
  }
  Entry& victim = node.entries[selector % node.entries.size()];
  uint64_t bits;
  std::memcpy(&bits, &victim.mbr.hi.x, sizeof(bits));
  bits ^= uint64_t{1} << (selector % 52);  // mantissa only: stays finite
  std::memcpy(&victim.mbr.hi.x, &bits, sizeof(bits));
  rtree::WriteNode(node, guard.mutable_data(), tree->pool()->page_size());
  return Status::OK();
}

}  // namespace

StressOutcome RunTrace(const std::vector<Op>& trace,
                       const StressConfig& config) {
  StressOutcome outcome;
  const Rect frame =
      config.frame.IsEmpty() ? workload::PaperFrame() : config.frame;

  // Environment: memory disk under a seeded fault injector under a
  // checksumming pool with fast (no-sleep) retries. Durable mode slots a
  // volatile write cache between the pool and the fault layer — the
  // "OS page cache" a kCrash op wipes.
  storage::InMemoryDiskManager mem(config.page_size);
  storage::FaultInjectionDiskManager faulty(&mem, config.fault_plan);
  faulty.ClearFaults();  // start every run quiet; kFaultOn re-arms
  std::optional<storage::WriteCacheDiskManager> wcache;
  storage::DiskManager* top = &faulty;
  if (config.durable) {
    wcache.emplace(&faulty);
    top = &*wcache;
  }
  storage::BufferPoolOptions popts;
  popts.max_read_retries = 10;
  popts.max_write_retries = 10;
  popts.retry_backoff_base = std::chrono::microseconds(0);
  auto pool = std::make_unique<storage::BufferPool>(
      top, config.pool_frames, /*shards=*/1, popts);

  rtree::RTreeOptions topts;
  topts.max_entries = config.tree_max_entries;
  wal::DurableOptions dopts;
  dopts.checkpoint_every = config.checkpoint_every;

  std::optional<rtree::RTree> plain;     // non-durable mode
  std::unique_ptr<wal::DurableRTree> durable;  // durable mode
  if (config.durable) {
    auto created = wal::DurableRTree::Create(pool.get(), topts, dopts);
    if (!created.ok()) {
      outcome.failed = true;
      outcome.message = "durable create: " + created.status().ToString();
      return outcome;
    }
    durable = std::move(created).value();
  } else {
    auto created = rtree::RTree::Create(pool.get(), topts);
    if (!created.ok()) {
      outcome.failed = true;
      outcome.message = "tree create: " + created.status().ToString();
      return outcome;
    }
    plain.emplace(std::move(created).value());
  }
  auto query_tree = [&]() -> const rtree::RTree& {
    return durable != nullptr ? durable->tree() : *plain;
  };

  // Seed data: PACK-built points, mirrored into the oracle.
  Random init_rng(config.seed ^ 0x5eed5eedULL);
  const auto points =
      workload::UniformPoints(&init_rng, config.initial_entries, frame);
  std::vector<storage::Rid> rids;
  rids.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    rids.push_back(storage::Rid{static_cast<PageId>(i), 0});
  }
  std::vector<Entry> initial = pack::MakeLeafEntries(points, rids);
  if (!initial.empty()) {
    const Status packed =
        durable != nullptr ? durable->BulkLoad(initial)
                           : pack::PackNearestNeighbor(&*plain, initial);
    if (!packed.ok()) {
      outcome.failed = true;
      outcome.message = "initial pack: " + packed.ToString();
      return outcome;
    }
  }
  Oracle oracle(std::move(initial));
  uint64_t next_rid = config.initial_entries;

  std::unique_ptr<service::QueryService> svc;
  auto make_service = [&] {
    service::ServiceOptions sopts;
    sopts.num_threads = config.service_threads;
    svc = std::make_unique<service::QueryService>(&query_tree(), nullptr,
                                                  sopts);
    if (durable != nullptr) svc->BindWriter(durable.get());
  };
  if (config.use_service) make_service();

  bool faults_armed = false;

  auto fail = [&](size_t op_index, std::string message) {
    outcome.failed = true;
    outcome.failing_op = op_index;
    outcome.message = std::move(message);
  };

  auto validate = [&](size_t op_index) {
    ++outcome.validations;
    ValidatorOptions vopts;
    vopts.measure_quality = false;
    // The CRC scan assumes a quiet medium; while transient faults are
    // armed an injected read bit flip would masquerade as real rot.
    vopts.check_checksums = !faults_armed;
    const ValidationReport report = TreeValidator(vopts).Check(query_tree());
    if (!report.ok()) fail(op_index, "validator: " + report.ToString());
    return report.ok();
  };

  // Mutations route through the service write path when both a writer
  // and a service exist, else through the durable tree, else directly.
  auto do_insert = [&](const Rect& rect, const storage::Rid& rid) {
    if (durable == nullptr) return plain->Insert(rect, rid);
    if (svc != nullptr) return svc->ExecuteWrite(service::InsertOp{rect, rid});
    return durable->Insert(rect, rid);
  };
  auto do_delete = [&](const Rect& rect, const storage::Rid& rid) {
    if (durable == nullptr) return plain->Delete(rect, rid);
    if (svc != nullptr) return svc->ExecuteWrite(service::DeleteOp{rect, rid});
    return durable->Delete(rect, rid);
  };
  auto do_update = [&](const Rect& old_rect, const storage::Rid& old_rid,
                       const Rect& new_rect, const storage::Rid& new_rid) {
    if (durable == nullptr) {
      return plain->Update(old_rect, old_rid, new_rect, new_rid);
    }
    if (svc != nullptr) {
      return svc->ExecuteWrite(
          service::UpdateOp{old_rect, old_rid, new_rect, new_rid});
    }
    return durable->Update(old_rect, old_rid, new_rect, new_rid);
  };

  auto classify = [&](size_t op_index, DiffVerdict verdict) {
    ++outcome.queries;
    switch (verdict) {
      case DiffVerdict::kMatch:
        break;
      case DiffVerdict::kDegradedSubset:
        ++outcome.degraded_subsets;
        break;
      case DiffVerdict::kWrongAnswer:
        ++outcome.wrong_answers;
        fail(op_index, "query result diverges from oracle");
        break;
    }
  };

  // Direct-path search options (degraded only while faults are armed,
  // so clean episodes demand exact answers).
  storage::PageQuarantine quarantine;

  for (size_t i = 0; i < trace.size() && !outcome.failed; ++i) {
    const Op& op = trace[i];
    rtree::SearchOptions sopts;
    sopts.degraded_ok = faults_armed;
    sopts.quarantine = &quarantine;
    service::QueryOptions qopts;
    qopts.degraded_ok = faults_armed;

    switch (op.kind) {
      case OpKind::kInsert: {
        const storage::Rid rid{static_cast<PageId>(next_rid++), 0};
        const Status st = do_insert(op.rect, rid);
        if (!st.ok()) {
          fail(i, "insert: " + st.ToString());
          break;
        }
        oracle.Insert(op.rect, rid);
        ++outcome.mutations;
        break;
      }
      case OpKind::kDelete: {
        if (oracle.size() == 0) break;
        const Entry victim = oracle.entries()[op.a % oracle.size()];
        const Status st = do_delete(victim.mbr, victim.AsRid());
        if (!st.ok()) {
          fail(i, "delete: " + st.ToString());
          break;
        }
        oracle.Delete(victim.mbr, victim.AsRid());
        ++outcome.mutations;
        break;
      }
      case OpKind::kUpdate: {
        if (oracle.size() == 0) break;
        const Entry victim = oracle.entries()[op.a % oracle.size()];
        const storage::Rid rid = victim.AsRid();
        const Status st = do_update(victim.mbr, rid, op.rect, rid);
        if (!st.ok()) {
          fail(i, "update: " + st.ToString());
          break;
        }
        oracle.Delete(victim.mbr, rid);
        oracle.Insert(op.rect, rid);
        ++outcome.mutations;
        break;
      }
      case OpKind::kWindow:
      case OpKind::kContained: {
        const bool contained = op.kind == OpKind::kContained;
        std::vector<LeafHit> hits;
        bool degraded = false;
        if (svc != nullptr) {
          auto r = svc->RunSync(service::WindowQuery{op.rect, contained},
                                qopts);
          if (!r.ok()) {
            fail(i, "window: " + r.status().ToString());
            break;
          }
          hits = std::move(r->hits);
          degraded = r->degraded;
        } else {
          rtree::SearchStats stats;
          auto r = contained
                       ? query_tree().SearchContainedIn(op.rect, &stats, sopts)
                       : query_tree().SearchIntersects(op.rect, &stats, sopts);
          if (!r.ok()) {
            fail(i, "window: " + r.status().ToString());
            break;
          }
          hits = std::move(r).value();
          degraded = stats.degraded;
        }
        classify(i, CompareHits(hits,
                                contained ? oracle.ContainedIn(op.rect)
                                          : oracle.Intersects(op.rect),
                                degraded));
        break;
      }
      case OpKind::kPoint: {
        std::vector<LeafHit> hits;
        bool degraded = false;
        if (svc != nullptr) {
          auto r = svc->RunSync(service::PointQuery{op.point}, qopts);
          if (!r.ok()) {
            fail(i, "point: " + r.status().ToString());
            break;
          }
          hits = std::move(r->hits);
          degraded = r->degraded;
        } else {
          rtree::SearchStats stats;
          auto r = query_tree().SearchPoint(op.point, &stats, sopts);
          if (!r.ok()) {
            fail(i, "point: " + r.status().ToString());
            break;
          }
          hits = std::move(r).value();
          degraded = stats.degraded;
        }
        classify(i, CompareHits(hits, oracle.AtPoint(op.point), degraded));
        break;
      }
      case OpKind::kKnn: {
        std::vector<rtree::Neighbor> neighbors;
        bool degraded = false;
        if (svc != nullptr) {
          auto r = svc->RunSync(service::KnnQuery{op.point, op.a}, qopts);
          if (!r.ok()) {
            fail(i, "knn: " + r.status().ToString());
            break;
          }
          neighbors = std::move(r->neighbors);
          degraded = r->degraded;
        } else {
          rtree::SearchStats stats;
          auto r =
              rtree::SearchNearest(query_tree(), op.point, op.a, &stats, sopts);
          if (!r.ok()) {
            fail(i, "knn: " + r.status().ToString());
            break;
          }
          neighbors = std::move(r).value();
          degraded = stats.degraded;
        }
        classify(i, CompareNeighbors(neighbors, oracle, op.point, op.a,
                                     degraded));
        break;
      }
      case OpKind::kSearchBatch: {
        // Windows derived deterministically from the op fields: op.rect
        // shifted along its own diagonal, 1 + a%6 of them.
        const size_t nwin = 1 + op.a % 6;
        std::vector<Rect> windows;
        windows.reserve(nwin);
        const double dx = op.rect.hi.x - op.rect.lo.x;
        const double dy = op.rect.hi.y - op.rect.lo.y;
        for (size_t j = 0; j < nwin; ++j) {
          const double shift =
              (static_cast<double>(j) - static_cast<double>(nwin) / 2.0) *
              0.5;
          windows.push_back(Rect(op.rect.lo.x + shift * dx,
                                 op.rect.lo.y + shift * dy,
                                 op.rect.hi.x + shift * dx,
                                 op.rect.hi.y + shift * dy));
        }
        std::vector<rtree::BatchHits> batch;
        if (svc != nullptr) {
          auto r = svc->RunSync(service::BatchWindowQuery{windows, false},
                                qopts);
          if (!r.ok()) {
            fail(i, "search-batch: " + r.status().ToString());
            break;
          }
          batch = std::move(r->batch);
        } else {
          auto r = query_tree().SearchBatch(windows, false, nullptr, sopts);
          if (!r.ok()) {
            fail(i, "search-batch: " + r.status().ToString());
            break;
          }
          batch = std::move(r).value();
        }
        if (batch.size() != windows.size()) {
          fail(i, "search-batch: result count mismatch");
          break;
        }
        for (size_t j = 0; j < windows.size() && !outcome.failed; ++j) {
          classify(i, CompareHits(batch[j].hits,
                                  oracle.Intersects(windows[j]),
                                  batch[j].degraded));
          if (outcome.failed || faults_armed) continue;
          // On a quiet medium the batched answer must also match the
          // single-window path hit for hit, in the same order.
          auto single = query_tree().SearchIntersects(windows[j]);
          if (!single.ok()) {
            fail(i, "search-batch single: " + single.status().ToString());
            break;
          }
          const std::vector<LeafHit>& s = single.value();
          bool same = s.size() == batch[j].hits.size();
          for (size_t h = 0; same && h < s.size(); ++h) {
            same = s[h].mbr == batch[j].hits[h].mbr &&
                   s[h].rid == batch[j].hits[h].rid;
          }
          if (!same) {
            fail(i, "search-batch window " + std::to_string(j) +
                        " diverges from single-window search");
          }
        }
        break;
      }
      case OpKind::kRepack: {
        if (durable != nullptr) break;  // would bypass the log
        const Status st = pack::Repack(&*plain);
        if (!st.ok()) {
          fail(i, "repack: " + st.ToString());
          break;
        }
        ++outcome.mutations;
        break;
      }
      case OpKind::kRepackRegion: {
        if (durable != nullptr) break;  // would bypass the log
        auto st = pack::RepackRegion(&*plain, op.rect);
        if (!st.ok()) {
          fail(i, "repack-region: " + st.status().ToString());
          break;
        }
        ++outcome.mutations;
        break;
      }
      case OpKind::kCheckpoint: {
        if (durable == nullptr) break;
        const Status st = durable->Checkpoint();
        if (!st.ok()) fail(i, "checkpoint: " + st.ToString());
        break;
      }
      case OpKind::kCrash: {
        if (durable == nullptr || !wcache.has_value()) {
          fail(i, "crash op requires a durable StressConfig");
          break;
        }
        // Simulated power loss: drop the service, the writer, and the
        // pool without any orderly shutdown (their teardown flushes land
        // in the volatile cache), wipe everything not fsynced, then
        // recover from the bytes that survived. Every acked mutation was
        // WAL-fsynced before its commit returned, so the recovered state
        // must equal the oracle EXACTLY.
        const PageId meta = durable->meta_page();
        const PageId anchor = durable->anchor_page();
        svc.reset();
        durable.reset();
        pool.reset();
        wcache->DropUnsynced();
        faulty.ClearFaults();  // recovery itself runs on a quiet medium
        const bool refault = faults_armed;
        faults_armed = false;
        pool = std::make_unique<storage::BufferPool>(
            top, config.pool_frames, /*shards=*/1, popts);
        auto reopened =
            wal::DurableRTree::Open(pool.get(), meta, anchor, dopts);
        if (!reopened.ok()) {
          fail(i, "recovery: " + reopened.status().ToString());
          break;
        }
        durable = std::move(reopened).value();
        if (config.use_service) make_service();
        ++outcome.crashes;
        // Differential oracle check over the FULL state: a window that
        // covers everything, demanded exact (never degraded).
        const Rect everything(-1e18, -1e18, 1e18, 1e18);
        auto all = query_tree().SearchIntersects(everything);
        if (!all.ok()) {
          fail(i, "post-recovery scan: " + all.status().ToString());
          break;
        }
        classify(i, CompareHits(all.value(), oracle.Intersects(everything),
                                /*degraded=*/false));
        if (!outcome.failed) validate(i);
        if (refault) {
          faulty.SetPlan(config.fault_plan);
          faults_armed = true;
        }
        break;
      }
      case OpKind::kFaultOn:
        faulty.SetPlan(config.fault_plan);
        faults_armed = true;
        break;
      case OpKind::kFaultOff:
        faulty.ClearFaults();
        faults_armed = false;
        break;
      case OpKind::kValidate:
        validate(i);
        break;
      case OpKind::kCorruptMbr: {
        if (durable != nullptr) break;  // raw page pokes bypass the log
        const Status st = CorruptInnerMbr(&*plain, op.a);
        if (!st.ok()) fail(i, "corrupt-mbr: " + st.ToString());
        break;
      }
    }

    if (!outcome.failed && config.validate_every != 0 &&
        (i + 1) % config.validate_every == 0) {
      validate(i);
    }
  }

  // Closing validation on a quiet medium — this is where a corruption
  // planted late in the trace is guaranteed to surface.
  if (!outcome.failed) {
    faulty.ClearFaults();
    faults_armed = false;
    validate(trace.empty() ? 0 : trace.size() - 1);
  }
  return outcome;
}

// --- Shrinker ---------------------------------------------------------------

std::vector<Op> ShrinkTrace(
    std::vector<Op> trace,
    const std::function<bool(const std::vector<Op>&)>& still_fails) {
  if (trace.empty() || !still_fails(trace)) return trace;
  size_t chunk = std::max<size_t>(1, trace.size() / 2);
  for (;;) {
    bool removed = true;
    while (removed) {
      removed = false;
      size_t start = 0;
      while (start < trace.size()) {
        std::vector<Op> candidate;
        candidate.reserve(trace.size());
        candidate.insert(candidate.end(), trace.begin(),
                         trace.begin() + static_cast<ptrdiff_t>(start));
        const size_t end = std::min(trace.size(), start + chunk);
        candidate.insert(candidate.end(),
                         trace.begin() + static_cast<ptrdiff_t>(end),
                         trace.end());
        if (!candidate.empty() && still_fails(candidate)) {
          trace = std::move(candidate);
          removed = true;
          // re-test the same offset: it now holds different ops
        } else {
          start += chunk;
        }
      }
    }
    if (chunk == 1) break;
    chunk = std::max<size_t>(1, chunk / 2);
  }
  return trace;
}

}  // namespace pictdb::check
