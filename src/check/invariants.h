#ifndef PICTDB_CHECK_INVARIANTS_H_
#define PICTDB_CHECK_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rtree/rtree.h"
#include "storage/quarantine.h"

namespace pictdb::check {

/// Classes of structural damage the validator can report. Each finding
/// names the page it was observed on, so a report doubles as a repair
/// worklist (feed the pages to ScrubAndRepack's quarantine).
enum class ViolationKind {
  /// A reachable page failed to load (I/O error, checksum mismatch on
  /// the miss read, out-of-range id from a corrupt child pointer).
  kUnreadablePage,
  /// node.level disagrees with the depth the walk reached it at — leaf
  /// depth is not uniform, or a child pointer jumped levels.
  kLevelMismatch,
  /// More entries than the tree's branching factor allows.
  kOverfullNode,
  /// Fewer than min_entries in a non-root node (checked only when
  /// ValidatorOptions::check_min_fill is set; packed trees legitimately
  /// leave their last node per level underfull).
  kUnderfullNode,
  /// A non-root node with no entries at all.
  kEmptyNode,
  /// The parent's entry MBR is not exactly the minimal bound of the
  /// child it points to (covers-all-children and minimality both fail
  /// as inequality here).
  kParentMbrMismatch,
  /// An entry MBR is empty (inverted bounds) or non-finite.
  kInvalidEntryMbr,
  /// The same page is reachable along two paths — the "tree" is a DAG
  /// or cycle. Each extra path is one violation.
  kDuplicatePage,
  /// A page in the caller's quarantine is still reachable from the
  /// root; recovery was supposed to have cut it out.
  kQuarantinedPageReachable,
  /// The on-disk image of a reachable page fails its CRC trailer.
  kChecksumMismatch,
  /// The meta page's recorded entry count disagrees with the leaf
  /// entries actually found.
  kSizeMismatch,
  /// The walk left buffer-pool pins behind (page guard leak).
  kPinLeak,
};

const char* ToString(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  storage::PageId page = storage::kInvalidPageId;
  std::string detail;

  std::string ToString() const;
};

/// Outcome of one validation pass. `violations` empty means the tree is
/// structurally sound; the measured Table 1 metrics (C/O/D/N, plus J)
/// are computed by the checker's own walk, independent of whatever the
/// builder believes, so regression suites can assert on them without
/// trusting the code under test.
/// [[nodiscard]]: a dropped report is a dropped verdict — callers
/// must at least look at ok().
struct [[nodiscard]] ValidationReport {
  std::vector<Violation> violations;

  /// Paper metrics as measured by the walk (valid even when violations
  /// were found, over the readable part of the tree).
  double coverage = 0.0;    // Σ area(leaf node MBR)          — C
  double overlap = 0.0;     // area under >= 2 leaf MBRs      — O
  uint32_t depth = 0;       // root-to-leaf edges             — D
  uint64_t nodes = 0;       // nodes reached by the walk      — N
  uint64_t leaf_entries = 0;  // spatial objects              — J

  bool ok() const { return violations.empty(); }

  /// Multi-line human summary: metrics plus every violation.
  std::string ToString() const;
};

struct ValidatorOptions {
  /// Enforce Guttman's m <= M/2 lower bound on non-root nodes. Off by
  /// default: PACK legitimately leaves the trailing node of each level
  /// underfull.
  bool check_min_fill = false;

  /// Flush the pool and re-read every reachable page straight from the
  /// disk manager, verifying its CRC trailer — catches rot that the
  /// cached copy would hide. Skipped automatically when the pool runs
  /// without checksums.
  bool check_checksums = true;

  /// Compute coverage/overlap (the sweep is O(n² log n) in the number
  /// of leaves; turn off for very large trees in teardown hooks).
  bool measure_quality = true;

  /// When set, any reachable page found in this quarantine is reported
  /// as kQuarantinedPageReachable.
  const storage::PageQuarantine* quarantine = nullptr;

  /// Violations recorded per pass before the walk stops adding more
  /// (the walk itself still completes, so metrics stay meaningful).
  size_t max_violations = 64;
};

/// Walks an R-tree through its buffer pool and checks every structural
/// invariant the engine relies on. Read-only and usable on any tree —
/// packed, dynamically grown, or freshly scrubbed. Never aborts: damage
/// is reported, not thrown, so it can run inside recovery paths and
/// over intentionally corrupted test trees.
class TreeValidator {
 public:
  explicit TreeValidator(const ValidatorOptions& options = {})
      : options_(options) {}

  ValidationReport Check(const rtree::RTree& tree) const;

 private:
  ValidatorOptions options_;
};

}  // namespace pictdb::check

#endif  // PICTDB_CHECK_INVARIANTS_H_
