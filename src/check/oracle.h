#ifndef PICTDB_CHECK_ORACLE_H_
#define PICTDB_CHECK_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "psql/executor.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"

namespace pictdb::check {

/// Brute-force reference engine: a flat copy of the base leaf entries,
/// answered by linear scan. Deliberately has no tree, no pages, no
/// cache — nothing shared with the code under test except the geometry
/// predicates — so agreement between the two is real evidence.
class Oracle {
 public:
  Oracle() = default;
  explicit Oracle(std::vector<rtree::Entry> entries)
      : entries_(std::move(entries)) {}

  void Insert(const geom::Rect& mbr, const storage::Rid& rid);
  /// Remove the first entry matching (mbr, rid); false if absent.
  bool Delete(const geom::Rect& mbr, const storage::Rid& rid);

  size_t size() const { return entries_.size(); }
  const std::vector<rtree::Entry>& entries() const { return entries_; }

  /// The paper's query set, by linear scan.
  std::vector<rtree::LeafHit> Intersects(const geom::Rect& window) const;
  std::vector<rtree::LeafHit> ContainedIn(const geom::Rect& window) const;
  std::vector<rtree::LeafHit> AtPoint(const geom::Point& p) const;
  /// k nearest by MBR MINDIST — the same metric SearchNearest minimizes.
  std::vector<rtree::Neighbor> Nearest(const geom::Point& p, size_t k) const;
  /// Intersecting leaf-entry pairs against another oracle (the
  /// juxtaposition count).
  uint64_t CountJoinPairs(const Oracle& other) const;

 private:
  std::vector<rtree::Entry> entries_;
};

/// How one replayed query compared against the oracle.
enum class DiffVerdict {
  kMatch,            // identical result multiset
  kDegradedSubset,   // flagged degraded, and a true subset of the oracle
  kWrongAnswer,      // anything else
};

/// Result-set comparators, exposed for the stress harness. `degraded`
/// is the engine's own flag: an inexact result is only admissible when
/// the engine admitted it was partial.
DiffVerdict CompareHits(const std::vector<rtree::LeafHit>& got,
                        const std::vector<rtree::LeafHit>& want,
                        bool degraded);
/// Neighbors are judged by their distance sequence against the oracle's
/// own ranking for `query` (ties can legally reorder rids). A degraded
/// result must be a sorted subsequence of the full ranking.
DiffVerdict CompareNeighbors(const std::vector<rtree::Neighbor>& got,
                             const Oracle& oracle, const geom::Point& query,
                             size_t k, bool degraded);

struct DiffMismatch {
  size_t query_index = 0;
  std::string description;
};

struct [[nodiscard]] DiffReport {
  uint64_t queries = 0;
  uint64_t matches = 0;
  uint64_t degraded_subsets = 0;
  uint64_t wrong_answers = 0;
  /// Queries that failed outright (Status error) when the run was not
  /// expecting failures.
  uint64_t failures = 0;
  /// First few mismatches, for diagnosis (capped).
  std::vector<DiffMismatch> mismatches;

  bool clean() const { return wrong_answers == 0 && failures == 0; }
  std::string Summary() const;
};

/// Knobs for one replay batch. Weights need not sum to 1; they are
/// normalized. Kinds whose prerequisites are missing (no join binding,
/// no PSQL binding) get weight 0 automatically.
struct DiffConfig {
  uint64_t seed = 1;
  size_t queries = 1000;
  geom::Rect frame;  // default-initialized empty => PaperFrame()

  double w_window = 0.3;
  double w_contained = 0.15;
  double w_point = 0.2;
  double w_knn = 0.2;
  double w_join = 0.05;
  double w_psql = 0.1;

  /// Window half-extent range [min,max] in frame units.
  double min_half_extent = 5.0;
  double max_half_extent = 60.0;
  size_t max_k = 10;

  /// Run queries with degraded_ok (and classify flagged-partial results
  /// as admissible subsets instead of wrong answers).
  bool degraded_ok = false;

  /// Replay through a QueryService (concurrent batch submission)
  /// instead of direct single-threaded tree calls.
  bool use_service = false;
  size_t service_threads = 4;
};

/// Replays a seeded query batch against the R-tree — directly or
/// through the concurrent query service — and the Oracle, diffing every
/// result set and classifying each divergence as an admissible degraded
/// subset or a wrong answer.
class DiffRunner {
 public:
  DiffRunner(const rtree::RTree* tree, const Oracle* oracle)
      : tree_(tree), oracle_(oracle) {}

  /// Enable join queries: juxtaposition of the main tree with `other`.
  void BindJoin(const rtree::RTree* other, const Oracle* other_oracle) {
    join_tree_ = other;
    join_oracle_ = other_oracle;
  }

  /// Enable PSQL-where queries: windows are rendered as
  ///   select <attr> from <relation> on <map> at <attr> covered-by {...}
  /// and the returned row rids compared against `psql_oracle`
  /// (an Oracle over the relation's spatial attribute). Window centers
  /// and extents are drawn on an integer grid so the rendered text
  /// round-trips exactly through the PSQL lexer.
  void BindPsql(const psql::Executor* executor, std::string relation,
                std::string map, std::string attr,
                const Oracle* psql_oracle) {
    executor_ = executor;
    psql_relation_ = std::move(relation);
    psql_map_ = std::move(map);
    psql_attr_ = std::move(attr);
    psql_oracle_ = psql_oracle;
  }

  /// PSQL windows are drawn inside this frame (the relation's map frame,
  /// e.g. continental-US lon/lat) rather than `config.frame`.
  void SetPsqlFrame(const geom::Rect& frame) { psql_frame_ = frame; }

  StatusOr<DiffReport> Run(const DiffConfig& config) const;

 private:
  const rtree::RTree* tree_;
  const Oracle* oracle_;
  const rtree::RTree* join_tree_ = nullptr;
  const Oracle* join_oracle_ = nullptr;
  const psql::Executor* executor_ = nullptr;
  std::string psql_relation_, psql_map_, psql_attr_;
  const Oracle* psql_oracle_ = nullptr;
  geom::Rect psql_frame_;
};

}  // namespace pictdb::check

#endif  // PICTDB_CHECK_ORACLE_H_
