#include "check/invariants.h"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "geom/measure.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace pictdb::check {

using geom::Rect;
using rtree::Entry;
using rtree::Node;
using storage::PageId;

const char* ToString(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnreadablePage: return "unreadable-page";
    case ViolationKind::kLevelMismatch: return "level-mismatch";
    case ViolationKind::kOverfullNode: return "overfull-node";
    case ViolationKind::kUnderfullNode: return "underfull-node";
    case ViolationKind::kEmptyNode: return "empty-node";
    case ViolationKind::kParentMbrMismatch: return "parent-mbr-mismatch";
    case ViolationKind::kInvalidEntryMbr: return "invalid-entry-mbr";
    case ViolationKind::kDuplicatePage: return "duplicate-page";
    case ViolationKind::kQuarantinedPageReachable:
      return "quarantined-page-reachable";
    case ViolationKind::kChecksumMismatch: return "checksum-mismatch";
    case ViolationKind::kSizeMismatch: return "size-mismatch";
    case ViolationKind::kPinLeak: return "pin-leak";
  }
  return "unknown";
}

std::string Violation::ToString() const {
  std::ostringstream os;
  os << check::ToString(kind);
  if (page != storage::kInvalidPageId) os << " page=" << page;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

std::string ValidationReport::ToString() const {
  std::ostringstream os;
  os << "C=" << coverage << " O=" << overlap << " D=" << depth
     << " N=" << nodes << " J=" << leaf_entries;
  if (violations.empty()) {
    os << " [valid]";
  } else {
    os << " [" << violations.size() << " violation(s)]";
    for (const Violation& v : violations) os << "\n  " << v.ToString();
  }
  return os.str();
}

namespace {

bool FiniteAndOrdered(const Rect& r) {
  return std::isfinite(r.lo.x) && std::isfinite(r.lo.y) &&
         std::isfinite(r.hi.x) && std::isfinite(r.hi.y) && r.lo.x <= r.hi.x &&
         r.lo.y <= r.hi.y;
}

}  // namespace

ValidationReport TreeValidator::Check(const rtree::RTree& tree) const {
  ValidationReport report;
  storage::BufferPool* pool = tree.pool();
  const size_t pinned_before = pool->pinned_frames();

  const size_t max_entries =
      tree.options().max_entries != 0
          ? tree.options().max_entries
          : rtree::NodePageCapacity(pool->page_size());
  const size_t min_entries = tree.options().min_entries != 0
                                 ? tree.options().min_entries
                                 : max_entries / 2;

  auto add = [&](ViolationKind kind, PageId page, std::string detail) {
    if (report.violations.size() < options_.max_violations) {
      report.violations.push_back(Violation{kind, page, std::move(detail)});
    }
  };

  // --- The walk -----------------------------------------------------------
  // Iterative DFS with an explicit visited set, so aliased subtrees and
  // cycles surface as kDuplicatePage instead of hanging the checker.
  struct PendingNode {
    PageId id;
    uint16_t expected_level;
    bool has_parent = false;
    Rect parent_mbr;  // the parent entry's MBR, checked for minimality
  };
  std::vector<PendingNode> stack;
  stack.push_back(PendingNode{
      tree.root(), static_cast<uint16_t>(tree.Height() - 1), false, Rect()});

  std::unordered_set<PageId> visited;
  std::vector<Rect> leaf_mbrs;
  uint64_t leaf_entries = 0;

  while (!stack.empty()) {
    const PendingNode item = stack.back();
    stack.pop_back();

    if (!visited.insert(item.id).second) {
      add(ViolationKind::kDuplicatePage, item.id,
          "page reachable along more than one path");
      continue;
    }
    if (options_.quarantine != nullptr &&
        options_.quarantine->Contains(item.id)) {
      add(ViolationKind::kQuarantinedPageReachable, item.id,
          "quarantined page still referenced by the tree");
    }

    auto loaded = tree.ReadNodePage(item.id);
    if (!loaded.ok()) {
      add(ViolationKind::kUnreadablePage, item.id,
          loaded.status().ToString());
      continue;
    }
    const Node node = std::move(loaded).value();
    ++report.nodes;

    const bool is_root = item.id == tree.root();
    if (node.level != item.expected_level) {
      std::ostringstream os;
      os << "stored level " << node.level << ", walk depth implies "
         << item.expected_level;
      add(ViolationKind::kLevelMismatch, item.id, os.str());
      // Descending through a node whose level lies would chase payloads
      // that may not be page ids at all; stop here.
      continue;
    }
    if (node.entries.size() > max_entries) {
      std::ostringstream os;
      os << node.entries.size() << " entries > max " << max_entries;
      add(ViolationKind::kOverfullNode, item.id, os.str());
    }
    if (!is_root && node.entries.empty()) {
      add(ViolationKind::kEmptyNode, item.id, "non-root node has no entries");
    } else if (options_.check_min_fill && !is_root &&
               node.entries.size() < min_entries) {
      std::ostringstream os;
      os << node.entries.size() << " entries < min " << min_entries;
      add(ViolationKind::kUnderfullNode, item.id, os.str());
    }

    bool entries_sane = true;
    for (const Entry& e : node.entries) {
      if (!FiniteAndOrdered(e.mbr)) {
        add(ViolationKind::kInvalidEntryMbr, item.id,
            "entry MBR empty or non-finite: " + geom::ToString(e.mbr));
        entries_sane = false;
      }
    }
    // Mbr() recomputes the bound from every entry; hoist the one
    // computation this node needs instead of paying it per use.
    const Rect node_mbr = node.Mbr();
    if (item.has_parent && !(node_mbr == item.parent_mbr)) {
      // Full precision: a single flipped mantissa bit must not print as
      // "X != X".
      const Rect& p = item.parent_mbr;
      const Rect& m = node_mbr;
      std::ostringstream os;
      os << std::setprecision(17) << "parent entry [" << p.lo.x << ", "
         << p.lo.y << ", " << p.hi.x << ", " << p.hi.y
         << "] != minimal bound [" << m.lo.x << ", " << m.lo.y << ", "
         << m.hi.x << ", " << m.hi.y << "]";
      add(ViolationKind::kParentMbrMismatch, item.id, os.str());
    }

    if (node.is_leaf()) {
      leaf_entries += node.entries.size();
      if (options_.measure_quality && !node.entries.empty()) {
        leaf_mbrs.push_back(node_mbr);
      }
      continue;
    }
    if (!entries_sane) continue;  // child MBRs untrustworthy; don't recurse
    for (const Entry& e : node.entries) {
      stack.push_back(PendingNode{e.AsChild(),
                                  static_cast<uint16_t>(node.level - 1), true,
                                  e.mbr});
    }
  }

  report.leaf_entries = leaf_entries;
  report.depth = tree.Height() - 1;
  if (leaf_entries != tree.Size()) {
    std::ostringstream os;
    os << "meta records " << tree.Size() << " entries, walk found "
       << leaf_entries;
    add(ViolationKind::kSizeMismatch, tree.meta_page(), os.str());
  }

  if (options_.measure_quality) {
    report.coverage = geom::TotalArea(leaf_mbrs);
    report.overlap = geom::AreaCoveredAtLeast(leaf_mbrs, 2);
  }

  // --- On-disk CRC verification ------------------------------------------
  // Flush first so clean cached copies aren't failed against stale disk
  // images; then bypass the pool and check what the medium actually holds.
  if (options_.check_checksums && pool->options().checksum_pages) {
    const Status flushed = pool->FlushAll();
    if (!flushed.ok()) {
      add(ViolationKind::kChecksumMismatch, storage::kInvalidPageId,
          "flush before CRC scan failed: " + flushed.ToString());
    } else {
      storage::DiskManager* disk = pool->disk();
      std::vector<char> raw(disk->page_size());
      for (const PageId id : visited) {
        const Status read = disk->ReadPage(id, raw.data());
        if (!read.ok()) continue;  // already reported as unreadable above
        const Status crc =
            storage::VerifyPageTrailer(raw.data(), disk->page_size(), id);
        if (!crc.ok()) {
          add(ViolationKind::kChecksumMismatch, id, crc.ToString());
        }
      }
    }
  }

  // --- Pin-leak detection -------------------------------------------------
  const size_t pinned_after = pool->pinned_frames();
  if (pinned_after > pinned_before) {
    std::ostringstream os;
    os << pinned_after - pinned_before << " frame(s) left pinned by the walk";
    add(ViolationKind::kPinLeak, storage::kInvalidPageId, os.str());
  }

  return report;
}

}  // namespace pictdb::check
