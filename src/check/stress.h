#ifndef PICTDB_CHECK_STRESS_H_
#define PICTDB_CHECK_STRESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/rtree.h"
#include "storage/fault_injection.h"

namespace pictdb::check {

/// One operation of a stress trace. Traces are plain data: generated
/// from a seed, serializable to text, replayable, and shrinkable.
enum class OpKind : uint8_t {
  kInsert,        // insert `rect` with the next sequential rid
  kDelete,        // delete the (a mod live-count)-th live entry
  kUpdate,        // move the (a mod live-count)-th live entry to `rect`
  kWindow,        // SearchIntersects(rect) diffed against the oracle
  kContained,     // SearchContainedIn(rect) diffed against the oracle
  kPoint,         // SearchPoint(point) diffed against the oracle
  kKnn,           // SearchNearest(point, a) diffed against the oracle
  kSearchBatch,   // SearchBatch over 1+(a%6) windows derived from
                  // `rect`, each diffed against the oracle AND against
                  // the single-window search (bit-identical hit order)
  kRepack,        // full re-PACK of the tree (skipped in durable mode)
  kRepackRegion,  // pack::RepackRegion(rect) (skipped in durable mode)
  kCheckpoint,    // WAL rotation onto a fresh snapshot (durable only)
  kCrash,         // durable only: kill the writer (power loss), wipe all
                  // unsynced writes, recover, diff full state vs oracle
  kFaultOn,       // arm the config's FaultPlan on the injected disk
  kFaultOff,      // disarm all injected faults
  kValidate,      // run TreeValidator now (in addition to the cadence)
  kCorruptMbr,    // flip mantissa bit (a mod 52) of an inner-node entry
                  // MBR — the seeded corruption the validator must catch
};

struct Op {
  OpKind kind = OpKind::kWindow;
  geom::Rect rect;
  geom::Point point;
  uint32_t a = 0;  // k for kKnn, selector for kDelete/kCorruptMbr
};

/// Mix weights and environment for generated traces. Everything is
/// seeded; two runs of the same config are byte-identical.
struct StressConfig {
  uint64_t seed = 1;
  size_t ops = 1000;
  geom::Rect frame;  // empty => workload::PaperFrame()

  /// Entries PACK-built into the tree (and oracle) before op 0 runs.
  size_t initial_entries = 512;

  // Op mix weights (normalized; kCorruptMbr is never generated — it is
  // appended by tests that want a failing trace). The new kinds default
  // to weight 0 so existing seeds generate byte-identical traces.
  double w_insert = 0.15;
  double w_delete = 0.1;
  double w_update = 0.0;
  double w_window = 0.2;
  double w_contained = 0.1;
  double w_point = 0.15;
  double w_knn = 0.15;
  double w_search_batch = 0.0;  // default 0: existing seeds stay stable
  double w_repack = 0.01;
  double w_repack_region = 0.04;
  double w_checkpoint = 0.0;  // meaningful only when `durable`
  double w_crash = 0.0;       // meaningful only when `durable`
  double w_fault_flip = 0.1;  // alternates kFaultOn / kFaultOff

  double min_half_extent = 5.0;
  double max_half_extent = 50.0;
  size_t max_k = 8;

  /// Rates applied while a kFaultOn episode is active (seeded from
  /// `seed`, so the fault sequence replays exactly).
  storage::FaultPlan fault_plan;

  /// Run query ops through a QueryService worker pool instead of direct
  /// calls (mutations always run on the driving thread; the service is
  /// idle whenever a writer runs, honouring its concurrency contract).
  bool use_service = false;
  size_t service_threads = 4;

  /// Route all mutations through a wal::DurableRTree (WAL append +
  /// fsync per commit) layered on a volatile write cache, enabling
  /// kCrash ops: a crash wipes everything not fsynced, reopens, and
  /// requires the recovered state to equal the oracle exactly — every
  /// acked mutation must survive. kRepack / kRepackRegion / kCorruptMbr
  /// are skipped in this mode (they would bypass the log). With
  /// `use_service` set, mutations go through the service write path
  /// (ExecuteWrite) and queries take epoch guards.
  bool durable = false;
  /// Checkpoint cadence for the durable tree (ops between rotations).
  size_t checkpoint_every = 4096;

  /// TreeValidator cadence: after every `validate_every` ops (0 = only
  /// at the end of the trace; the end-of-trace validation always runs).
  size_t validate_every = 64;

  // Environment.
  uint32_t page_size = 512;
  size_t pool_frames = 4096;
  size_t tree_max_entries = 0;  // 0 = derive from page size
};

/// What a trace execution observed. `failed` flips on the first
/// invariant violation or oracle divergence; the trace index and a
/// human message identify it for the shrinker.
struct [[nodiscard]] StressOutcome {
  bool failed = false;
  size_t failing_op = 0;
  std::string message;

  uint64_t queries = 0;
  uint64_t mutations = 0;
  uint64_t wrong_answers = 0;
  uint64_t degraded_subsets = 0;
  uint64_t validations = 0;
  uint64_t crashes = 0;  // simulated power losses survived (durable mode)

  std::string Summary() const;
};

/// Deterministic workload program from a seed.
std::vector<Op> GenerateTrace(const StressConfig& config);

/// Replayable text form, one op per line (`insert 1 2 3 4`,
/// `knn 10 20 5`, `fault-on`, ...). Round-trips through ParseTrace.
std::string TraceToText(const std::vector<Op>& trace);
StatusOr<std::vector<Op>> ParseTrace(std::string_view text);

/// Execute `trace` against a fresh seeded environment (tree + oracle +
/// fault-injected disk), checking queries against the oracle and
/// running TreeValidator on the configured cadence. Execution stops at
/// the first failure.
StressOutcome RunTrace(const std::vector<Op>& trace,
                       const StressConfig& config);

/// Greedy delta-debugging shrinker: repeatedly drop chunks (halving
/// chunk size down to single ops) while `still_fails` holds on the
/// candidate, returning a (locally) minimal failing trace.
std::vector<Op> ShrinkTrace(
    std::vector<Op> trace,
    const std::function<bool(const std::vector<Op>&)>& still_fails);

/// Convenience predicate: re-run under `config` and report failure.
inline std::function<bool(const std::vector<Op>&)> FailsUnder(
    const StressConfig& config) {
  return [config](const std::vector<Op>& candidate) {
    return RunTrace(candidate, config).failed;
  };
}

}  // namespace pictdb::check

#endif  // PICTDB_CHECK_STRESS_H_
