# Configure-time negative-compile suite: proves that the static
# analysis itself works by feeding the compiler seeded violations and
# demanding rejection. Three probes (tests/negative_compile/):
#
#   lock_discipline_ok.cc    must COMPILE  (positive control: the flags
#                                           and include paths are sane)
#   discarded_status.cc      must FAIL     (a dropped [[nodiscard]]
#                                           Status is a build error)
#   guarded_by_violation.cc  must FAIL     (clang only: touching a
#                                           GUARDED_BY field without the
#                                           lock is a build error)
#
# An unexpected outcome is a FATAL_ERROR, so a regression in the
# annotation layer (e.g. someone deletes [[nodiscard]] or breaks the
# macro expansion) stops the build at configure time.

function(pictdb_negative_compile_probe source expect_compile extra_flags)
  set(probe_src "${PROJECT_SOURCE_DIR}/tests/negative_compile/${source}")
  try_compile(
    probe_ok
    "${CMAKE_BINARY_DIR}/negative_compile/${source}.dir"
    "${probe_src}"
    COMPILE_DEFINITIONS "${extra_flags}"
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${PROJECT_SOURCE_DIR}/src"
      "-DCMAKE_CXX_STANDARD=${CMAKE_CXX_STANDARD}"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
    OUTPUT_VARIABLE probe_output)
  if(expect_compile AND NOT probe_ok)
    message(FATAL_ERROR
      "negative-compile harness: ${source} should compile but did not.\n"
      "${probe_output}")
  elseif(NOT expect_compile AND probe_ok)
    message(FATAL_ERROR
      "negative-compile harness: ${source} compiled but must be "
      "rejected — the static analysis it probes is no longer armed.")
  endif()
  if(expect_compile)
    message(STATUS "negative-compile: ${source} compiles (as required)")
  else()
    message(STATUS "negative-compile: ${source} rejected (as required)")
  endif()
endfunction()

function(pictdb_run_negative_compile_tests)
  # Shared flags: warnings-as-errors exactly like the real build.
  set(base_flags "-Wall;-Wextra;-Werror")
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    list(APPEND base_flags "-Wthread-safety")
  endif()

  pictdb_negative_compile_probe(lock_discipline_ok.cc TRUE "${base_flags}")
  pictdb_negative_compile_probe(discarded_status.cc FALSE "${base_flags}")
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    pictdb_negative_compile_probe(
      guarded_by_violation.cc FALSE "${base_flags}")
  else()
    message(STATUS
      "negative-compile: guarded_by_violation.cc skipped (thread safety "
      "analysis needs clang; compiler is ${CMAKE_CXX_COMPILER_ID})")
  endif()
endfunction()
