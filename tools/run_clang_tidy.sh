#!/usr/bin/env bash
# One-command clang-tidy over the whole tree, driven by the build's
# compile_commands.json (exported by default; see CMakeLists.txt).
#
#   tools/run_clang_tidy.sh [build-dir]   # default build dir: ./build
#
# Exit codes: 0 clean, 1 findings, 2 environment not usable (no
# clang-tidy or no compile database) — CI treats 2 as a hard failure,
# local runs get a clear message.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

tidy=""
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "${cand}" >/dev/null 2>&1; then
    tidy="${cand}"
    break
  fi
done
if [[ -z "${tidy}" ]]; then
  echo "run_clang_tidy: no clang-tidy binary found on PATH" >&2
  echo "  (install clang-tidy; the CI static-analysis job does)" >&2
  exit 2
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "run_clang_tidy: ${db} not found" >&2
  echo "  configure first: cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 2
fi

# First-party translation units only: generated/third-party code (none
# today) and test mains would drown the signal.
mapfile -t files < <(cd "${repo_root}" \
  && find src bench examples -name '*.cc' -o -name '*.cpp' | sort)

# A stale database silently lints against old flags or skips new TUs —
# fail loudly instead. Stale means: any CMakeLists.txt is newer than
# the database (flags/targets may have changed), or a first-party TU
# on disk has no entry in it (added after the last configure).
stale=""
while IFS= read -r -d '' cml; do
  if [[ "${cml}" -nt "${db}" ]]; then
    stale="${cml#"${repo_root}/"} is newer than the compile database"
    break
  fi
done < <(find "${repo_root}" -name CMakeLists.txt \
           -not -path "${repo_root}/build*" -print0)
if [[ -z "${stale}" ]]; then
  for f in "${files[@]}"; do
    if ! grep -qF "${f}" "${db}"; then
      stale="${f} has no entry in the compile database"
      break
    fi
  done
fi
if [[ -n "${stale}" ]]; then
  echo "run_clang_tidy: compile database is stale: ${stale}" >&2
  echo "  re-configure: cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 2
fi

echo "run_clang_tidy: ${tidy} over ${#files[@]} files (db: ${db})"
status=0
printf '%s\n' "${files[@]}" | xargs -P "$(nproc)" -n 8 \
  "${tidy}" -p "${build_dir}" --quiet || status=1

if [[ "${status}" -ne 0 ]]; then
  echo "run_clang_tidy: findings above must be fixed (or the profile" >&2
  echo "  adjusted with justification in .clang-tidy)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
