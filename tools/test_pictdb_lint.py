#!/usr/bin/env python3
"""Self-test for tools/pictdb_lint.py.

Feeds each of the seven rules a bad and a good snippet from
tests/lint_corpus/ and asserts the rule fires on the bad one and stays
silent on the good one, plus the path-scope exemptions (storage may use
raw new, spill_file.cc may call mkstemp, and so on). The check
functions only use a file's *path* for scoping, so the synthetic paths
below never have to exist on disk.

Run directly (python3 tools/test_pictdb_lint.py) or via ctest as
pictdb_lint_selftest.
"""

from __future__ import annotations

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pictdb_lint as lint

CORPUS = lint.REPO_ROOT / "tests" / "lint_corpus"


def run_check(check, fake_path: Path, snippet_name: str, *, raw=False):
    """Run one path-based check over a corpus snippet, return findings."""
    text = (CORPUS / snippet_name).read_text(encoding="utf-8")
    if not raw:
        text = lint.strip_comments_and_strings(text)
    findings = []
    check(fake_path, text, findings)
    return findings


def rules(findings):
    return {rule for _, _, rule, _ in findings}


class PinGuardTest(unittest.TestCase):
    PATH = lint.SRC / "rtree" / "synthetic.cc"

    def test_fires_on_naked_pins(self):
        findings = run_check(lint.check_pin_guard, self.PATH,
                             "pin_guard_bad.cc")
        self.assertEqual(rules(findings), {"PIN-GUARD"})
        self.assertEqual(len(findings), 2)  # FetchPage and NewPage

    def test_silent_on_bound_pins(self):
        self.assertEqual(
            run_check(lint.check_pin_guard, self.PATH, "pin_guard_good.cc"),
            [])

    def test_declaration_header_exempt(self):
        header = lint.SRC / "storage" / "buffer_pool.h"
        self.assertEqual(
            run_check(lint.check_pin_guard, header, "pin_guard_bad.cc"), [])


class RawNewTest(unittest.TestCase):
    PATH = lint.SRC / "rtree" / "synthetic.cc"

    def test_fires_on_new_and_delete(self):
        findings = run_check(lint.check_raw_new, self.PATH, "raw_new_bad.cc")
        self.assertEqual(rules(findings), {"RAW-NEW"})
        self.assertEqual(len(findings), 4)  # 2 news + 2 deletes

    def test_silent_on_smart_pointers_and_idioms(self):
        self.assertEqual(
            run_check(lint.check_raw_new, self.PATH, "raw_new_good.cc"), [])

    def test_storage_internals_exempt(self):
        storage = lint.SRC / "storage" / "synthetic.cc"
        self.assertEqual(
            run_check(lint.check_raw_new, storage, "raw_new_bad.cc"), [])


class MutexWrapperTest(unittest.TestCase):
    PATH = lint.SRC / "service" / "synthetic.cc"

    def test_fires_on_std_lock_types(self):
        findings = run_check(lint.check_mutex_wrapper, self.PATH,
                             "mutex_wrapper_bad.cc")
        self.assertEqual(rules(findings), {"MUTEX-WRAPPER"})
        # std::mutex member + std::lock_guard<std::mutex> line.
        self.assertGreaterEqual(len(findings), 2)

    def test_silent_on_wrappers(self):
        self.assertEqual(
            run_check(lint.check_mutex_wrapper, self.PATH,
                      "mutex_wrapper_good.cc"), [])

    def test_wrapper_header_exempt(self):
        wrapper = lint.SRC / "common" / "mutex.h"
        self.assertEqual(
            run_check(lint.check_mutex_wrapper, wrapper,
                      "mutex_wrapper_bad.cc"), [])


class CrcVerifyTest(unittest.TestCase):
    def test_fires_when_trailer_helper_removed(self):
        findings = []
        lint.check_crc_verify(findings, text="Status Other() { return x; }")
        self.assertEqual(rules(findings), {"CRC-VERIFY"})
        self.assertIn("no longer verifies", findings[0][3])

    def test_fires_when_miss_path_bypasses_helper(self):
        text = (CORPUS / "crc_verify_bad.cc").read_text(encoding="utf-8")
        findings = []
        lint.check_crc_verify(findings, text=text)
        self.assertEqual(rules(findings), {"CRC-VERIFY"})
        self.assertIn("miss path", findings[0][3])

    def test_silent_on_verified_miss_path(self):
        text = (CORPUS / "crc_verify_good.cc").read_text(encoding="utf-8")
        findings = []
        lint.check_crc_verify(findings, text=text)
        self.assertEqual(findings, [])

    def test_silent_on_real_buffer_pool(self):
        findings = []
        lint.check_crc_verify(findings)
        self.assertEqual(findings, [])


class SeededRandomTest(unittest.TestCase):
    PATH = lint.SRC / "check" / "synthetic.cc"

    def test_fires_on_unseeded_entropy(self):
        findings = run_check(lint.check_seeded_random, self.PATH,
                             "seeded_random_bad.cc")
        self.assertEqual(rules(findings), {"SEEDED-RANDOM"})
        # random_device, mt19937, srand, rand — at least one each.
        hit = " ".join(msg for _, _, _, msg in findings)
        for what in ("std::random_device", "std::mt19937", "srand()",
                     "rand()"):
            self.assertIn(what, hit)

    def test_silent_on_project_prng(self):
        self.assertEqual(
            run_check(lint.check_seeded_random, self.PATH,
                      "seeded_random_good.cc"), [])

    def test_scoped_to_check_subtree(self):
        elsewhere = lint.SRC / "rtree" / "synthetic.cc"
        self.assertEqual(
            run_check(lint.check_seeded_random, elsewhere,
                      "seeded_random_bad.cc"), [])


class NoSuppressTest(unittest.TestCase):
    PATH = lint.SRC / "check" / "synthetic.cc"

    def test_fires_on_suppression_comments(self):
        findings = run_check(lint.check_no_suppress, self.PATH,
                             "no_suppress_bad.cc", raw=True)
        self.assertEqual(rules(findings), {"NO-SUPPRESS"})
        self.assertEqual(len(findings), 2)  # NOLINT + NO_THREAD_SAFETY

    def test_silent_on_clean_file(self):
        self.assertEqual(
            run_check(lint.check_no_suppress, self.PATH,
                      "no_suppress_good.cc", raw=True), [])

    def test_scoped_to_check_subtree(self):
        elsewhere = lint.SRC / "service" / "synthetic.cc"
        self.assertEqual(
            run_check(lint.check_no_suppress, elsewhere,
                      "no_suppress_bad.cc", raw=True), [])


class SpillTempTest(unittest.TestCase):
    PATH = lint.SRC / "rtree" / "synthetic.cc"

    def test_fires_on_adhoc_temp_apis(self):
        findings = run_check(lint.check_spill_temp, self.PATH,
                             "spill_temp_bad.cc")
        self.assertEqual(rules(findings), {"SPILL-TEMP"})
        self.assertEqual(len(findings), 2)  # tmpfile + mkstemp

    def test_silent_on_spill_manager(self):
        self.assertEqual(
            run_check(lint.check_spill_temp, self.PATH,
                      "spill_temp_good.cc"), [])

    def test_spill_file_owner_exempt(self):
        owner = lint.SRC / "storage" / "spill_file.cc"
        self.assertEqual(
            run_check(lint.check_spill_temp, owner, "spill_temp_bad.cc"), [])


class EndToEndTest(unittest.TestCase):
    def test_src_tree_is_clean(self):
        self.assertEqual(lint.run_lint(), [])


if __name__ == "__main__":
    unittest.main()
