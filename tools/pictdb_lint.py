#!/usr/bin/env python3
"""Repo-specific lint rules the generic tools cannot express.

Run from anywhere: paths are resolved relative to the repository root
(the parent of this script's directory). Exit status 0 = clean,
1 = findings (one per line: path:line: RULE: message).

Rules
-----
PIN-GUARD       Every BufferPool::FetchPage / NewPage call must bind its
                PageGuard (assignment, ASSIGN_OR_RETURN, or return) so
                the pin has an owner with a scope; a bare call pins a
                page with no one responsible for unpinning it.
RAW-NEW         No raw `new` / `delete` expressions outside storage
                internals (src/storage/). The leaky-singleton idiom
                (`static ... = *new T{...}`) for function-local tables
                is exempt.
MUTEX-WRAPPER   No `std::mutex` / `std::shared_mutex` /
                `std::condition_variable` / std lock RAII types outside
                src/common/mutex.h. Everything locks through the
                annotated pictdb::Mutex wrappers, otherwise clang's
                thread safety analysis cannot see the capability.
CRC-VERIFY      Structural check on src/storage/buffer_pool.cc: the
                miss-read path must verify the page CRC trailer
                (ReadPageWithRetry calls VerifyPageTrailer, and
                FetchPage's miss path reads through ReadPageWithRetry).
SEEDED-RANDOM   src/check/ may only use the project's seeded PRNG:
                std::random_device, std::mt19937, rand(), srand() and
                time-based seeds are forbidden (traces must replay
                byte-identically).
NO-SUPPRESS     src/check/ must not carry lint/analysis suppression
                comments (NOLINT, NO_THREAD_SAFETY_ANALYSIS): the
                verification subsystem is held to the strictest bar.
SPILL-TEMP      No ad-hoc temp-file APIs (tmpfile, tmpnam, tempnam,
                mkstemp, mkdtemp, std::filesystem::temp_directory_path)
                in src/ outside src/storage/spill_file.{h,cc}. Scratch
                files go through SpillFileManager so they are CRC-framed,
                fault-injectable, and unlinked with their handle —
                a stray temp file survives a crash and leaks disk.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

CXX_SUFFIXES = {".cc", ".h", ".cpp"}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | '//' | '/*' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "//"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "/*"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                if mode == "//":
                    mode = None
                out.append("\n")
            elif mode == "/*" and c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            elif mode in "\"'" and c == "\\":
                out.append("  ")
                i += 2
                continue
            elif mode in "\"'" and c == mode:
                mode = None
                out.append(c)
            else:
                out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def iter_source_files(root: Path):
    for path in sorted(root.rglob("*")):
        if path.suffix in CXX_SUFFIXES and path.is_file():
            yield path


def relpath(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


def check_pin_guard(path: Path, clean: str, findings: list):
    """FetchPage/NewPage results must be bound to a guard in scope."""
    if path.name == "buffer_pool.h":
        return  # the declarations themselves
    lines = clean.splitlines()
    for lineno, line in enumerate(lines, 1):
        m = re.search(r"\b(FetchPage|NewPage)\s*\(", line)
        if not m:
            continue
        # Declarations / definitions of the methods themselves.
        if re.search(r"StatusOr<\s*PageGuard\s*>", line):
            continue
        # Join the statement the call belongs to: walk back while the
        # preceding line does not end a statement/brace (wrapped
        # ASSIGN_OR_RETURN calls put the binding on an earlier line).
        start = lineno - 1
        while start > 0 and not re.search(r"[;{}]\s*$", lines[start - 1]):
            start -= 1
        stmt = " ".join(lines[start:lineno])
        bound = (
            "=" in stmt.split(m.group(0))[0]
            or "ASSIGN_OR_RETURN" in stmt
            or stmt.strip().startswith("return ")
            or re.search(r"\b(FetchPage|NewPage)\s*\([^)]*\)\s*\.", stmt)
        )
        if not bound:
            findings.append(
                (relpath(path), lineno, "PIN-GUARD",
                 f"{m.group(1)}() result must be bound to a PageGuard "
                 "(naked pin has no owner to unpin it)"))


def check_raw_new(path: Path, clean: str, findings: list):
    rel = relpath(path)
    if rel.startswith("src/storage/"):
        return  # storage internals own raw placement of page frames
    for lineno, line in enumerate(clean.splitlines(), 1):
        if re.search(r"=\s*delete\b", line):
            continue  # deleted special member
        if re.search(r"static\b.*\*\s*new\b", line):
            continue  # leaky-singleton table, intentional
        if re.search(r"\bnew\b\s+[A-Za-z_:<]", line):
            findings.append((rel, lineno, "RAW-NEW",
                             "raw new outside src/storage/ — use "
                             "std::make_unique / containers"))
        if re.search(r"\bdelete\b\s+[A-Za-z_*]|\bdelete\[\]", line):
            findings.append((rel, lineno, "RAW-NEW",
                             "raw delete outside src/storage/"))


MUTEX_FORBIDDEN = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable|condition_variable_any|lock_guard|scoped_lock|"
    r"unique_lock|shared_lock)\b")


def check_mutex_wrapper(path: Path, clean: str, findings: list):
    rel = relpath(path)
    if rel == "src/common/mutex.h":
        return  # the one place allowed to touch the std types
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = MUTEX_FORBIDDEN.search(line)
        if m:
            findings.append(
                (rel, lineno, "MUTEX-WRAPPER",
                 f"{m.group(0)} outside common/mutex.h — use "
                 "pictdb::Mutex / MutexLock / CondVar so the thread "
                 "safety analysis sees the lock"))


def check_crc_verify(findings: list, text: str | None = None):
    """Structural check on buffer_pool.cc. `text` is injectable so the
    lint self-test can exercise the rule on synthetic sources."""
    path = SRC / "storage" / "buffer_pool.cc"
    if text is None:
        text = path.read_text(encoding="utf-8")
    if "VerifyPageTrailer" not in text:
        findings.append(
            (relpath(path), 1, "CRC-VERIFY",
             "ReadPageWithRetry no longer verifies the page CRC trailer"))
        return
    # The miss path must read through the retry+verify helper, never the
    # raw disk manager.
    fetch = text.split("BufferPool::FetchPage", 1)
    if len(fetch) < 2 or "ReadPageWithRetry" not in fetch[1].split("\n}\n")[0]:
        findings.append(
            (relpath(path), 1, "CRC-VERIFY",
             "FetchPage miss path does not read via ReadPageWithRetry"))


def check_seeded_random(path: Path, clean: str, findings: list):
    rel = relpath(path)
    if not rel.startswith("src/check/"):
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        for pat, what in (
            (r"std::random_device", "std::random_device"),
            (r"std::mt19937", "std::mt19937"),
            (r"\bsrand\s*\(", "srand()"),
            (r"(?<![\w:])rand\s*\(\s*\)", "rand()"),
            (r"::now\s*\(\)\s*\.time_since_epoch.*seed", "time-based seed"),
        ):
            if re.search(pat, line):
                findings.append(
                    (rel, lineno, "SEEDED-RANDOM",
                     f"{what} in src/check/ — use the seeded "
                     "pictdb::Random so traces replay deterministically"))


def check_no_suppress(path: Path, raw_text: str, findings: list):
    """Runs on the RAW text: suppressions live in comments."""
    rel = relpath(path)
    if not rel.startswith("src/check/"):
        return
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        if "NOLINT" in line or "NO_THREAD_SAFETY_ANALYSIS" in line:
            findings.append(
                (rel, lineno, "NO-SUPPRESS",
                 "analysis suppression in src/check/ — the verification "
                 "subsystem must pass the analyses unassisted"))


SPILL_TEMP_FORBIDDEN = re.compile(
    r"\b(tmpfile|tmpnam|tempnam|mkstemp|mkdtemp)\s*\(|"
    r"std::filesystem::temp_directory_path")


def check_spill_temp(path: Path, clean: str, findings: list):
    rel = relpath(path)
    if rel in ("src/storage/spill_file.h", "src/storage/spill_file.cc"):
        return  # the sanctioned owner of scratch-file lifecycle
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = SPILL_TEMP_FORBIDDEN.search(line)
        if m:
            findings.append(
                (rel, lineno, "SPILL-TEMP",
                 f"{m.group(0).rstrip('(').strip()} outside "
                 "storage/spill_file — scratch files must go through "
                 "SpillFileManager (CRC-framed, fault-injectable, "
                 "unlinked with the handle)"))


def run_lint() -> list:
    findings = []
    for path in iter_source_files(SRC):
        raw = path.read_text(encoding="utf-8")
        clean = strip_comments_and_strings(raw)
        check_pin_guard(path, clean, findings)
        check_raw_new(path, clean, findings)
        check_mutex_wrapper(path, clean, findings)
        check_seeded_random(path, clean, findings)
        check_no_suppress(path, raw, findings)
        check_spill_temp(path, clean, findings)
    check_crc_verify(findings)
    return findings


def main() -> int:
    findings = run_lint()
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: {rule}: {msg}")
    if findings:
        print(f"pictdb_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("pictdb_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
