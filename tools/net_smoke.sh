#!/usr/bin/env bash
# End-to-end smoke of the network serving tier: pack a 10k-object tree,
# serve it over a unix socket, soak it with ~10s of mixed traffic
# (window/point/kNN/join/PSQL) including a mid-run 1% fault-injection
# episode, verify every answer against the load generator's local
# oracle, then drain the server with SIGTERM and require a clean exit.
#
# Usage: tools/net_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/bench/pictdb_server"
LOADGEN="$BUILD_DIR/bench/loadgen"
WORK="$(mktemp -d /tmp/pictdb-net-smoke.XXXXXX)"
SOCK="$WORK/pictdb.sock"
SERVER_LOG="$WORK/server.log"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

OBJECTS=10000
OVERLAY=300

"$SERVER" --unix="$SOCK" --objects=$OBJECTS --overlay=$OVERLAY \
  --cache-bytes=4000000 --allow-admin >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 200); do
  grep -q READY "$SERVER_LOG" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$SERVER_LOG"; exit 1; }
  sleep 0.1
done
grep READY "$SERVER_LOG"

"$LOADGEN" --endpoint="unix:$SOCK" --objects=$OBJECTS --overlay=$OVERLAY \
  --duration=10 --clients=6 --query-pool=128 --degraded-ok \
  --fault-start=4 --fault-duration=2 --fault-rate=0.01 \
  --slo-goodput=0.95

# Graceful drain: SIGTERM must produce exit 0 and a stats dump.
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "server did not drain cleanly" >&2
  cat "$SERVER_LOG"
  exit 1
fi
grep -q "drained; final stats:" "$SERVER_LOG"
echo "net smoke OK"
