#!/usr/bin/env python3
"""Compare two `search_micro --json` dumps.

Usage:
    ./build/bench/search_micro --json > before.json   # e.g. on the base rev
    ./build/bench/search_micro --json > after.json
    python3 tools/bench_diff.py before.json after.json [--min-speedup 1.5]

Prints a per-metric table (before, after, ratio) and exits nonzero when
--min-speedup is given and after's active-kernel window throughput does
not beat before's scalar throughput by at least that factor — the
acceptance gate recorded in EXPERIMENTS.md.
"""

import argparse
import json
import sys

# Throughput metrics: higher is better. Costs: lower is better.
HIGHER_IS_BETTER = [
    "scalar_window_qps",
    "active_window_qps",
    "batch_window_qps",
]
LOWER_IS_BETTER = [
    "decode_ns_per_node",
]


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless after.active_window_qps >= "
        "min_speedup * before.scalar_window_qps",
    )
    args = parser.parse_args()

    before = load(args.before)
    after = load(args.after)

    for key in ("objects", "windows", "batch_size"):
        if before.get(key) != after.get(key):
            print(
                f"warning: {key} differs ({before.get(key)} vs "
                f"{after.get(key)}); ratios are not apples to apples",
                file=sys.stderr,
            )

    print(f"kernel: {before.get('kernel')} -> {after.get('kernel')}")
    print(f"{'metric':<28} {'before':>14} {'after':>14} {'ratio':>8}")
    for key in HIGHER_IS_BETTER + LOWER_IS_BETTER:
        b, a = before.get(key), after.get(key)
        if b is None or a is None:
            continue
        ratio = a / b if b else float("inf")
        arrow = ""
        if key in LOWER_IS_BETTER:
            arrow = " (lower is better)"
        print(f"{key:<28} {b:>14.1f} {a:>14.1f} {ratio:>7.2f}x{arrow}")

    if args.min_speedup is not None:
        base = before.get("scalar_window_qps")
        new = after.get("active_window_qps")
        if not base or not new:
            print("missing throughput fields for the gate", file=sys.stderr)
            return 2
        speedup = new / base
        verdict = "PASS" if speedup >= args.min_speedup else "FAIL"
        print(
            f"gate: active({new:.1f}) / scalar-before({base:.1f}) = "
            f"{speedup:.2f}x vs required {args.min_speedup:.2f}x -> {verdict}"
        )
        return 0 if speedup >= args.min_speedup else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
