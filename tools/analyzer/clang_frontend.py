"""clang -ast-dump=json bridge (DESIGN.md §15).

Lowers clang's JSON AST into the same ir.Model the native frontend
produces, so the checkers run unchanged. This frontend is *advisory*:
it requires a clang driver on PATH (or $PICTDB_CLANG), is exercised by
the continue-on-error leg of the static-analysis CI job, and is never
what ctest gates on — the hermetic native frontend is.

AST dumps are cached under --cache-dir keyed by the SHA-256 of the
file's bytes plus the exact clang argument vector, so unchanged files
cost nothing on re-analysis (the CI job persists this directory).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess

from ir import (Call, ClassInfo, Function, Lambda, Model, Stmt, Token,
                TranslationUnit, VarInfo)
from parse import Parser  # scope factory reuse


class FrontendError(RuntimeError):
    pass


def clang_binary() -> str:
    return os.environ.get("PICTDB_CLANG") or shutil.which("clang") or ""


def clang_available() -> bool:
    return bool(clang_binary())


def compdb_args(compdb_path: str, src: str):
    """Extra compiler args for `src` from compile_commands.json."""
    if not compdb_path or not os.path.isfile(compdb_path):
        return []
    try:
        with open(compdb_path, "r", encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, ValueError):
        return []
    want = os.path.abspath(src)
    for entry in db:
        path = os.path.join(entry.get("directory", ""),
                            entry.get("file", ""))
        if os.path.abspath(path) == want:
            args = entry.get("arguments")
            if not args:
                args = entry.get("command", "").split()
            # keep -I/-D/-std/-isystem; drop compiler, -o, -c, the file
            keep = []
            skip_next = False
            for a in args[1:]:
                if skip_next:
                    skip_next = False
                    continue
                if a in ("-o", "-c"):
                    skip_next = a == "-o"
                    continue
                if a.startswith(("-I", "-D", "-std", "-isystem", "-f")):
                    keep.append(a)
            return keep
    return []


def ast_dump(src: str, compdb: str, cache_dir: str, verbose=False) -> dict:
    clang = clang_binary()
    if not clang:
        raise FrontendError("no clang driver found")
    args = [clang, "-x", "c++", "-fsyntax-only",
            "-Xclang", "-ast-dump=json", "-Xclang",
            "-ast-dump-filter-implicit"]
    extra = compdb_args(compdb, src)
    if not any(a.startswith("-std") for a in extra):
        extra.append("-std=c++20")
    args += extra + [src]

    key = hashlib.sha256()
    with open(src, "rb") as f:
        key.update(f.read())
    key.update("\0".join(args).encode())
    digest = key.hexdigest()
    cache_path = ""
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        cache_path = os.path.join(cache_dir, digest + ".json")
        if os.path.isfile(cache_path):
            with open(cache_path, "r", encoding="utf-8") as f:
                return json.load(f)
    try:
        out = subprocess.run(args, capture_output=True, text=True,
                             timeout=300)
    except (OSError, subprocess.TimeoutExpired) as e:
        raise FrontendError(f"clang failed on {src}: {e}")
    if not out.stdout.strip():
        raise FrontendError(
            f"clang produced no AST for {src}: {out.stderr[:500]}")
    try:
        tree = json.loads(out.stdout)
    except ValueError as e:
        raise FrontendError(f"bad AST json for {src}: {e}")
    if cache_path:
        with open(cache_path, "w", encoding="utf-8") as f:
            json.dump(tree, f)
    if verbose:
        print(f"clang_frontend: dumped {src} "
              f"({len(out.stdout)} bytes)")
    return tree


class Lowerer:
    """One TU's JSON AST -> ir.TranslationUnit."""

    def __init__(self, path: str):
        self.path = path
        self.unit = TranslationUnit(file=path)
        self.cur_line = 1
        self._scope_factory = Parser(path, "")

    # clang omits unchanged line numbers; track statefully.
    def line_of(self, node) -> int:
        for key in ("loc", "range"):
            loc = node.get(key)
            if not isinstance(loc, dict):
                continue
            if key == "range":
                loc = loc.get("begin", {})
            for sub in (loc, loc.get("spellingLoc", {}),
                        loc.get("expansionLoc", {})):
                if isinstance(sub, dict) and "line" in sub:
                    self.cur_line = sub["line"]
                    return self.cur_line
        return self.cur_line

    def in_main_file(self, node) -> bool:
        loc = node.get("loc", {})
        f = loc.get("file") or loc.get("spellingLoc", {}).get("file")
        if f is None:
            return True  # same file as previous node
        return os.path.abspath(f) == os.path.abspath(self.path)

    def new_scope(self, parent, kind="block"):
        return self._scope_factory.new_scope(parent, kind)

    # -- declarations --------------------------------------------------

    def lower(self, root) -> TranslationUnit:
        self.walk_decls(root.get("inner", []), ns="", cls="")
        return self.unit

    def walk_decls(self, nodes, ns: str, cls: str):
        for node in nodes:
            kind = node.get("kind", "")
            self.line_of(node)
            if kind == "NamespaceDecl":
                name = node.get("name", "")
                sub = ns + ("::" + name if ns and name else name)
                self.walk_decls(node.get("inner", []), sub, cls)
            elif kind in ("CXXRecordDecl", "ClassTemplateDecl"):
                if kind == "ClassTemplateDecl":
                    inner = [n for n in node.get("inner", [])
                             if n.get("kind") == "CXXRecordDecl"]
                    for n in inner:
                        self.walk_decls([n], ns, cls)
                    continue
                name = node.get("name", "")
                if not name or not node.get("completeDefinition"):
                    continue
                qual = f"{cls}::{name}" if cls else name
                info = self.unit.classes.setdefault(
                    qual, ClassInfo(qual, ns, file=self.path,
                                    line=self.line_of(node)))
                for sub in node.get("inner", []):
                    skind = sub.get("kind", "")
                    if skind == "FieldDecl" and sub.get("name"):
                        info.members[sub["name"]] = \
                            sub.get("type", {}).get("qualType", "")
                    elif skind in ("CXXMethodDecl", "CXXConstructorDecl",
                                   "CXXDestructorDecl"):
                        mname = sub.get("name", "")
                        qt = sub.get("type", {}).get("qualType", "")
                        if mname and "(" in qt:
                            info.method_ret[mname] = qt.split("(", 1)[0]
                        self.maybe_function(sub, ns, qual)
                    elif skind == "CXXRecordDecl":
                        self.walk_decls([sub], ns, qual)
            elif kind in ("FunctionDecl", "CXXMethodDecl",
                          "CXXConstructorDecl", "CXXDestructorDecl"):
                self.maybe_function(node, ns, cls)
            elif kind in ("LinkageSpecDecl", "ExportDecl"):
                self.walk_decls(node.get("inner", []), ns, cls)

    def maybe_function(self, node, ns: str, cls: str):
        body_node = None
        for sub in node.get("inner", []):
            if sub.get("kind") == "CompoundStmt":
                body_node = sub
        if body_node is None:
            return
        if not self.in_main_file(node):
            return
        name = node.get("name", "")
        qt = node.get("type", {}).get("qualType", "")
        ret = qt.split("(", 1)[0].strip() if "(" in qt else ""
        fn_cls = cls.split("::")[-1] if cls else ""
        # out-of-line methods: clang reports the semantic parent
        parent = node.get("parentDeclContextId")
        _ = parent
        line = self.line_of(node)
        scope = self.new_scope(None, "function")
        params = []
        for sub in node.get("inner", []):
            if sub.get("kind") == "ParmVarDecl" and sub.get("name"):
                v = VarInfo(sub["name"],
                            sub.get("type", {}).get("qualType", ""),
                            self.line_of(sub), scope, len(scope.vars))
                scope.vars[v.name] = v
                params.append(v)
        body = self.lower_block(body_node, scope)
        self.unit.functions.append(Function(
            name=name, cls=fn_cls, namespace=ns, ret_type=ret,
            params=params, body=body, line=line, file=self.path))

    # -- statements ----------------------------------------------------

    def lower_block(self, node, scope) -> Stmt:
        block = Stmt("block", self.line_of(node), scope=scope)
        for sub in node.get("inner", []):
            s = self.lower_stmt(sub, scope)
            if s is not None:
                block.children.append(s)
        return block

    def lower_stmt(self, node, scope):
        kind = node.get("kind", "")
        line = self.line_of(node)
        if kind == "CompoundStmt":
            return self.lower_block(node, self.new_scope(scope))
        if kind == "DeclStmt":
            decls = [n for n in node.get("inner", [])
                     if n.get("kind") == "VarDecl"]
            if not decls:
                return None
            first = None
            for d in decls:
                s = self.lower_vardecl(d, scope)
                first = first or s
            return first
        if kind == "ReturnStmt":
            stmt = Stmt("return", line, scope=scope)
            for sub in node.get("inner", []):
                self.lower_expr(sub, stmt, scope)
            return stmt
        if kind == "IfStmt":
            stmt = Stmt("if", line, scope=self.new_scope(scope))
            inner = node.get("inner", [])
            arms = []
            # layout: [init?, condVar?, cond, then, else?]
            exprs, stmts = [], []
            for sub in inner:
                k = sub.get("kind", "")
                if k in ("CompoundStmt",) or k.endswith("Stmt"):
                    stmts.append(sub)
                else:
                    exprs.append(sub)
            for e in exprs:
                self.lower_expr(e, stmt, stmt.scope)
            arms.append(None)
            if stmts and stmts[0].get("kind") == "DeclStmt":
                arms[0] = self.lower_stmt(stmts.pop(0), stmt.scope)
            for s in stmts[:2]:
                low = self.lower_stmt(s, stmt.scope)
                if low is not None and low.kind != "block":
                    wrap = Stmt("block", low.line,
                                scope=self.new_scope(stmt.scope))
                    wrap.children.append(low)
                    low = wrap
                arms.append(low)
            stmt.arms = arms
            return stmt
        if kind in ("ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt"):
            loop_scope = self.new_scope(scope, "loop")
            stmt = Stmt("loop", line, scope=loop_scope)
            inner = node.get("inner", [])
            body = None
            for sub in inner:
                k = sub.get("kind", "")
                if k == "CompoundStmt":
                    body = self.lower_block(sub, loop_scope)
                elif k == "DeclStmt":
                    s = self.lower_stmt(sub, loop_scope)
                    if s is not None:
                        stmt.arms.append(s)
                elif k.endswith("Expr") or k.endswith("Operator") or \
                        k == "ImplicitCastExpr":
                    self.lower_expr(sub, stmt, loop_scope)
            if body is None:
                body = Stmt("block", line, scope=loop_scope)
            stmt.arms.append(body)
            return stmt
        if kind == "SwitchStmt":
            stmt = Stmt("switch", line, scope=scope)
            for sub in node.get("inner", []):
                if sub.get("kind") == "CompoundStmt":
                    branch = self.lower_block(sub, self.new_scope(scope))
                    stmt.arms.append(branch)
                else:
                    self.lower_expr(sub, stmt, scope)
            return stmt
        if kind in ("CaseStmt", "DefaultStmt"):
            wrap = Stmt("block", line, scope=self.new_scope(scope))
            for sub in node.get("inner", []):
                s = self.lower_stmt(sub, wrap.scope)
                if s is not None:
                    wrap.children.append(s)
            return wrap
        if kind in ("CXXTryStmt",):
            stmt = Stmt("try", line, scope=scope)
            for sub in node.get("inner", []):
                s = self.lower_stmt(sub, scope)
                if s is not None:
                    stmt.arms.append(s)
            return stmt
        if kind in ("BreakStmt", "ContinueStmt", "NullStmt", "GotoStmt",
                    "LabelStmt", "DeclRefExpr"):
            return Stmt("expr", line, scope=scope)
        # expression statement (incl. (void) casts, assignments, calls)
        stmt = Stmt("expr", line, scope=scope)
        self.lower_expr(node, stmt, scope)
        return stmt

    def lower_vardecl(self, node, scope):
        name = node.get("name", "")
        vtype = node.get("type", {}).get("qualType", "")
        line = self.line_of(node)
        stmt = Stmt("decl", line, name=name, vtype=vtype, scope=scope)
        if name:
            scope.vars[name] = VarInfo(name, vtype, line, scope,
                                       len(scope.vars))
        for sub in node.get("inner", []):
            self.lower_expr(sub, stmt, scope)
        return stmt

    # -- expressions: emit pseudo-tokens + Call/Lambda records ---------

    def lower_expr(self, node, stmt, scope):
        kind = node.get("kind", "")
        line = self.line_of(node)

        def tok(text, tkind="punct"):
            stmt.tokens.append(Token(tkind, text, line))

        if kind in ("ImplicitCastExpr", "ExprWithCleanups",
                    "MaterializeTemporaryExpr", "ConstantExpr",
                    "ParenExpr", "CXXBindTemporaryExpr",
                    "CXXFunctionalCastExpr", "CXXConstructExpr",
                    "InitListExpr", "CXXDefaultArgExpr", "UnaryOperator",
                    "ArraySubscriptExpr", "ConditionalOperator",
                    "CXXThisExpr", "PackExpansionExpr"):
            if kind == "CXXThisExpr":
                tok("this", "id")
            for sub in node.get("inner", []):
                self.lower_expr(sub, stmt, scope)
            return
        if kind == "CStyleCastExpr":
            if node.get("type", {}).get("qualType", "") == "void":
                tok("(")
                stmt.tokens.append(Token("id", "void", line))
                tok(")")
            for sub in node.get("inner", []):
                self.lower_expr(sub, stmt, scope)
            return
        if kind == "DeclRefExpr":
            ref = node.get("referencedDecl", {})
            tok(ref.get("name", node.get("name", "")), "id")
            return
        if kind == "MemberExpr":
            for sub in node.get("inner", []):
                self.lower_expr(sub, stmt, scope)
            tok("->" if node.get("isArrow") else ".")
            member = node.get("name", "")
            tok(member, "id")
            return
        if kind in ("BinaryOperator", "CompoundAssignOperator"):
            inner = node.get("inner", [])
            op = node.get("opcode", "")
            if inner:
                self.lower_expr(inner[0], stmt, scope)
            tok(op or "?")
            for sub in inner[1:]:
                self.lower_expr(sub, stmt, scope)
            return
        if kind in ("CallExpr", "CXXMemberCallExpr",
                    "CXXOperatorCallExpr"):
            inner = node.get("inner", [])
            if not inner:
                return
            mark = len(stmt.tokens)
            self.lower_expr(inner[0], stmt, scope)  # callee
            # derive name + receiver chain from the emitted tokens
            emitted = stmt.tokens[mark:]
            name = ""
            recv_parts = []
            ids = [(i, t) for i, t in enumerate(emitted) if t.kind == "id"]
            if ids:
                name = ids[-1][1].text
                j = len(emitted) - 1
                while j >= 1:
                    if emitted[j].kind == "id" and \
                            emitted[j - 1].text in (".", "->") and \
                            emitted[j].text != name:
                        recv_parts.append(emitted[j].text)
                        j -= 2
                    elif emitted[j].text in (".", "->"):
                        j -= 1
                    elif emitted[j].kind == "id" and emitted[j].text == name:
                        j -= 1
                    else:
                        break
            recv = ".".join(reversed(recv_parts))
            tok("(")
            args = []
            for sub in inner[1:]:
                amark = len(stmt.tokens)
                self.lower_expr(sub, stmt, scope)
                args.append(stmt.tokens[amark:])
                tok(",")
            if stmt.tokens and stmt.tokens[-1].text == ",":
                stmt.tokens.pop()
            tok(")")
            if name:
                stmt.calls.append(Call(name, recv, args, line))
            return
        if kind == "LambdaExpr":
            body_node = None
            for sub in node.get("inner", []):
                if sub.get("kind") == "CompoundStmt":
                    body_node = sub
            lam_scope = self.new_scope(scope, "lambda")
            body = self.lower_block(body_node, lam_scope) if body_node \
                else Stmt("block", line, scope=lam_scope)
            usage = "stored" if stmt.kind in ("decl", "return") else "arg"
            stmt.lambdas.append(Lambda([], body, line, usage))
            return
        if kind in ("IntegerLiteral", "FloatingLiteral", "StringLiteral",
                    "CXXBoolLiteralExpr", "CharacterLiteral",
                    "CXXNullPtrLiteralExpr"):
            stmt.tokens.append(Token("num", node.get("value", "0"), line))
            return
        # anything else: recurse, keep what we understand
        for sub in node.get("inner", []):
            self.lower_expr(sub, stmt, scope)


def build_model(files, compdb="", cache_dir="", verbose=False) -> Model:
    model = Model()
    for path in files:
        tree = ast_dump(path, compdb, cache_dir, verbose=verbose)
        model.add_unit(Lowerer(path).lower(tree))
    return model
