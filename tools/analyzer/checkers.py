"""The four semantic checkers over the ir.Model (DESIGN.md §15).

PIN-ESCAPE   pointers/spans derived from a PageGuard/SoaNode must not
             outlive the guard: no return, no assignment to a variable
             whose scope outlives the guard, no stored-lambda capture,
             no insertion into an outer container.
LOCK-ORDER   the whole-program lock acquisition graph (RAII wrappers +
             explicit Lock/Unlock, interprocedural via per-function
             acquire summaries) must be consistent with the numbered
             hierarchy in the lock hierarchy file: while holding a lock
             of level L you may only acquire strictly greater levels.
STATUS-DROP  Status/StatusOr results discarded via (void) casts without
             a justification comment, bare call statements, invoked
             lambdas, or locals overwritten/never read.
WAL-ORDER    inside the configured write-path files, every mutating
             call on an RTree receiver must be sequentially dominated by
             a Wal append on the same path.

Every finding is (file, line, RULE, message).
"""

from __future__ import annotations

import re

from ir import Call, Function, Lambda, Model, Scope, Stmt, base_type, \
    is_pointerish

# ---------------------------------------------------------------------------
# shared configuration

GUARD_TYPES = {"PageGuard"}
OWNER_TYPES = {"SoaNode"}
DERIVERS = {"data", "mutable_data", "rects"}
# Callees whose function-object argument outlives the call site.
STORING_CALLEES = {"Submit", "TrySubmit", "SubmitWithCallback",
                   "SetCommitHook", "set_commit_hook", "push_back",
                   "emplace_back", "insert", "emplace", "assign"}
CONTAINER_INSERTERS = {"push_back", "emplace_back", "insert", "emplace",
                       "assign", "push"}

STATUS_TYPES = {"Status", "StatusOr"}
CONSUME_MACROS = {"PICTDB_RETURN_IF_ERROR", "PICTDB_ASSIGN_OR_RETURN",
                  "PICTDB_CHECK", "PICTDB_CHECK_OK", "EXPECT_TRUE",
                  "ASSERT_TRUE", "EXPECT_OK", "ASSERT_OK"}

RAII_LOCKS = {"MutexLock": "exclusive", "WriterMutexLock": "exclusive",
              "ReaderMutexLock": "shared"}
LOCK_CLASSES = {"Mutex", "SharedMutex"}
ACQUIRE_METHODS = {"Lock": "exclusive", "LockShared": "shared"}
RELEASE_METHODS = {"Unlock", "UnlockShared"}
NONBLOCKING_METHODS = {"TryLock"}
# Classes whose own bodies are the lock implementation — never analyzed.
LOCK_IMPL_CLASSES = {"Mutex", "SharedMutex", "MutexLock", "WriterMutexLock",
                     "ReaderMutexLock", "CondVar"}

# Functions that replay/recover from the log or bulk-build outside it:
# their RTree mutations are exempt from WAL-ORDER by construction.
WAL_EXEMPT_RE = re.compile(r"Replay|Recover|BulkLoad|Scrub|Repack")
WAL_MUTATORS = {"Insert", "Delete", "Update"}
WAL_MUTATOR_RECV = {"RTree"}
WAL_APPENDERS = {"Append"}
WAL_APPENDER_RECV = {"Wal"}


class Hierarchy:
    """Parsed lock hierarchy file: numbered levels + accessor mappings.

    Line formats (# comments allowed):
        level <N> <Class::member>
        accessor <Class::Method> -> <Class::member>
    """

    def __init__(self):
        self.levels = {}  # lock id -> int
        self.accessors = {}  # 'Class::Method' -> lock id

    @staticmethod
    def load(path: str) -> "Hierarchy":
        h = Hierarchy()
        with open(path, "r", encoding="utf-8") as f:
            for raw in f:
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if parts[0] == "level" and len(parts) >= 3:
                    h.levels[parts[2]] = int(parts[1])
                elif parts[0] == "accessor" and len(parts) >= 4 \
                        and parts[2] == "->":
                    h.accessors[parts[1]] = parts[3]
        return h


# ---------------------------------------------------------------------------
# model helpers


class Resolver:
    """Type/receiver/call-target resolution shared by the checkers."""

    def __init__(self, model: Model):
        self.model = model
        self._class_by_suffix = {}
        for name in model.classes:
            last = name.split("::")[-1]
            self._class_by_suffix.setdefault(last, name)

    def find_class(self, base: str, ctx_cls: str = ""):
        if not base:
            return None
        if base in self.model.classes:
            return self.model.classes[base]
        if ctx_cls:
            # a bare name inside a method prefers the enclosing class's
            # nested type ('Shard' in BufferPool -> BufferPool::Shard)
            ctx = self.find_class(ctx_cls)
            if ctx is not None:
                nested = self.model.classes.get(f"{ctx.name}::{base}")
                if nested is not None:
                    return nested
        full = self._class_by_suffix.get(base)
        return self.model.classes.get(full) if full else None

    def chain_type(self, fn: Function, scope: Scope, chain: str):
        """Resolve 'shard.mu' / 'tree_' / 'pool_' to (owner_class_name,
        member_name, type_spelling). owner/member are '' for plain
        locals. Returns None when any hop is unknown."""
        if not chain:
            return None
        parts = chain.split(".")
        first, rest = parts[0], parts[1:]
        owner, member, vtype = "", "", ""
        v = scope.lookup(first) if scope is not None else None
        if v is not None:
            vtype = v.vtype
        elif first == "this":
            cls = self.find_class(fn.cls)
            if cls is None:
                return None
            vtype = cls.name
        else:
            cls = self.find_class(fn.cls)
            if cls is not None and first in cls.members:
                owner, member = cls.name, first
                vtype = cls.members[first]
            else:
                return None
        for part in rest:
            cls = self.find_class(base_type(vtype), ctx_cls=fn.cls)
            if cls is None or part not in cls.members:
                return None
            owner, member = cls.name, part
            vtype = cls.members[part]
        return (owner, member, vtype)

    def callee(self, fn: Function, scope: Scope, call: Call):
        """Best-effort call-target resolution -> list[Function]."""
        name = call.name
        if name not in self.model.by_name:
            return []
        if call.qualifier:
            return list(self.model.by_name[name])
        if call.recv:
            info = self.chain_type(fn, scope, call.recv)
            if info is not None:
                base = base_type(info[2])
                target = self.model.by_key.get(f"{base}::{name}")
                if target is not None:
                    return [target]
                if self.find_class(base) is not None:
                    # the receiver class is known but has no definition
                    # of this method here — virtual dispatch through a
                    # base interface (or an out-of-repo body): union
                    # every method definition with this name.
                    return [f for f in self.model.by_name[name] if f.cls]
                return []
            return []
        # unqualified: same class first, then unique free function
        if fn.cls:
            target = self.model.by_key.get(f"{fn.cls}::{name}")
            if target is not None:
                return [target]
        frees = [f for f in self.model.by_name[name] if not f.cls]
        return frees[:1]

    def call_ret_type(self, fn: Function, scope: Scope, call: Call) -> str:
        """Return-type spelling of a call, '' if unknown."""
        if call.recv:
            info = self.chain_type(fn, scope, call.recv)
            if info is not None:
                cls = self.find_class(base_type(info[2]))
                if cls is not None and call.name in cls.method_ret:
                    return cls.method_ret[call.name]
        targets = self.callee(fn, scope, call)
        if targets:
            return targets[0].ret_type
        if fn.cls and not call.recv:
            cls = self.find_class(fn.cls)
            if cls is not None and call.name in cls.method_ret:
                return cls.method_ret[call.name]
        return ""


def iter_arms(stmt: Stmt):
    """(pre_stmts, branch_blocks) for a compound statement: non-block
    arms (if/for init statements) execute unconditionally first."""
    pre, branches = [], []
    for arm in stmt.arms:
        if arm is None:
            continue
        if arm.kind == "block":
            branches.append(arm)
        else:
            pre.append(arm)
    return pre, branches


def walk_stmts(root: Stmt):
    stack = [root]
    while stack:
        s = stack.pop()
        yield s
        stack.extend(s.children)
        stack.extend(a for a in s.arms if a is not None)
        for lam in s.lambdas:
            stack.append(lam.body)


def stmt_ids(stmt: Stmt):
    for t in stmt.tokens:
        if t.kind == "id":
            yield t


# ---------------------------------------------------------------------------
# PIN-ESCAPE


class PinEscape:
    RULE = "PIN-ESCAPE"

    def __init__(self, resolver: Resolver):
        self.r = resolver

    def check(self, fn: Function):
        findings = []
        # varinfo id -> the guard/owner VarInfo it aliases
        sources = {}
        derived = {}
        self._walk(fn, fn.body, sources, derived, findings)
        return findings

    # -- helpers

    def _is_source_decl(self, vtype: str) -> bool:
        return base_type(vtype) in (GUARD_TYPES | OWNER_TYPES)

    def _derivation_source(self, stmt, scope, sources, derived):
        """Does this token stream derive a raw view from a source?
        Returns the source VarInfo or None. Derivation = `src.data()` /
        `src.rects()` chain, or mention of an already-derived var."""
        toks = stmt.tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            v = scope.lookup(t.text)
            if v is None:
                continue
            if id(v) in derived:
                return derived[id(v)]
            if id(v) in sources:
                nxt = toks[i + 1].text if i + 1 < len(toks) else ""
                nxt2 = toks[i + 2].text if i + 2 < len(toks) else ""
                if nxt in (".", "->") and nxt2 in DERIVERS:
                    return v
        return None

    def _mentions(self, toks, scope, sources, derived, deriving_only):
        """Names of guard/derived vars referenced in `toks`. With
        deriving_only, a source var counts only via a DERIVERS call."""
        hits = []
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            v = scope.lookup(t.text)
            if v is None:
                continue
            if id(v) in derived:
                hits.append((t, v, derived[id(v)]))
            elif id(v) in sources:
                nxt = toks[i + 1].text if i + 1 < len(toks) else ""
                nxt2 = toks[i + 2].text if i + 2 < len(toks) else ""
                if not deriving_only or (nxt in (".", "->")
                                         and nxt2 in DERIVERS):
                    hits.append((t, v, v))
        return hits

    def _ret_pointerish(self, fn: Function) -> bool:
        """Is the function's return type an aliasing view once the
        StatusOr wrapper is peeled off?"""
        t = fn.ret_type.strip()
        m = re.match(r"^(?:\w+::)*StatusOr<(.+)>$", t)
        if m:
            t = m.group(1)
        return is_pointerish(t)

    def _outlives(self, target, source) -> bool:
        """Does variable `target` outlive `source`? True when target's
        scope is an ancestor of source's, or same scope with an earlier
        declaration (destroyed later)."""
        if target.scope is source.scope:
            return target.ordinal < source.ordinal
        return target.scope.is_ancestor_of(source.scope)

    def _walk(self, fn, block, sources, derived, findings):
        for stmt in block.children:
            scope = stmt.scope or block.scope
            if stmt.kind == "decl":
                if self._is_source_decl(stmt.vtype):
                    v = scope.lookup(stmt.name)
                    if v is not None:
                        sources[id(v)] = v
                elif is_pointerish(stmt.vtype):
                    src = self._derivation_source(stmt, scope, sources,
                                                  derived)
                    if src is not None:
                        v = scope.lookup(stmt.name)
                        if v is not None:
                            derived[id(v)] = src
            elif stmt.kind == "expr":
                self._check_assign(fn, stmt, scope, sources, derived,
                                   findings)
            elif stmt.kind == "return" and self._ret_pointerish(fn):
                # a value-typed return copies out of the page (fine);
                # only a pointerish return aliases it past the unpin.
                for (tok, v, src) in self._mentions(
                        stmt.tokens, scope, sources, derived,
                        deriving_only=True):
                    findings.append((fn.file, tok.line, self.RULE,
                                     f"'{tok.text}' derived from pinned "
                                     f"page data is returned from "
                                     f"'{fn.name}' and outlives its guard"))
            self._check_calls(fn, stmt, scope, sources, derived, findings)
            self._check_lambdas(fn, stmt, scope, sources, derived, findings)
            # recurse
            if stmt.kind == "block":
                self._walk(fn, stmt, sources, derived, findings)
            else:
                pre, branches = iter_arms(stmt)
                for p in pre:
                    fake = Stmt("block", p.line, scope=p.scope or scope)
                    fake.children.append(p)
                    self._walk(fn, fake, sources, derived, findings)
                for b in branches:
                    self._walk(fn, b, sources, derived, findings)
            for lam in stmt.lambdas:
                self._walk(fn, lam.body, sources, derived, findings)

    def _check_assign(self, fn, stmt, scope, sources, derived, findings):
        toks = stmt.tokens
        if len(toks) < 3 or toks[0].kind != "id" or toks[1].text != "=":
            return
        rhs = Stmt("expr", stmt.line, tokens=toks[2:], scope=scope)
        src = self._derivation_source(rhs, scope, sources, derived)
        if src is None:
            return
        target = scope.lookup(toks[0].text)
        if target is None:
            # unknown name: a pointerish class member assignment escapes
            cls = self.r.find_class(fn.cls)
            if cls is not None and \
                    is_pointerish(cls.members.get(toks[0].text, "")):
                findings.append((fn.file, stmt.line, self.RULE,
                                 f"pinned page pointer stored into member "
                                 f"'{toks[0].text}' outlives guard "
                                 f"'{src.name}'"))
            return
        # copying a VALUE computed from page bytes (PageId, Key, ...)
        # does not alias the page; only pointerish targets escape.
        if not is_pointerish(target.vtype) and \
                base_type(target.vtype) != "auto":
            return
        if self._outlives(target, src):
            findings.append((fn.file, stmt.line, self.RULE,
                             f"'{target.name}' outlives guard "
                             f"'{src.name}' but is assigned a pointer "
                             f"into its pinned page"))
        else:
            derived[id(target)] = src

    def _check_calls(self, fn, stmt, scope, sources, derived, findings):
        for call in stmt.calls:
            if call.name not in CONTAINER_INSERTERS:
                continue
            if not call.recv:
                continue
            recv_var = scope.lookup(call.recv.split(".")[0])
            for arg in call.args:
                arg_stmt = Stmt("expr", call.line, tokens=arg, scope=scope)
                src = self._derivation_source(arg_stmt, scope, sources,
                                              derived)
                if src is None:
                    continue
                escapes = False
                if recv_var is None:
                    # member container or out-param style pointer recv
                    escapes = True
                elif self._outlives(recv_var, src):
                    escapes = True
                if escapes:
                    findings.append(
                        (fn.file, call.line, self.RULE,
                         f"pointer into page pinned by '{src.name}' "
                         f"inserted into container '{call.recv}' that "
                         f"outlives the guard"))

    def _check_lambdas(self, fn, stmt, scope, sources, derived, findings):
        stored_arg = any(c.name in STORING_CALLEES for c in stmt.calls)
        for lam in stmt.lambdas:
            if lam.usage == "invoked":
                continue
            if lam.usage == "arg" and not stored_arg:
                continue
            # which sources does the body (or capture list) touch?
            touched = set()
            for s in walk_stmts(lam.body):
                for t in stmt_ids(s):
                    v = scope.lookup(t.text)
                    if v is not None and (id(v) in sources
                                          or id(v) in derived):
                        touched.add(v.name)
            for cap in lam.captures:
                v = scope.lookup(cap)
                if v is not None and (id(v) in sources or id(v) in derived):
                    touched.add(v.name)
            for name in sorted(touched):
                findings.append(
                    (fn.file, lam.line, self.RULE,
                     f"stored lambda captures '{name}' whose pinned page "
                     f"may be unpinned before the lambda runs"))


# ---------------------------------------------------------------------------
# LOCK-ORDER


class LockOrder:
    RULE = "LOCK-ORDER"

    def __init__(self, resolver: Resolver, hierarchy: Hierarchy):
        self.r = resolver
        self.h = hierarchy
        self.summaries = {}  # fn key -> set of lock ids it may acquire

    def lock_id(self, fn, scope, chain: str):
        """'shard.mu' within fn -> 'BufferPool::Shard::mu'."""
        info = self.r.chain_type(fn, scope, chain)
        if info is None:
            return None
        owner, member, vtype = info
        if base_type(vtype) not in LOCK_CLASSES:
            return None
        if not owner:  # a plain local lock: identify by function
            return f"{fn.key}::{chain}"
        return f"{owner}::{member}"

    def accessor_lock(self, fn, scope, call: Call):
        """pool_->LatchFor(g) -> the mapped lock id, if configured."""
        if not self.h.accessors:
            return None
        key = None
        if call.recv:
            info = self.r.chain_type(fn, scope, call.recv)
            if info is not None:
                key = f"{base_type(info[2])}::{call.name}"
        elif fn.cls:
            key = f"{fn.cls}::{call.name}"
        return self.h.accessors.get(key) if key else None

    # -- per-statement lock events ------------------------------------

    def _events(self, fn, stmt, scope):
        """Yield ('acquire'|'release'|'acquire_raii', lock_id, line)
        for the statement's own tokens."""
        if stmt.kind == "decl" and base_type(stmt.vtype) in RAII_LOCKS:
            lid = None
            for call in stmt.calls:
                lid = self.accessor_lock(fn, scope, call)
                if lid:
                    break
            if lid is None:
                chain = "".join(
                    t.text if t.kind == "id" else "." for t in stmt.tokens
                    if t.kind == "id" or t.text in (".", "->")).strip(".")
                chain = chain.replace("..", ".")
                lid = self.lock_id(fn, scope, chain)
            if lid is not None:
                yield ("acquire_raii", lid, stmt.line)
            return
        for call in stmt.calls:
            if call.name in ACQUIRE_METHODS or call.name in RELEASE_METHODS:
                lid = self.lock_id(fn, scope, call.recv)
                if lid is None:
                    continue
                if call.name in ACQUIRE_METHODS:
                    yield ("acquire", lid, call.line)
                else:
                    yield ("release", lid, call.line)

    # -- interprocedural summaries ------------------------------------

    def _local_info(self, fn):
        """(acquired lock ids, callee Function keys) for one function."""
        acquired = set()
        callees = set()
        for stmt in walk_stmts(fn.body):
            scope = stmt.scope or fn.body.scope
            for (kind, lid, _line) in self._events(fn, stmt, scope):
                if kind.startswith("acquire"):
                    acquired.add(lid)
            for call in stmt.calls:
                if call.name in ACQUIRE_METHODS or \
                        call.name in RELEASE_METHODS or \
                        call.name in NONBLOCKING_METHODS:
                    continue
                for target in self.r.callee(fn, scope, call):
                    if target.cls in LOCK_IMPL_CLASSES:
                        continue
                    callees.add(target.key)
        return acquired, callees

    def build_summaries(self, functions):
        local = {}
        calls = {}
        for fn in functions:
            if fn.cls in LOCK_IMPL_CLASSES:
                continue
            acq, callees = self._local_info(fn)
            key = fn.key
            local[key] = local.get(key, set()) | acq
            calls[key] = calls.get(key, set()) | callees
        summaries = {k: set(v) for k, v in local.items()}
        changed = True
        while changed:
            changed = False
            for k in summaries:
                for c in calls.get(k, ()):
                    extra = summaries.get(c, set()) - summaries[k]
                    if extra:
                        summaries[k] |= extra
                        changed = True
        self.summaries = summaries

    # -- the check ----------------------------------------------------

    def check(self, fn: Function):
        if fn.cls in LOCK_IMPL_CLASSES:
            return []
        findings = []
        self._walk(fn, fn.body, [], findings)
        return findings

    def _edge(self, fn, held, lock_id, line, findings, via=""):
        for h in held:
            if h == lock_id:
                findings.append(
                    (fn.file, line, self.RULE,
                     f"'{lock_id}' acquired while already held "
                     f"(self-deadlock){via}"))
                continue
            lh = self.h.levels.get(h)
            ln = self.h.levels.get(lock_id)
            if lh is None or ln is None:
                missing = lock_id if ln is None else h
                findings.append(
                    (fn.file, line, self.RULE,
                     f"lock '{missing}' is not in the hierarchy file "
                     f"(nesting '{h}' -> '{lock_id}'){via}"))
                continue
            if ln <= lh:
                findings.append(
                    (fn.file, line, self.RULE,
                     f"acquiring '{lock_id}' (level {ln}) while holding "
                     f"'{h}' (level {lh}) inverts the lock "
                     f"hierarchy{via}"))

    def _walk(self, fn, block, held, findings):
        """held: list of lock ids (outermost first). Returns the held
        list at block exit (RAII locks from this block released)."""
        raii_here = []
        for stmt in block.children:
            scope = stmt.scope or block.scope
            for (kind, lid, line) in self._events(fn, stmt, scope):
                if kind == "release":
                    if lid in held:
                        held.remove(lid)
                    continue
                self._edge(fn, held, lid, line, findings)
                held.append(lid)
                if kind == "acquire_raii":
                    raii_here.append(lid)
            # callee-transitive edges
            for call in stmt.calls:
                if call.name in ACQUIRE_METHODS or \
                        call.name in RELEASE_METHODS or \
                        call.name in NONBLOCKING_METHODS:
                    continue
                if not held:
                    continue
                for target in self.r.callee(fn, scope, call):
                    for lid in sorted(self.summaries.get(target.key, ())):
                        self._edge(fn, held, lid, call.line, findings,
                                   via=f" (via call to '{target.key}')")
            for lam in stmt.lambdas:
                sub_held = list(held) if lam.usage == "invoked" else []
                self._walk(fn, lam.body, sub_held, findings)
            if stmt.kind == "block":
                self._walk(fn, stmt, held, findings)
            elif stmt.arms:
                pre, branches = iter_arms(stmt)
                for p in pre:
                    fake = Stmt("block", p.line, scope=p.scope or scope)
                    fake.children.append(p)
                    self._walk(fn, fake, held, findings)
                for b in branches:
                    self._walk(fn, b, list(held), findings)
        for lid in raii_here:
            if lid in held:
                held.remove(lid)
        return held


# ---------------------------------------------------------------------------
# STATUS-DROP


class StatusDrop:
    RULE = "STATUS-DROP"

    def __init__(self, resolver: Resolver, raw_lines):
        self.r = resolver
        self.raw = raw_lines  # file -> list[str]

    def _is_status_type(self, spelling: str) -> bool:
        if not spelling:
            return False
        if base_type(spelling) in STATUS_TYPES:
            return True
        return spelling.split("<")[0].split("::")[-1].strip() in STATUS_TYPES

    def _call_is_status(self, fn, scope, call) -> bool:
        return self._is_status_type(self.r.call_ret_type(fn, scope, call))

    def _has_justification(self, fn, line) -> bool:
        lines = self.raw.get(fn.file)
        if not lines or not 1 <= line <= len(lines):
            return False
        text = lines[line - 1]
        return "//" in text and text.split("//", 1)[1].strip() != ""

    def check(self, fn: Function):
        findings = []
        self._walk(fn, fn.body, findings)
        return findings

    def _final_call(self, stmt):
        """The call whose result is the statement's value. Calls are
        recorded in token order, so the first one is the outermost for
        `Fn(Nested(...))` shapes; nested status factories passed as
        arguments must not be attributed the statement's value."""
        if not stmt.calls or not stmt.tokens:
            return None
        if stmt.tokens[-1].text != ")":
            return None
        return stmt.calls[0]

    def _walk(self, fn, block, findings):
        # straight-line overwritten-before-read tracking for this block
        pending = {}  # var name -> line of the unread status assignment

        def read_all(stmt):
            for t in stmt_ids(stmt):
                pending.pop(t.text, None)

        for stmt in block.children:
            scope = stmt.scope or block.scope
            toks = stmt.tokens
            if stmt.kind == "expr" and toks:
                # (void)Call(...)
                if len(toks) > 3 and toks[0].text == "(" \
                        and toks[1].text == "void" and toks[2].text == ")":
                    call = self._final_call(stmt)
                    if call is not None and \
                            self._call_is_status(fn, scope, call) and \
                            not self._has_justification(fn, stmt.line):
                        findings.append(
                            (fn.file, stmt.line, self.RULE,
                             f"status from '{call.name}' discarded via "
                             f"(void) with no justification comment"))
                    read_all(stmt)
                    continue
                # bare status-returning call statement
                first = toks[0]
                if first.kind == "id" and first.text not in CONSUME_MACROS \
                        and "=" not in [t.text for t in toks]:
                    call = self._final_call(stmt)
                    if call is not None and call.name not in CONSUME_MACROS \
                            and self._call_is_status(fn, scope, call):
                        findings.append(
                            (fn.file, stmt.line, self.RULE,
                             f"result of status-returning call "
                             f"'{call.name}' is silently dropped"))
                # immediately-invoked lambda whose Status result is unused
                for lam in stmt.lambdas:
                    if lam.usage == "invoked" and \
                            self._is_status_type(lam.ret_hint) and \
                            "=" not in [t.text for t in toks[:1]] and \
                            toks[0].text in ("[",):
                        findings.append(
                            (fn.file, lam.line, self.RULE,
                             "status returned by immediately-invoked "
                             "lambda is discarded"))
            # ---- overwrite-before-read bookkeeping ----
            if stmt.kind == "decl":
                if self._is_status_type(stmt.vtype):
                    # initializer reads other statuses
                    read_all(stmt)
                    if stmt.tokens and not stmt.from_assign_macro:
                        pending[stmt.name] = stmt.line
                else:
                    read_all(stmt)
            elif stmt.kind == "expr" and len(toks) >= 2 \
                    and toks[0].kind == "id" and toks[1].text == "=":
                name = toks[0].text
                v = scope.lookup(name)
                was = pending.get(name)
                # RHS may read statuses (including this one)
                read_all(Stmt("expr", stmt.line, tokens=toks[2:]))
                if v is not None and self._is_status_type(v.vtype):
                    if was is not None:
                        findings.append(
                            (fn.file, stmt.line, self.RULE,
                             f"status in '{name}' (assigned at line "
                             f"{was}) is overwritten before being read"))
                    pending[name] = stmt.line
            else:
                read_all(stmt)
            # any branching / lambda kills straight-line certainty
            if stmt.arms or stmt.lambdas or stmt.kind == "block":
                for s in self._sub_stmts(stmt):
                    for t in stmt_ids(s):
                        pending.pop(t.text, None)
                pending.clear()
            # recurse — pre statements (if/for init) keep the PARENT
            # scope on their wrapper block: their own scope is the
            # condition scope, which the condition itself reads, so the
            # never-examined end-of-block check must not claim them.
            if stmt.kind == "block":
                self._walk(fn, stmt, findings)
            else:
                pre, branches = iter_arms(stmt)
                for p in pre:
                    fake = Stmt("block", p.line, scope=block.scope)
                    fake.children.append(p)
                    self._walk(fn, fake, findings)
                for b in branches:
                    self._walk(fn, b, findings)
            for lam in stmt.lambdas:
                self._walk(fn, lam.body, findings)
        # a status assigned and never read before its block ends
        for name, line in sorted(pending.items(), key=lambda kv: kv[1]):
            v = block.scope.lookup(name) if block.scope else None
            if v is not None and v.scope is block.scope:
                findings.append(
                    (fn.file, line, self.RULE,
                     f"status stored in '{name}' is never examined"))

    def _sub_stmts(self, stmt):
        out = []
        for a in stmt.arms:
            if a is not None:
                out.extend(walk_stmts(a))
        for lam in stmt.lambdas:
            out.extend(walk_stmts(lam.body))
        return out


# ---------------------------------------------------------------------------
# WAL-ORDER


class WalOrder:
    RULE = "WAL-ORDER"

    def __init__(self, resolver: Resolver, scope_substrings):
        self.r = resolver
        self.scope_subs = scope_substrings
        self.appending_fns = set()  # keys of functions that append

    def in_scope(self, fn: Function) -> bool:
        path = fn.file.replace("\\", "/")
        return any(sub in path for sub in self.scope_subs)

    def _is_appender(self, fn, scope, call) -> bool:
        if call.name in WAL_APPENDERS:
            info = self.r.chain_type(fn, scope, call.recv) if call.recv \
                else None
            if info is not None and base_type(info[2]) in WAL_APPENDER_RECV:
                return True
            if call.recv and "wal" in call.recv.lower():
                return True
        # calls into a function known to append unconditionally
        for target in self.r.callee(fn, scope, call):
            if target.key in self.appending_fns:
                return True
        return False

    def _is_mutator(self, fn, scope, call) -> bool:
        if call.name not in WAL_MUTATORS or not call.recv:
            return False
        info = self.r.chain_type(fn, scope, call.recv)
        if info is None:
            return False
        return base_type(info[2]) in WAL_MUTATOR_RECV

    def build_appender_set(self, functions):
        """Functions whose top-level straight line contains an append —
        calls to them count as appends. Fixpoint for wrappers."""
        changed = True
        while changed:
            changed = False
            for fn in functions:
                if fn.key in self.appending_fns:
                    continue
                if self._top_level_appends(fn):
                    self.appending_fns.add(fn.key)
                    changed = True

    def _top_level_appends(self, fn) -> bool:
        for stmt in fn.body.children:
            scope = stmt.scope or fn.body.scope
            for call in stmt.calls:
                if self._is_appender(fn, scope, call):
                    return True
            # an append in an if-init / condition runs unconditionally
            pre, _branches = iter_arms(stmt)
            for p in pre:
                for call in p.calls:
                    if self._is_appender(fn, p.scope or scope, call):
                        return True
        return False

    def check(self, fn: Function):
        if not self.in_scope(fn) or WAL_EXEMPT_RE.search(fn.name):
            return []
        findings = []
        self._walk(fn, fn.body, False, findings)
        return findings

    def _walk(self, fn, block, appended, findings):
        for stmt in block.children:
            scope = stmt.scope or block.scope
            # mutations in this statement's own expression
            if not appended:
                for call in stmt.calls:
                    if self._is_mutator(fn, scope, call):
                        findings.append(
                            (fn.file, call.line, self.RULE,
                             f"tree mutation '{call.recv}->{call.name}' "
                             f"is not dominated by a WAL append in "
                             f"'{fn.name}'"))
            # does this statement append (condition/init included)?
            stmt_appends = any(self._is_appender(fn, scope, c)
                               for c in stmt.calls)
            pre, branches = iter_arms(stmt)
            pre_appends = False
            for p in pre:
                fake = Stmt("block", p.line, scope=p.scope or scope)
                fake.children.append(p)
                if self._walk(fn, fake, appended, findings):
                    pre_appends = True
            branch_flag = appended or stmt_appends or pre_appends
            if stmt.kind == "block":
                self._walk(fn, stmt, appended, findings)
            else:
                for b in branches:
                    self._walk(fn, b, branch_flag, findings)
            for lam in stmt.lambdas:
                self._walk(fn, lam.body, branch_flag, findings)
            if stmt_appends or pre_appends:
                appended = True
        return appended


# ---------------------------------------------------------------------------
# driver


def run_checkers(model: Model, raw_lines, hierarchy: Hierarchy,
                 wal_scope, checks=None):
    """Run the selected checkers; returns [(file, line, RULE, msg)]."""
    resolver = Resolver(model)
    enabled = checks or {"pin", "lock", "status", "wal"}
    findings = []

    lock = None
    if "lock" in enabled:
        lock = LockOrder(resolver, hierarchy or Hierarchy())
        lock.build_summaries(model.functions)
    wal = None
    if "wal" in enabled:
        wal = WalOrder(resolver, wal_scope)
        wal.build_appender_set(model.functions)
    pin = PinEscape(resolver) if "pin" in enabled else None
    status = StatusDrop(resolver, raw_lines) if "status" in enabled else None

    for fn in model.functions:
        for checker in (pin, lock, status, wal):
            if checker is not None:
                findings.extend(checker.check(fn))
    findings.sort(key=lambda f: (f[0], f[1], f[2]))
    # dedupe (interprocedural edges can repeat across branches)
    seen = set()
    out = []
    for f in findings:
        k = (f[0], f[1], f[2], f[3])
        if k not in seen:
            seen.add(k)
            out.append(f)
    return out
