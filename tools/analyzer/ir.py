"""Normalized mini-AST shared by every analyzer frontend.

The checkers in checkers.py consume this IR only — they never look at
source text — so any frontend that can produce it (the native parser in
parse.py, the clang -ast-dump=json bridge in clang_frontend.py) plugs
into the same four checks. The IR is deliberately small: scopes,
declarations, statements, calls and lambda captures are the complete
vocabulary the pin-escape / lock-order / status-drop / WAL-order
properties need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Token:
    kind: str  # 'id' | 'num' | 'punct'
    text: str
    line: int

    def __repr__(self) -> str:  # compact dumps while debugging
        return f"{self.text}@{self.line}"


@dataclass
class Scope:
    """A lexical scope. Variables declared in a scope die at its end in
    reverse declaration order; `ordinal` gives the declaration position
    used to compare lifetimes inside one scope."""

    id: int
    parent: Optional["Scope"]
    depth: int
    kind: str = "block"  # 'function' | 'block' | 'loop' | 'lambda'
    vars: dict = field(default_factory=dict)  # name -> VarInfo

    def lookup(self, name: str):
        s = self
        while s is not None:
            if name in s.vars:
                return s.vars[name]
            s = s.parent
        return None

    def is_ancestor_of(self, other: "Scope") -> bool:
        s = other.parent
        while s is not None:
            if s is self:
                return True
            s = s.parent
        return False


@dataclass
class VarInfo:
    name: str
    vtype: str  # normalized type spelling, e.g. 'const char *'
    line: int
    scope: Scope
    ordinal: int  # declaration order within the scope


@dataclass
class Call:
    """One call site. `recv` is the receiver expression's trailing
    identifier chain ('' for free calls): `pool_->FetchPage(x)` has
    name='FetchPage', recv='pool_'; `shard.mu.Lock()` has name='Lock',
    recv='shard.mu'."""

    name: str
    recv: str
    args: list  # list[list[Token]] — top-level comma-split argument tokens
    line: int
    qualifier: str = ""  # 'ns::Class' for qualified calls like pack::Pack


@dataclass
class Lambda:
    captures: list  # raw capture items, e.g. ['&', 'x', '=', 'this']
    body: "Stmt"  # a 'block' Stmt
    line: int
    # How the lambda expression is used at its site:
    #   'invoked'  immediately called:  [&]{...}()
    #   'arg'      passed as a call argument (callee uses it in place)
    #   'stored'   bound to a variable / member / container / returned
    usage: str = "arg"
    # Trailing return type spelling ('-> Status') when present.
    ret_hint: str = ""


@dataclass
class Stmt:
    """One statement. kind:
    'block'   children = statements
    'if'      cond tokens in `tokens` (incl. C++17 init), arms = [then, else?]
    'loop'    header tokens in `tokens`, arms = [body]
    'switch'  subject in `tokens`, arms = [case-branch blocks]
    'return'  expression tokens in `tokens`
    'decl'    name/vtype set, initializer tokens in `tokens`
    'expr'    expression tokens in `tokens`
    'try'     arms = [try-block, handler blocks...]
    """

    kind: str
    line: int
    tokens: list = field(default_factory=list)
    name: str = ""
    vtype: str = ""
    arms: list = field(default_factory=list)  # list[Stmt] ('block's)
    children: list = field(default_factory=list)  # for kind == 'block'
    calls: list = field(default_factory=list)  # Calls in `tokens`
    lambdas: list = field(default_factory=list)
    scope: Optional[Scope] = None
    # decl only: True when produced by PICTDB_ASSIGN_OR_RETURN (the
    # macro consumes the error path itself).
    from_assign_macro: bool = False


@dataclass
class Function:
    """A parsed function/method definition."""

    name: str  # unqualified, e.g. 'FetchPageImpl' or 'operator()'
    cls: str  # enclosing class ('' for free functions), e.g. 'BufferPool'
    namespace: str  # e.g. 'pictdb::storage'
    ret_type: str
    params: list  # list[VarInfo]
    body: Stmt  # 'block'
    line: int
    file: str

    @property
    def key(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    name: str  # possibly nested, e.g. 'BufferPool::Shard'
    namespace: str
    members: dict = field(default_factory=dict)  # name -> type string
    # Declared (not necessarily defined here) methods: name -> ret type.
    method_ret: dict = field(default_factory=dict)
    file: str = ""
    line: int = 0


@dataclass
class TranslationUnit:
    file: str
    functions: list = field(default_factory=list)
    classes: dict = field(default_factory=dict)  # name -> ClassInfo


class Model:
    """Whole-program view: every parsed TU merged, with the lookup
    tables the interprocedural passes need."""

    def __init__(self):
        self.units: list[TranslationUnit] = []
        self.classes: dict[str, ClassInfo] = {}
        self.functions: list[Function] = []
        # name -> [Function]: unqualified-name index for call resolution.
        self.by_name: dict[str, list[Function]] = {}
        # 'Class::name' -> Function
        self.by_key: dict[str, Function] = {}

    def add_unit(self, unit: TranslationUnit):
        self.units.append(unit)
        for name, cls in unit.classes.items():
            existing = self.classes.get(name)
            if existing is None:
                self.classes[name] = cls
            else:
                existing.members.update(cls.members)
                existing.method_ret.update(cls.method_ret)
        for fn in unit.functions:
            self.functions.append(fn)
            self.by_name.setdefault(fn.name, []).append(fn)
            self.by_key.setdefault(fn.key, fn)

    def member_type(self, cls: str, member: str) -> str:
        """Type of `member` looked up on `cls` or any of its nested
        structs (a bare member reference inside a method may refer to a
        field of the enclosing class)."""
        info = self.classes.get(cls)
        if info is not None and member in info.members:
            return info.members[member]
        return ""


def base_type(spelling: str) -> str:
    """Last type component with wrappers stripped:
    'std::optional<rtree::RTree>' -> 'RTree',
    'storage::BufferPool *' -> 'BufferPool', 'const char *' -> 'char'."""
    t = spelling.strip()
    quals = ("static", "virtual", "inline", "explicit", "constexpr",
             "friend", "mutable", "const")
    words = t.split()
    while words and words[0] in quals:
        words = words[1:]
    t = " ".join(words)
    changed = True
    while changed:
        changed = False
        for wrap in ("std::optional", "std::unique_ptr", "std::shared_ptr",
                     "optional", "unique_ptr", "shared_ptr"):
            if t.startswith(wrap + "<") and t.endswith(">"):
                t = t[len(wrap) + 1:-1].strip()
                changed = True
    t = t.replace("*", " ").replace("&", " ").strip()
    t = t.replace("const ", " ").replace(" const", " ").strip()
    if "<" in t:
        t = t[: t.index("<")]
    return t.split("::")[-1].strip()


def is_pointerish(spelling: str) -> bool:
    """Does this declared type alias the storage it was derived from
    (rather than copying it)? Pointers, references, spans, string_views
    and the SoA lane view all qualify."""
    t = spelling.strip()
    if "*" in t or "&" in t:
        return True
    base = base_type(t)
    return base in ("span", "RectSoa", "string_view", "Slice")
