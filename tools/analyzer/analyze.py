#!/usr/bin/env python3
"""pictdb semantic analyzer driver (DESIGN.md §15).

Runs the PIN-ESCAPE / LOCK-ORDER / STATUS-DROP / WAL-ORDER checkers
over C++ sources and prints findings as `path:line: RULE: message`
(the same format as tools/pictdb_lint.py). Exit status: 0 clean,
1 findings, 2 usage/environment error.

Frontends:
  native  purpose-built parser in parse.py — hermetic, no toolchain
          needed; this is what CI and ctest gate on.
  clang   `clang -Xclang -ast-dump=json` bridge (clang_frontend.py),
          cached by file content hash; advisory, requires clang.
  auto    clang when available, else native.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checkers  # noqa: E402
import parse as native  # noqa: E402
from ir import Model  # noqa: E402

EXTS = (".cc", ".cpp", ".cxx", ".h", ".hpp")


def collect(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith(EXTS):
                        files.append(os.path.join(root, n))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"analyze.py: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="+",
                    help="files/dirs to analyze and report on")
    ap.add_argument("--context", action="append", default=[],
                    help="extra files/dirs parsed for type information "
                         "but not reported on (e.g. corpus stubs)")
    ap.add_argument("--hierarchy", default="",
                    help="lock hierarchy file for LOCK-ORDER")
    ap.add_argument("--checks", default="pin,lock,status,wal",
                    help="comma list: pin,lock,status,wal")
    ap.add_argument("--wal-scope", default="src/wal,src/service",
                    help="comma list of path substrings where WAL-ORDER "
                         "applies (use '' to apply everywhere)")
    ap.add_argument("--frontend", default="native",
                    choices=("native", "clang", "auto"))
    ap.add_argument("--compdb", default="",
                    help="compile_commands.json for the clang frontend")
    ap.add_argument("--cache-dir", default="",
                    help="AST-dump cache directory (clang frontend)")
    ap.add_argument("--relative-to", default="",
                    help="print paths relative to this directory")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    report_files = collect(args.paths)
    context_files = collect(args.context) if args.context else []
    if not report_files:
        print("analyze.py: nothing to analyze", file=sys.stderr)
        return 2

    frontend = args.frontend
    if frontend in ("clang", "auto"):
        import clang_frontend
        if clang_frontend.clang_available():
            try:
                model = clang_frontend.build_model(
                    report_files + context_files,
                    compdb=args.compdb, cache_dir=args.cache_dir,
                    verbose=args.verbose)
            except clang_frontend.FrontendError as e:
                if frontend == "clang":
                    print(f"analyze.py: clang frontend failed: {e}",
                          file=sys.stderr)
                    return 2
                model = None
            else:
                frontend = "clang"
        else:
            if frontend == "clang":
                print("analyze.py: clang not found (use --frontend=native)",
                      file=sys.stderr)
                return 2
            model = None
        if frontend == "auto":
            frontend = "native"
    if frontend == "native":
        model = Model()
        for path in report_files + context_files:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                model.add_unit(native.parse_file(path, f.read()))

    raw_lines = {}
    for path in report_files + context_files:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines[path] = f.read().splitlines()

    hierarchy = None
    if args.hierarchy:
        if not os.path.isfile(args.hierarchy):
            print(f"analyze.py: hierarchy file not found: {args.hierarchy}",
                  file=sys.stderr)
            return 2
        hierarchy = checkers.Hierarchy.load(args.hierarchy)

    enabled = {c.strip() for c in args.checks.split(",") if c.strip()}
    bad = enabled - {"pin", "lock", "status", "wal"}
    if bad:
        print(f"analyze.py: unknown checks: {','.join(sorted(bad))}",
              file=sys.stderr)
        return 2
    wal_scope = [s.strip() for s in args.wal_scope.split(",")]
    wal_scope = [s for s in wal_scope if s] or [""]

    findings = checkers.run_checkers(model, raw_lines, hierarchy,
                                     wal_scope, enabled)
    reported = set(os.path.abspath(p) for p in report_files)
    shown = 0
    for (path, line, rule, msg) in findings:
        if os.path.abspath(path) not in reported:
            continue
        out = path
        if args.relative_to:
            out = os.path.relpath(path, args.relative_to)
        print(f"{out}:{line}: {rule}: {msg}")
        shown += 1
    if args.verbose:
        print(f"analyze.py: frontend={frontend} files="
              f"{len(report_files)}+{len(context_files)} findings={shown}",
              file=sys.stderr)
    return 1 if shown else 0


if __name__ == "__main__":
    sys.exit(main())
