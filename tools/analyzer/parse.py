"""Native C++ frontend: source text -> ir.Model.

A purpose-built parser for the subset of C++ this repository uses
(see DESIGN.md §15). It tokenizes, matches brackets, walks namespace /
class / function structure, and lowers function bodies into the ir.Stmt
tree. It is NOT a general C++ parser: it leans on the project style
(clang-format layout, no macros that open scopes, no K&R surprises) and
on the checkers needing only declarations, calls, returns, captures and
scope nesting. Anything it cannot classify degrades to an opaque 'expr'
statement — unknown code can cause missed findings, never crashes.
"""

from __future__ import annotations

import re

from ir import (Call, ClassInfo, Function, Lambda, Model, Scope, Stmt, Token,
                TranslationUnit, VarInfo)

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "new", "delete", "sizeof",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "void", "int", "bool", "char", "float", "double", "long", "short",
    "unsigned", "signed", "true", "false", "nullptr", "this", "throw",
    "try", "catch", "using", "typedef", "template", "typename", "class",
    "struct", "union", "enum", "namespace", "public", "private",
    "protected", "operator", "const", "constexpr", "static", "mutable",
    "inline", "virtual", "override", "final", "noexcept", "explicit",
    "friend", "auto", "decltype", "co_await", "co_return", "alignas",
}

TYPE_INTRO = {
    "const", "constexpr", "static", "mutable", "auto", "unsigned",
    "signed", "volatile", "typename", "thread_local", "inline",
}

BUILTIN_TYPES = {
    "void", "int", "bool", "char", "float", "double", "long", "short",
    "unsigned", "signed", "auto", "size_t", "ssize_t", "ptrdiff_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "uintptr_t", "wchar_t",
}

_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"
    r"|0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.eEpPxXuUlLfF]*"
    r"|::|->\*?|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-="
    r"|\*=|/=|%=|&=|\|=|\^=|\.\.\.|\.|[-+*/%&|^!~<>=?:;,(){}\[\]#\\]")


def strip_comments_and_strings(text: str) -> str:
    """Blank comments and string/char literals, preserving newlines so
    token line numbers match the source."""
    out = []
    i, n = 0, len(text)
    mode = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode, i = "//", i + 2
                out.append("  ")
                continue
            if c == "/" and nxt == "*":
                mode, i = "/*", i + 2
                out.append("  ")
                continue
            if c in "\"'":
                mode = c
                out.append(" ")  # drop quotes entirely: strings are opaque
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                if mode == "//":
                    mode = None
                out.append("\n")
            elif mode == "/*" and c == "*" and nxt == "/":
                mode, i = None, i + 2
                out.append("  ")
                continue
            elif mode in "\"'" and c == "\\":
                out.append("  ")
                i += 2
                continue
            elif mode in "\"'" and c == mode:
                mode = None
                out.append(" ")
            else:
                out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def tokenize(clean: str) -> list:
    toks = []
    continued = False  # inside a backslash-continued preprocessor line
    for lineno, line in enumerate(clean.splitlines(), 1):
        if continued:
            continued = line.rstrip().endswith("\\")
            continue
        for m in _TOKEN_RE.finditer(line):
            t = m.group(0)
            if t == "#":  # preprocessor line: skip the rest
                continued = line.rstrip().endswith("\\")
                break
            kind = ("id" if t[0].isalpha() or t[0] == "_"
                    else "num" if t[0].isdigit() else "punct")
            toks.append(Token(kind, t, lineno))
    return toks


def match_brackets(toks: list) -> dict:
    """index of every ( { [ -> index of its matching closer."""
    pairs = {}
    stack = []
    opener = {"(": ")", "{": "}", "[": "]"}
    for i, t in enumerate(toks):
        if t.text in opener:
            stack.append((i, opener[t.text]))
        elif t.text in (")", "}", "]"):
            while stack:
                j, want = stack.pop()
                if t.text == want:
                    pairs[j] = i
                    break
    return pairs


class Parser:
    def __init__(self, path: str, text: str):
        self.file = path
        self.toks = tokenize(strip_comments_and_strings(text))
        self.pairs = match_brackets(self.toks)
        self.unit = TranslationUnit(file=path)
        self.scope_seq = 0

    # ---- helpers -----------------------------------------------------

    def new_scope(self, parent, kind="block") -> Scope:
        self.scope_seq += 1
        depth = 0 if parent is None else parent.depth + 1
        return Scope(self.scope_seq, parent, depth, kind)

    def type_spelling(self, toks) -> str:
        s = " ".join(t.text for t in toks)
        s = s.replace(" :: ", "::").replace("< ", "<").replace(" >", ">")
        s = s.replace(" , ", ",").replace(" *", " *").replace(" &", " &")
        return s.strip()

    # ---- top level ---------------------------------------------------

    def parse(self) -> TranslationUnit:
        self.parse_region(0, len(self.toks), ns="", cls="")
        return self.unit

    def parse_region(self, start: int, end: int, ns: str, cls: str):
        """Namespace body, class body, or the TU itself."""
        i = start
        seg = i
        while i < end:
            t = self.toks[i]
            if t.text in ("(", "["):
                i = self.pairs.get(i, i) + 1
                continue
            if t.text == ";":
                self.handle_decl_segment(seg, i, ns, cls)
                i += 1
                seg = i
                continue
            if t.text == "{":
                close = self.pairs.get(i, end - 1)
                self.handle_braced_segment(seg, i, close, ns, cls)
                i = close + 1
                # `struct X { ... } instance;` / trailing `;`
                if i < end and self.toks[i].text == ";":
                    i += 1
                seg = i
                continue
            if t.text == "}":
                return
            i += 1

    def segment_tokens(self, a: int, b: int) -> list:
        return self.toks[a:b]

    def handle_braced_segment(self, seg: int, brace: int, close: int,
                              ns: str, cls: str):
        head = self.segment_tokens(seg, brace)
        words = [t.text for t in head]
        if not words:
            return
        if words[0] == "namespace":
            name = "".join(w for w in words[1:] if w not in ("inline",))
            sub = ns + ("::" + name if name and ns else name)
            self.parse_region(brace + 1, close, sub, cls)
            return
        if words[0] == "extern":
            self.parse_region(brace + 1, close, ns, cls)
            return
        if words[0] == "enum":
            return
        # template intro: drop it and re-classify.
        if words[0] == "template":
            k = 1
            if k < len(head) and head[k].text == "<":
                depth = 0
                while k < len(head):
                    if head[k].text == "<":
                        depth += 1
                    elif head[k].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    k += 1
                head = head[k + 1:]
                words = [t.text for t in head]
                if not words:
                    return
        if "class" in words or "struct" in words or "union" in words:
            kw = next(i for i, w in enumerate(words)
                      if w in ("class", "struct", "union"))
            # Exclude 'return struct-ish' false matches: keyword first-ish.
            if kw <= 2:
                name = self.class_name(head[kw + 1:])
                if name:
                    qual = f"{cls}::{name}" if cls else name
                    info = self.unit.classes.setdefault(
                        qual, ClassInfo(qual, ns, file=self.file,
                                        line=head[0].line))
                    info.file = info.file or self.file
                    self.parse_region(brace + 1, close, ns, qual)
                    return
        # else: function definition (or an initializer brace we can skip)
        self.maybe_function(head, brace, close, ns, cls)

    def class_name(self, toks) -> str:
        """Class-head name: last identifier before ':' (base clause) or
        end, skipping attribute macros like CAPABILITY("x") and 'final'."""
        name = ""
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.text == ":":
                break
            if t.kind == "id" and t.text not in ("final", "alignas"):
                nxt = toks[i + 1].text if i + 1 < len(toks) else ""
                if nxt == "(":  # attribute macro with args
                    depth = 0
                    while i < len(toks):
                        if toks[i].text == "(":
                            depth += 1
                        elif toks[i].text == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        i += 1
                else:
                    name = t.text
            i += 1
        return name

    def handle_decl_segment(self, a: int, b: int, ns: str, cls: str):
        """Segment ending in ';' — member/variable/method declaration."""
        toks = self.segment_tokens(a, b)
        if not toks:
            return
        words = [t.text for t in toks]
        # access specifier prefixes inside a class: 'public : Type x_;'
        while len(words) > 1 and words[0] in ("public", "private",
                                              "protected") and words[1] == ":":
            toks, words = toks[2:], words[2:]
        if not words or words[0] in ("using", "typedef", "friend", "template",
                                     "public", "private", "protected",
                                     "static_assert", "extern", "namespace",
                                     "enum", "goto"):
            return
        if not cls:
            return
        info = self.unit.classes.get(cls)
        if info is None:
            return
        # Method declaration: Name(params) qualifiers;
        sig = self.find_param_group(toks)
        if sig is not None:
            name_i, open_i, close_i = sig
            ret = self.type_spelling(toks[:name_i])
            name = toks[name_i].text
            if ret:
                info.method_ret[name] = ret
            return
        # Data member: truncate at top-level '=', brace-init, or an
        # annotation macro (GUARDED_BY etc.); name = last identifier.
        sub = []
        depth = 0
        for t in toks:
            if t.text in ("(", "[", "<"):
                depth += 1
            elif t.text in (")", "]", ">"):
                depth -= 1
            if depth == 0 and t.text in ("=", "{"):
                break
            if depth == 0 and t.kind == "id" and len(t.text) > 1 \
                    and t.text.isupper() and t.text not in BUILTIN_TYPES:
                break
            sub.append(t)
        if len(sub) >= 2 and sub[-1].kind == "id" \
                and sub[-1].text not in KEYWORDS:
            name = sub[-1].text
            vtype = self.type_spelling(sub[:-1])
            if vtype and not vtype.endswith("::"):
                info.members[name] = vtype

    def find_param_group(self, toks):
        """Locate a function signature 'name ( params )' in `toks`.
        Returns (name_index, open_paren_index, close_paren_index) or
        None. Skips parens whose preceding token is not a plausible
        function name (keywords, '<', etc.)."""
        depth_angle = 0
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.text == "<":
                depth_angle += 1
            elif t.text == ">":
                depth_angle = max(0, depth_angle - 1)
            elif t.text == "(" and depth_angle == 0 and i > 0:
                prev = toks[i - 1]
                # All-caps identifiers are annotation macros (GUARDED_BY,
                # ACQUIRE, PICTDB_CHECK...), never function names here.
                is_macro = (prev.kind == "id" and len(prev.text) > 1
                            and prev.text.isupper())
                if not is_macro and (prev.text == "operator" or (
                        prev.kind == "id" and prev.text not in KEYWORDS)):
                    # find matching ')'
                    depth = 0
                    j = i
                    while j < len(toks):
                        if toks[j].text == "(":
                            depth += 1
                        elif toks[j].text == ")":
                            depth -= 1
                            if depth == 0:
                                return (i - 1, i, j)
                        j += 1
                    return None
                if prev.text in (")",):  # operator()(…)
                    k = i - 1
                    # walk back over 'operator ( )'
                    if k >= 2 and toks[k - 1].text == "(" \
                            and toks[k - 2].text == "operator":
                        depth = 0
                        j = i
                        while j < len(toks):
                            if toks[j].text == "(":
                                depth += 1
                            elif toks[j].text == ")":
                                depth -= 1
                                if depth == 0:
                                    return (i - 2, i, j)
                            j += 1
                # skip this group
                i = self._skip_group(toks, i)
                continue
            i += 1
        return None

    def _skip_group(self, toks, i):
        depth = 0
        while i < len(toks):
            if toks[i].text == "(":
                depth += 1
            elif toks[i].text == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return i

    def maybe_function(self, head, brace: int, close: int, ns: str,
                       cls: str):
        sig = self.find_param_group(head)
        if sig is None:
            return
        name_i, open_i, close_i = sig
        name_tok = head[name_i]
        name = name_tok.text
        if name == "operator":
            # operator()(params): sig returned index of 'operator'
            name = "operator()"
        # Qualification: Class::Name
        fn_cls = cls
        qual_end = name_i
        if name_i >= 2 and head[name_i - 1].text == "::" \
                and head[name_i - 2].kind == "id":
            fn_cls = head[name_i - 2].text
            qual_end = name_i - 2
            # Ns::Class::Name — keep just the class component.
        ret = self.type_spelling(head[:qual_end])
        if ret.endswith("::"):
            ret = ret[:-2]
        params_toks = head[open_i + 1:close_i] if close_i < len(head) else \
            head[open_i + 1:]
        fn_scope = self.new_scope(None, "function")
        params = self.parse_params(params_toks, fn_scope)
        body = self.parse_block(brace + 1, close, fn_scope)
        fn = Function(name=name, cls=fn_cls, namespace=ns, ret_type=ret,
                      params=params, body=body, line=name_tok.line,
                      file=self.file)
        self.unit.functions.append(fn)
        # Ctor-init-list calls are uninteresting; body covers the rest.

    def parse_params(self, toks, scope: Scope) -> list:
        params = []
        for group in self.split_commas(toks):
            if not group:
                continue
            # strip default argument
            for k, t in enumerate(group):
                if t.text == "=":
                    group = group[:k]
                    break
            if len(group) >= 2 and group[-1].kind == "id" \
                    and group[-1].text not in KEYWORDS:
                name = group[-1].text
                vtype = self.type_spelling(group[:-1])
                v = VarInfo(name, vtype, group[-1].line, scope,
                            len(scope.vars))
                scope.vars[name] = v
                params.append(v)
        return params

    def split_commas(self, toks):
        groups, cur, depth = [], [], 0
        for t in toks:
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            if t.text == "," and depth <= 0:
                groups.append(cur)
                cur = []
            else:
                cur.append(t)
        if cur:
            groups.append(cur)
        return groups

    # ---- statements --------------------------------------------------

    def parse_block(self, start: int, end: int, scope: Scope) -> Stmt:
        block = Stmt("block",
                     self.toks[start].line if start < end else 0,
                     scope=scope)
        i = start
        while i < end:
            stmt, i = self.parse_stmt(i, end, scope)
            if stmt is not None:
                block.children.append(stmt)
        return block

    def parse_stmt(self, i: int, end: int, scope: Scope):
        t = self.toks[i]
        if t.text == ";":
            return None, i + 1
        if t.text == "{":
            close = self.pairs.get(i, end)
            sub = self.new_scope(scope)
            return self.parse_block(i + 1, close, sub), close + 1
        if t.text == "}":
            return None, i + 1
        if t.text in ("case", "default"):
            # handled by parse_switch; skip to ':'
            while i < end and self.toks[i].text != ":":
                i += 1
            return None, i + 1
        if t.kind == "id":
            if t.text == "if":
                return self.parse_if(i, end, scope)
            if t.text in ("for", "while"):
                return self.parse_loop(i, end, scope)
            if t.text == "do":
                return self.parse_do(i, end, scope)
            if t.text == "switch":
                return self.parse_switch(i, end, scope)
            if t.text == "try":
                return self.parse_try(i, end, scope)
            if t.text == "return":
                j = self.stmt_end(i, end)
                stmt = Stmt("return", t.line, tokens=self.toks[i + 1:j],
                            scope=scope)
                self.analyze_expr(stmt, scope)
                return stmt, j + 1
            if t.text == "else":
                # dangling else (shouldn't happen; defensive)
                return None, i + 1
        # plain declaration or expression
        j = self.stmt_end(i, end)
        stmt = self.classify_simple(self.toks[i:j], t.line, scope)
        return stmt, j + 1

    def stmt_end(self, i: int, end: int) -> int:
        """Index of the ';' terminating the statement starting at i,
        skipping over every bracket group (lambda bodies included)."""
        while i < end:
            t = self.toks[i]
            if t.text in ("(", "[", "{"):
                i = self.pairs.get(i, end) + 1
                continue
            if t.text == ";":
                return i
            i += 1
        return end

    def cond_group(self, i: int, end: int):
        """For `kw (...)` at i: returns (inner_start, inner_end, after)."""
        j = i + 1
        while j < end and self.toks[j].text != "(":
            j += 1
        close = self.pairs.get(j, end)
        return j + 1, close, close + 1

    def parse_body_or_stmt(self, i: int, end: int, scope: Scope,
                           kind="block"):
        if i < end and self.toks[i].text == "{":
            close = self.pairs.get(i, end)
            sub = self.new_scope(scope, kind)
            return self.parse_block(i + 1, close, sub), close + 1
        stmt, nxt = self.parse_stmt(i, end, scope)
        wrap = Stmt("block", self.toks[i].line if i < end else 0,
                    scope=self.new_scope(scope, kind))
        if stmt is not None:
            wrap.children.append(stmt)
        return wrap, nxt

    def parse_if(self, i: int, end: int, scope: Scope):
        a, b, after = self.cond_group(i, end)
        cond_scope = self.new_scope(scope)
        stmt = Stmt("if", self.toks[i].line, scope=cond_scope)
        cond = self.toks[a:b]
        # C++17 init-statement:  if (Status st = X(); !st.ok())
        semi = next((k for k, tk in enumerate(cond) if tk.text == ";"), None)
        if semi is not None:
            init = self.classify_simple(cond[:semi],
                                        cond[0].line if cond else 0,
                                        cond_scope)
            if init is not None:
                stmt.arms.append(None)  # placeholder replaced below
                stmt.tokens = cond[semi + 1:]
                stmt.arms[0] = init
            cond_rest = cond[semi + 1:]
        else:
            stmt.tokens = cond
            stmt.arms.append(None)
            cond_rest = cond
        self.analyze_expr(stmt, cond_scope)
        then, nxt = self.parse_body_or_stmt(after, end, cond_scope)
        stmt.arms.append(then)
        if nxt < end and self.toks[nxt].text == "else":
            els, nxt = self.parse_body_or_stmt(nxt + 1, end, cond_scope)
            stmt.arms.append(els)
        _ = cond_rest
        return stmt, nxt

    def parse_loop(self, i: int, end: int, scope: Scope):
        a, b, after = self.cond_group(i, end)
        loop_scope = self.new_scope(scope, "loop")
        stmt = Stmt("loop", self.toks[i].line, scope=loop_scope)
        header = self.toks[a:b]
        # register range-for / init declarations into the loop scope
        colon = next((k for k, tk in enumerate(header)
                      if tk.text == ":" and (k == 0 or
                                             header[k - 1].text != ":")), None)
        if self.toks[i].text == "for":
            if colon is not None and ";" not in [tk.text for tk in header]:
                decl = header[:colon]
                self.register_decl_tokens(decl, loop_scope)
                stmt.tokens = header[colon + 1:]
            else:
                parts, cur, depth = [], [], 0
                for tk in header:
                    if tk.text in ("(", "[", "{"):
                        depth += 1
                    elif tk.text in (")", "]", "}"):
                        depth -= 1
                    if tk.text == ";" and depth == 0:
                        parts.append(cur)
                        cur = []
                    else:
                        cur.append(tk)
                parts.append(cur)
                if parts and parts[0]:
                    init = self.classify_simple(parts[0], parts[0][0].line,
                                                loop_scope)
                    if init is not None:
                        stmt.arms.append(init)
                stmt.tokens = [tk for p in parts[1:] for tk in p]
        else:
            stmt.tokens = header
        self.analyze_expr(stmt, loop_scope)
        body, nxt = self.parse_body_or_stmt(after, end, loop_scope, "loop")
        stmt.arms.append(body)
        return stmt, nxt

    def parse_do(self, i: int, end: int, scope: Scope):
        loop_scope = self.new_scope(scope, "loop")
        stmt = Stmt("loop", self.toks[i].line, scope=loop_scope)
        body, nxt = self.parse_body_or_stmt(i + 1, end, loop_scope, "loop")
        stmt.arms.append(body)
        # while (...) ;
        if nxt < end and self.toks[nxt].text == "while":
            a, b, after = self.cond_group(nxt, end)
            stmt.tokens = self.toks[a:b]
            self.analyze_expr(stmt, loop_scope)
            nxt = after
            if nxt < end and self.toks[nxt].text == ";":
                nxt += 1
        return stmt, nxt

    def parse_switch(self, i: int, end: int, scope: Scope):
        a, b, after = self.cond_group(i, end)
        stmt = Stmt("switch", self.toks[i].line, tokens=self.toks[a:b],
                    scope=scope)
        self.analyze_expr(stmt, scope)
        if after < end and self.toks[after].text == "{":
            close = self.pairs.get(after, end)
            # split body at top-level 'case X:' / 'default:'
            j = after + 1
            branch_start = None
            branches = []
            while j < close:
                t = self.toks[j]
                if t.text in ("(", "[", "{"):
                    j = self.pairs.get(j, close) + 1
                    continue
                if t.text in ("case", "default"):
                    if branch_start is not None:
                        branches.append((branch_start, j))
                    while j < close and self.toks[j].text != ":":
                        j += 1
                    branch_start = j + 1
                j += 1
            if branch_start is not None:
                branches.append((branch_start, close))
            for (s, e) in branches:
                sub = self.new_scope(scope)
                stmt.arms.append(self.parse_block(s, e, sub))
            return stmt, close + 1
        return stmt, after

    def parse_try(self, i: int, end: int, scope: Scope):
        stmt = Stmt("try", self.toks[i].line, scope=scope)
        body, nxt = self.parse_body_or_stmt(i + 1, end, scope)
        stmt.arms.append(body)
        while nxt < end and self.toks[nxt].text == "catch":
            a, b, after = self.cond_group(nxt, end)
            handler, nxt = self.parse_body_or_stmt(after, end, scope)
            stmt.arms.append(handler)
        return stmt, nxt

    # ---- simple statements -------------------------------------------

    def register_decl_tokens(self, toks, scope: Scope):
        """Register `Type name` (range-for / structured binding) decls."""
        if not toks:
            return None
        if toks[-1].text == "]":
            # structured binding: auto& [a, b] — register each name
            k = len(toks) - 1
            while k >= 0 and toks[k].text != "[":
                k -= 1
            for tk in toks[k + 1:-1]:
                if tk.kind == "id":
                    scope.vars[tk.text] = VarInfo(
                        tk.text, "auto", tk.line, scope, len(scope.vars))
            return None
        if len(toks) >= 2 and toks[-1].kind == "id" \
                and toks[-1].text not in KEYWORDS:
            name = toks[-1].text
            vtype = self.type_spelling(toks[:-1])
            v = VarInfo(name, vtype, toks[-1].line, scope, len(scope.vars))
            scope.vars[name] = v
            return v
        return None

    def classify_simple(self, toks, line: int, scope: Scope):
        """Decl or expr statement from its tokens (no trailing ';')."""
        if not toks:
            return None
        words = [t.text for t in toks]
        if words[0] in ("break", "continue", "goto", "throw", "using",
                        "typedef", "static_assert"):
            stmt = Stmt("expr", line, tokens=toks, scope=scope)
            return stmt
        # PICTDB_ASSIGN_OR_RETURN(lhs, expr)
        if words[0] == "PICTDB_ASSIGN_OR_RETURN" and len(toks) > 2 \
                and toks[1].text == "(":
            inner = toks[2:-1] if toks[-1].text == ")" else toks[2:]
            groups = self.split_commas(inner)
            if len(groups) >= 2:
                lhs = groups[0]
                init = [tk for g in groups[1:] for tk in g]
                name = lhs[-1].text if lhs and lhs[-1].kind == "id" else ""
                vtype = self.type_spelling(lhs[:-1]) if len(lhs) > 1 else \
                    "auto"
                stmt = Stmt("decl", line, tokens=init, name=name,
                            vtype=vtype, scope=scope,
                            from_assign_macro=True)
                if name:
                    scope.vars[name] = VarInfo(name, vtype, line, scope,
                                               len(scope.vars))
                self.analyze_expr(stmt, scope)
                return stmt
        decl = self.try_decl(toks, line, scope)
        if decl is not None:
            return decl
        stmt = Stmt("expr", line, tokens=toks, scope=scope)
        self.analyze_expr(stmt, scope)
        return stmt

    def try_decl(self, toks, line: int, scope: Scope):
        """Heuristic declaration matcher: [qualifiers] Type name
        ( '=' init | '(' args ')' | '{' init '}' | nothing )."""
        i = 0
        n = len(toks)
        saw_type = False
        saw_auto = False
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text in TYPE_INTRO:
                i += 1
                saw_auto = saw_auto or t.text == "auto"
                continue
            break
        if saw_auto:
            # `auto [const auto&] name = init` / structured bindings.
            while i < n and toks[i].text in ("*", "&", "&&"):
                i += 1
            if i < n and toks[i].text == "[":
                for tk in toks[i + 1:]:
                    if tk.text == "]":
                        break
                    if tk.kind == "id":
                        scope.vars[tk.text] = VarInfo(
                            tk.text, "auto", tk.line, scope,
                            len(scope.vars))
                return Stmt("decl", line, tokens=toks, scope=scope)
            if i < n and toks[i].kind == "id" \
                    and toks[i].text not in KEYWORDS:
                name = toks[i].text
                vtype = self.type_spelling(toks[:i])
                init = toks[i + 2:] if i + 1 < n and \
                    toks[i + 1].text == "=" else toks[i + 1:]
                stmt = Stmt("decl", line, tokens=init, name=name,
                            vtype=vtype, scope=scope)
                scope.vars[name] = VarInfo(name, vtype, line, scope,
                                           len(scope.vars))
                self.analyze_expr(stmt, scope)
                return stmt
            return None
        type_start = i
        # consume one qualified-id with optional template args + * & refs
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text not in KEYWORDS or \
                    t.text in BUILTIN_TYPES:
                i += 1
                saw_type = True
                if i < n and toks[i].text == "<":
                    depth = 0
                    while i < n:
                        if toks[i].text == "<":
                            depth += 1
                        elif toks[i].text in (">", ">>"):
                            depth -= 2 if toks[i].text == ">>" else 1
                            if depth <= 0:
                                i += 1
                                break
                        i += 1
                if i < n and toks[i].text == "::":
                    i += 1
                    continue
                break
            elif t.text == "::":
                i += 1
            else:
                break
        while i < n and toks[i].text in ("*", "&", "&&", "const"):
            i += 1
        if not saw_type or i >= n or i == type_start:
            return None
        name_tok = toks[i]
        if name_tok.kind != "id" or name_tok.text in KEYWORDS:
            return None
        after = toks[i + 1].text if i + 1 < n else ";"
        if after not in ("=", "{", "(", ";") and i + 1 < n:
            return None
        name = name_tok.text
        vtype = self.type_spelling(toks[:i])
        init = []
        if after == "=":
            init = toks[i + 2:]
        elif after in ("{", "("):
            closer = "}" if after == "{" else ")"
            if toks[-1].text == closer:
                init = toks[i + 2:-1]
            else:
                init = toks[i + 2:]
        stmt = Stmt("decl", line, tokens=init, name=name, vtype=vtype,
                    scope=scope)
        scope.vars[name] = VarInfo(name, vtype, line, scope,
                                   len(scope.vars))
        self.analyze_expr(stmt, scope)
        return stmt

    # ---- expression analysis: calls + lambdas ------------------------

    def analyze_expr(self, stmt: Stmt, scope: Scope):
        toks = stmt.tokens
        if not toks:
            return
        # 1. lambdas: find them, parse bodies, mask their tokens out.
        masked = list(toks)
        k = 0
        while k < len(masked):
            t = masked[k]
            if t is not None and t.text == "[" and self.looks_like_lambda(
                    masked, k):
                lam, consumed = self.extract_lambda(masked, k, stmt, scope)
                if lam is not None:
                    stmt.lambdas.append(lam)
                    for m in range(k, min(consumed, len(masked))):
                        masked[m] = None
                    k = consumed
                    continue
            k += 1
        # 2. calls on the remaining tokens.
        flat = [t for t in masked if t is not None]
        i = 0
        while i < len(flat) - 1:
            t, nxt = flat[i], flat[i + 1]
            if t.kind == "id" and nxt.text == "(" and t.text not in (
                    KEYWORDS - {"operator"}):
                recv, qual = self.receiver(flat, i)
                args, after = self.call_args(flat, i + 1)
                stmt.calls.append(Call(t.text, recv, args, t.line,
                                       qualifier=qual))
                i += 2
                continue
            i += 1

    def looks_like_lambda(self, toks, k: int) -> bool:
        prev = None
        for p in range(k - 1, -1, -1):
            if toks[p] is not None:
                prev = toks[p]
                break
        if prev is not None and (prev.kind in ("id", "num") or
                                 prev.text in (")", "]")):
            return False  # subscript
        # capture list must look like captures; body '{' or params '('
        depth = 0
        j = k
        while j < len(toks):
            t = toks[j]
            if t is None:
                return False
            if t.text == "[":
                depth += 1
            elif t.text == "]":
                depth -= 1
                if depth == 0:
                    break
            elif t.text not in (",", "&", "=", "*") and t.kind == "punct":
                return False
            j += 1
        nxt = toks[j + 1] if j + 1 < len(toks) else None
        return nxt is not None and nxt.text in ("(", "{") or \
            (nxt is not None and nxt.text == "mutable")

    def extract_lambda(self, toks, k: int, stmt: Stmt, scope: Scope):
        # capture list
        j = k + 1
        captures = []
        while j < len(toks) and toks[j].text != "]":
            captures.append(toks[j].text)
            j += 1
        j += 1  # past ']'
        ret_hint = ""
        # optional params
        if j < len(toks) and toks[j].text == "(":
            depth = 0
            while j < len(toks):
                if toks[j].text == "(":
                    depth += 1
                elif toks[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                j += 1
        while j < len(toks) and toks[j].text in ("mutable", "noexcept",
                                                 "->", "constexpr") or \
                (j < len(toks) and toks[j].kind == "id" and
                 toks[j].text not in KEYWORDS and j + 1 < len(toks) and
                 toks[j + 1].text in ("{",)):
            if toks[j].text == "->":
                j += 1
                ret_toks = []
                while j < len(toks) and toks[j].text != "{":
                    ret_toks.append(toks[j])
                    j += 1
                ret_hint = self.type_spelling(ret_toks)
                break
            if toks[j].text in ("mutable", "noexcept", "constexpr"):
                j += 1
            else:
                break
        if j >= len(toks) or toks[j].text != "{":
            return None, k + 1
        # body: need absolute indices — find this brace in self.toks
        body_open = None
        for idx in range(len(self.toks)):
            if self.toks[idx] is toks[j]:
                body_open = idx
                break
        if body_open is None:
            return None, k + 1
        body_close = self.pairs.get(body_open)
        if body_close is None:
            return None, k + 1
        lam_scope = self.new_scope(scope, "lambda")
        body = self.parse_block(body_open + 1, body_close, lam_scope)
        # usage: what follows the body's '}' in `toks`?
        after_i = j
        depth = 0
        while after_i < len(toks):
            if toks[after_i].text == "{":
                depth += 1
            elif toks[after_i].text == "}":
                depth -= 1
                if depth == 0:
                    break
            after_i += 1
        nxt = toks[after_i + 1] if after_i + 1 < len(toks) else None
        if nxt is not None and nxt.text == "(":
            usage = "invoked"
        elif stmt.kind == "return":
            usage = "stored"
        else:
            # '=' before '[' at top level => stored
            eq = any(t is not None and t.text == "=" for t in toks[:k])
            usage = "stored" if eq or stmt.kind == "decl" else "arg"
        lam = Lambda(captures, body, toks[k].line, usage, ret_hint)
        return lam, after_i + 1

    def receiver(self, flat, i: int):
        """Receiver chain and qualifier for the call at flat[i]."""
        recv_parts = []
        qual = ""
        j = i - 1
        # qualified call:  ns :: fn (
        if j >= 0 and flat[j].text == "::":
            parts = []
            while j >= 1 and flat[j].text == "::" and flat[j - 1].kind == "id":
                parts.append(flat[j - 1].text)
                j -= 2
            qual = "::".join(reversed(parts))
            return "", qual
        while j >= 1 and flat[j].text in (".", "->"):
            prev = flat[j - 1]
            if prev.kind == "id":
                recv_parts.append(prev.text)
                j -= 2
            elif prev.text == ")":
                # chained call result:  Fn(...)->Method()
                recv_parts.append("()")
                break
            elif prev.text == "]":
                recv_parts.append("[]")
                break
            else:
                break
        return ".".join(reversed(recv_parts)), qual

    def call_args(self, flat, open_i: int):
        depth = 0
        j = open_i
        inner = []
        while j < len(flat):
            if flat[j].text == "(":
                depth += 1
                if depth == 1:
                    j += 1
                    continue
            elif flat[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1:
                inner.append(flat[j])
            j += 1
        return self.split_commas(inner), j


def parse_file(path: str, text: str) -> TranslationUnit:
    return Parser(path, text).parse()


def build_model(files) -> Model:
    """files: iterable of (path, text)."""
    model = Model()
    for path, text in files:
        model.add_unit(parse_file(path, text))
    return model
