#!/usr/bin/env python3
"""Extract the machine-readable lock hierarchy from DESIGN.md §10.

DESIGN.md owns the hierarchy (humans read it there); the LOCK-ORDER
checker consumes the extracted `tools/analyzer/lock_hierarchy.txt`.
This script keeps the two in sync:

    gen_lock_hierarchy.py            # regenerate lock_hierarchy.txt
    gen_lock_hierarchy.py --check    # exit 1 if the file has drifted

The fenced block in DESIGN.md is tagged ```lock-hierarchy.
"""

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
DESIGN = os.path.join(REPO, "DESIGN.md")
OUT = os.path.join(REPO, "tools", "analyzer", "lock_hierarchy.txt")

HEADER = ("# GENERATED from the ```lock-hierarchy block in DESIGN.md §10\n"
          "# by tools/analyzer/gen_lock_hierarchy.py — edit DESIGN.md, "
          "then regenerate.\n")


def extract(design_path: str) -> str:
    with open(design_path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    block = []
    in_block = False
    found = False
    for line in lines:
        if line.strip() == "```lock-hierarchy":
            in_block = True
            found = True
            continue
        if in_block and line.strip() == "```":
            break
        if in_block:
            block.append(line)
    if not found:
        sys.exit("gen_lock_hierarchy.py: no ```lock-hierarchy block "
                 f"in {design_path}")
    return HEADER + "\n".join(block) + "\n"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--design", default=DESIGN)
    ap.add_argument("--out", default=OUT)
    ap.add_argument("--check", action="store_true",
                    help="verify the output file matches DESIGN.md")
    args = ap.parse_args()

    want = extract(args.design)
    if args.check:
        try:
            with open(args.out, "r", encoding="utf-8") as f:
                have = f.read()
        except OSError:
            have = ""
        if have != want:
            print(f"{args.out} is out of date with DESIGN.md §10 — run "
                  "tools/analyzer/gen_lock_hierarchy.py", file=sys.stderr)
            return 1
        print("lock_hierarchy.txt is in sync with DESIGN.md")
        return 0
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(want)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
