#!/usr/bin/env bash
# Run the pictdb semantic analyzer (DESIGN.md §15).
#
#   tools/analyzer/run.sh                 # src/ gate, native frontend
#   tools/analyzer/run.sh --corpus        # seeded-bug corpus self-test
#   tools/analyzer/run.sh --frontend=auto # use clang AST dump if present
#   tools/analyzer/run.sh src/wal         # restrict to a subtree
#
# Exit status: 0 clean, 1 findings (or corpus failure), 2 setup error.
set -u

repo="$(cd "$(dirname "$0")/../.." && pwd)"
hierarchy="$repo/tools/analyzer/lock_hierarchy.txt"
frontend="native"
corpus=0
paths=()

for arg in "$@"; do
  case "$arg" in
    --corpus) corpus=1 ;;
    --frontend=*) frontend="${arg#--frontend=}" ;;
    --help|-h) sed -n '2,10p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) paths+=("$arg") ;;
  esac
done

if ! python3 "$repo/tools/analyzer/gen_lock_hierarchy.py" --check >/dev/null; then
  echo "run.sh: lock_hierarchy.txt is stale — run tools/analyzer/gen_lock_hierarchy.py" >&2
  exit 2
fi

if [ "$corpus" -eq 1 ]; then
  exec python3 "$repo/tests/analyzer_corpus/run_corpus.py" --frontend "$frontend"
fi

[ "${#paths[@]}" -eq 0 ] && paths=("$repo/src")
exec python3 "$repo/tools/analyzer/analyze.py" "${paths[@]}" \
  --hierarchy "$hierarchy" --frontend "$frontend" \
  --relative-to "$repo" --verbose
