// Quickstart: build a packed R-tree over a small map of points, run the
// paper's two kinds of direct spatial search (window and point queries),
// and compare against a tree grown with dynamic INSERTs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "pack/pack.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

using namespace pictdb;  // examples favour brevity

int main() {
  // 1. Storage: pages in memory, behind an LRU buffer pool.
  storage::InMemoryDiskManager disk(/*page_size=*/512);
  storage::BufferPool pool(&disk, /*capacity=*/4096);

  // 2. Data: 500 uniform points in the paper's [0,1000]² frame.
  Random rng(42);
  const auto frame = workload::PaperFrame();
  const auto points = workload::UniformPoints(&rng, 500, frame);

  // 3. A packed R-tree (branching factor 8 here).
  rtree::RTreeOptions options;
  options.max_entries = 8;
  auto packed = rtree::RTree::Create(&pool, options);
  PICTDB_CHECK(packed.ok());
  std::vector<storage::Rid> rids;
  for (size_t i = 0; i < points.size(); ++i) {
    rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
  }
  PICTDB_CHECK_OK(pack::PackNearestNeighbor(
      &*packed, pack::MakeLeafEntries(points, rids)));

  // 4. The same data inserted dynamically (Guttman's INSERT).
  auto dynamic = rtree::RTree::Create(&pool, options);
  PICTDB_CHECK(dynamic.ok());
  for (size_t i = 0; i < points.size(); ++i) {
    PICTDB_CHECK_OK(
        dynamic->Insert(geom::Rect::FromPoint(points[i]), rids[i]));
  }

  // 5. Direct spatial search: "find everything in this window".
  const geom::Rect window = geom::Rect::FromCenterHalfExtent(500, 100,
                                                             500, 100);
  rtree::SearchStats packed_stats, dynamic_stats;
  auto packed_hits = packed->SearchContainedIn(window, &packed_stats);
  auto dynamic_hits = dynamic->SearchContainedIn(window, &dynamic_stats);
  PICTDB_CHECK(packed_hits.ok() && dynamic_hits.ok());
  PICTDB_CHECK(packed_hits->size() == dynamic_hits->size());

  std::printf("window %s -> %zu objects\n",
              geom::ToString(window).c_str(), packed_hits->size());
  std::printf("  packed tree visited %llu nodes, dynamic tree %llu\n",
              static_cast<unsigned long long>(packed_stats.nodes_visited),
              static_cast<unsigned long long>(dynamic_stats.nodes_visited));

  // 6. Tree quality, the paper's C/O/D/N metrics.
  auto pq = rtree::MeasureTree(*packed);
  auto dq = rtree::MeasureTree(*dynamic);
  PICTDB_CHECK(pq.ok() && dq.ok());
  std::printf("packed : %s\n", rtree::ToString(*pq).c_str());
  std::printf("dynamic: %s\n", rtree::ToString(*dq).c_str());
  return 0;
}
