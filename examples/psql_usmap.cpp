// PSQL on the paper's US-map database: every example query from §2 of the
// paper, run end-to-end — direct spatial search, indirect search,
// juxtaposition of two pictures, and a nested mapping — with both the
// alphanumeric output (the "standard terminal") and the pictorial output
// (rendered on an ASCII "graphics monitor").
//
//   ./build/examples/psql_usmap

#include <cstdio>

#include "psql/executor.h"
#include "rel/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "viz/ascii_canvas.h"
#include "workload/us_catalog.h"
#include "workload/us_cities.h"

using namespace pictdb;

namespace {

void RunAndShow(psql::Executor* exec, const char* title, const char* query,
                bool draw_picture = false) {
  std::printf("=== %s ===\n%s\n\n", title, query);
  auto result = exec->Query(query);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->ToString().c_str());
  std::printf("[plan: spatial-index=%s btree-index=%s spatial-join=%s "
              "rtree-nodes=%llu]\n\n",
              result->stats.used_spatial_index ? "yes" : "no",
              result->stats.used_btree_index ? "yes" : "no",
              result->stats.used_spatial_join ? "yes" : "no",
              static_cast<unsigned long long>(
                  result->stats.rtree_nodes_visited));

  if (draw_picture && !result->pictorial.empty()) {
    viz::AsciiCanvas canvas(workload::ContinentalUsFrame(), 76, 22);
    for (const auto& g : result->pictorial) {
      switch (g.type()) {
        case geom::GeometryType::kPoint:
          canvas.DrawPoint(g.point(), '*');
          break;
        case geom::GeometryType::kSegment:
          canvas.DrawSegment(g.segment(), '.');
          break;
        case geom::GeometryType::kRect:
          canvas.DrawRect(g.rect());
          break;
        case geom::GeometryType::kRegion:
          canvas.DrawRect(g.region().Mbr());
          break;
      }
    }
    std::printf("pictorial output:\n%s\n", canvas.Render().c_str());
  }
}

}  // namespace

int main() {
  storage::InMemoryDiskManager disk(1024);
  storage::BufferPool pool(&disk, 1 << 14);
  rel::Catalog catalog(&pool);
  PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog));
  psql::Executor exec(&catalog);

  // Figure 2.1: direct spatial search with an alphanumeric filter. The
  // paper's window {4±4, 11±9} lives in its own map coordinates; ours is
  // lon/lat, so the "Eastern US" window is around (-77, 39).
  RunAndShow(&exec, "Eastern cities with population > 450,000",
             "select city,state,population,loc from cities on us-map "
             "at loc covered-by {-77 +- 8, 39 +- 4} "
             "where population > 450000",
             /*draw_picture=*/true);

  // Figure 2.2: juxtaposition ("geographic join") of two pictures.
  RunAndShow(&exec, "Juxtaposition: cities with their time zones",
             "select city,zone from cities,time-zones "
             "on us-map,time-zone-map "
             "at cities.loc covered-by time-zones.loc");

  // §2.2 nested mapping: lakes covered by north-eastern states.
  RunAndShow(&exec, "Nested mapping: lakes within north-eastern states",
             "select lake, area, lakes.loc from lakes on lake-map "
             "at lakes.loc covered-by "
             "select states.loc from states on state-map "
             "at states.loc overlapping {-75 +- 7, 43 +- 4}",
             /*draw_picture=*/true);

  // Indirect search: pure alphanumeric qualification via the B+-tree.
  RunAndShow(&exec, "Indirect search: the million-plus cities",
             "select city, population from cities "
             "where population > 1000000");

  // Pictorial functions.
  RunAndShow(&exec, "Functions: Great Lakes by bounding-box area",
             "select lake, area(loc), north(loc) from lakes "
             "where area(loc) > 10");

  // Segments: highways crossing a window around the Rockies.
  RunAndShow(&exec, "Highways overlapping the mountain west",
             "select hwy-name, hwy-section, loc from highways on us-map "
             "at loc overlapping {-110 +- 8, 42 +- 6}",
             /*draw_picture=*/true);
  return 0;
}
