// Cartographic-database scenario: a large, static map — exactly the
// workload the paper designed PACK for. Builds a 50,000-object map with
// every bulk loader plus dynamic INSERT, compares tree quality, search
// cost, build cost and buffer-pool behaviour under a constrained pool,
// and dumps the packed tree's level-1 MBRs to an SVG (Fig 3.8c style).
//
//   ./build/examples/cartography [objects]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "pack/hilbert.h"
#include "pack/pack.h"
#include "pack/str.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "viz/svg.h"
#include "workload/generators.h"
#include "workload/queries.h"

using namespace pictdb;

namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct BuildOutcome {
  rtree::TreeQuality quality;
  double build_seconds = 0.0;
  double window_nodes = 0.0;     // avg nodes visited, 0.1% windows
  uint64_t cold_misses = 0;      // buffer misses with a small pool
};

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  Random rng(2026);
  const auto frame = workload::PaperFrame();

  // A map mixes clustered settlements with scattered landmarks.
  auto pts = workload::ClusteredPoints(&rng, n * 7 / 10, 12, 40.0, frame);
  const auto scattered = workload::UniformPoints(&rng, n - pts.size(), frame);
  pts.insert(pts.end(), scattered.begin(), scattered.end());

  std::vector<storage::Rid> rids;
  rids.reserve(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
  }
  const auto windows = workload::RandomWindowQueries(&rng, 300, 0.001, frame);

  std::printf("cartographic map: %zu objects, page 4096, branching %zu\n\n",
              pts.size(), rtree::NodePageCapacity(4096));
  std::printf("%-10s %10s %12s %6s %7s %9s %10s %11s\n", "builder",
              "coverage", "overlap", "depth", "nodes", "build(s)",
              "win-nodes", "cold-misses");

  const char* names[] = {"insert", "pack-nn", "lowx", "str", "hilbert",
                         "ins-r*"};
  for (int mode = 0; mode < 6; ++mode) {
    storage::InMemoryDiskManager disk(4096);
    storage::BufferPool pool(&disk, 1 << 16);
    rtree::RTreeOptions tree_options;
    if (mode == 5) {
      // R*-flavoured dynamic baseline: margin-based split plus forced
      // reinsertion.
      tree_options.split = rtree::SplitAlgorithm::kRStar;
      tree_options.forced_reinsert = true;
    }
    auto tree = rtree::RTree::Create(&pool, tree_options);
    PICTDB_CHECK(tree.ok());

    const auto start = std::chrono::steady_clock::now();
    auto items = pack::MakeLeafEntries(pts, rids);
    switch (mode) {
      case 0:
      case 5:
        for (size_t i = 0; i < pts.size(); ++i) {
          PICTDB_CHECK_OK(
              tree->Insert(geom::Rect::FromPoint(pts[i]), rids[i]));
        }
        break;
      case 1:
        PICTDB_CHECK_OK(pack::PackNearestNeighbor(&*tree, std::move(items)));
        break;
      case 2:
        PICTDB_CHECK_OK(pack::PackSortChunk(&*tree, std::move(items)));
        break;
      case 3:
        PICTDB_CHECK_OK(pack::PackStr(&*tree, std::move(items)));
        break;
      case 4:
        PICTDB_CHECK_OK(pack::PackHilbert(&*tree, std::move(items)));
        break;
    }
    const auto built = std::chrono::steady_clock::now();

    BuildOutcome out;
    out.build_seconds = Seconds(start, built);
    auto quality = rtree::MeasureTree(*tree);
    PICTDB_CHECK(quality.ok());
    out.quality = *quality;

    uint64_t visits = 0;
    for (const auto& w : windows) {
      rtree::SearchStats stats;
      PICTDB_CHECK_OK(tree->SearchIntersects(w, &stats).status());
      visits += stats.nodes_visited;
    }
    out.window_nodes = static_cast<double>(visits) / windows.size();

    // Same window workload through a pool of only 16 frames: how hard
    // does each layout hit the "disk"? Flush first so the second pool
    // sees the tree's pages.
    PICTDB_CHECK_OK(pool.FlushAll());
    {
      storage::BufferPool small_pool(&disk, 16);
      auto cold = rtree::RTree::Open(&small_pool, tree->meta_page());
      PICTDB_CHECK(cold.ok());
      for (const auto& w : windows) {
        PICTDB_CHECK_OK(cold->SearchIntersects(w).status());
      }
      out.cold_misses = small_pool.stats().misses;
    }

    std::printf("%-10s %10.0f %12.1f %6u %7llu %9.3f %10.2f %11llu\n",
                names[mode], out.quality.coverage, out.quality.overlap,
                out.quality.depth,
                static_cast<unsigned long long>(out.quality.nodes),
                out.build_seconds, out.window_nodes,
                static_cast<unsigned long long>(out.cold_misses));

    if (mode == 1) {
      // Figure 3.8(c)-style picture: leaf-parent MBRs of the packed tree.
      viz::SvgWriter svg(frame, 900);
      for (size_t i = 0; i < pts.size(); i += 23) {
        svg.AddPoint(pts[i], "gray", 1.0);
      }
      auto level1 = tree->CollectNodeMbrsAtLevel(1);
      PICTDB_CHECK(level1.ok());
      for (const auto& r : *level1) svg.AddRect(r, "crimson", 1.2);
      PICTDB_CHECK_OK(svg.WriteFigure("cartography_packed_level1.svg"));
      std::printf(
          "  (packed level-1 MBRs -> %s)\n",
          pictdb::viz::FigurePath("cartography_packed_level1.svg").c_str());
    }
  }
  std::printf(
      "\nStatic maps pay the packing cost once and get the smallest tree;\n"
      "dynamic INSERT remains available for the occasional update (§3.4).\n");
  return 0;
}
