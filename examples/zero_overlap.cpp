// Constructive demonstration of the paper's Theorem 3.2: for any finite
// point set there is a rotation of the frame of reference under which an
// x-sorted chunking yields pairwise-disjoint leaf MBRs (zero overlap) —
// and of objection (1): queries must then be rotated too.
//
//   ./build/examples/zero_overlap

#include <cstdio>

#include "common/random.h"
#include "geom/measure.h"
#include "pack/pack.h"
#include "pack/rotation.h"
#include "rtree/metrics.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

using namespace pictdb;

int main() {
  Random rng(1985);

  // A lattice: the worst case for unrotated x-chunking, because whole
  // columns of points share each x-coordinate. 15 rows per column do not
  // divide into groups of 4, so unrotated chunks straddle columns and
  // produce tall overlapping strips.
  std::vector<geom::Point> pts;
  for (int x = 0; x < 15; ++x) {
    for (int y = 0; y < 15; ++y) {
      pts.push_back(geom::Point{x * 60.0, y * 60.0});
    }
  }

  auto describe = [](const char* label, const std::vector<geom::Rect>& mbrs) {
    size_t touching_pairs = 0;
    for (size_t i = 0; i < mbrs.size(); ++i) {
      for (size_t j = i + 1; j < mbrs.size(); ++j) {
        if (mbrs[i].Intersects(mbrs[j])) ++touching_pairs;
      }
    }
    std::printf("%-22s leaves=%3zu coverage=%9.1f overlap-area=%6.1f "
                "intersecting-pairs=%zu\n",
                label, mbrs.size(), geom::TotalArea(mbrs),
                geom::AreaCoveredAtLeast(mbrs, 2), touching_pairs);
  };

  // Unrotated baseline: sort-chunk the raw points. Whole columns share
  // each x, so chunks straddle columns into tall strips that touch their
  // neighbours.
  {
    auto items = pack::MakeLeafEntries(
        pts, std::vector<storage::Rid>(pts.size(), storage::Rid{0, 0}));
    const auto groups = pack::GroupSortChunk(items, 4,
                                             pack::SortCriterion::kAscendingX);
    std::vector<geom::Rect> mbrs;
    for (const auto& g : groups) {
      geom::Rect r;
      for (const auto& e : g) r.ExpandToInclude(e.mbr);
      mbrs.push_back(r);
    }
    describe("unrotated x-chunking:", mbrs);
  }

  // Theorem 3.2: find the rotation (Lemma 3.1) and chunk. The leaf MBRs
  // become pairwise disjoint — they do not even touch.
  auto packing = pack::ComputeRotationPacking(pts, 4);
  PICTDB_CHECK(packing.ok());
  std::printf("(rotation angle: %.6f rad)\n", packing->angle);
  describe("rotated chunking:", packing->leaf_mbrs);
  for (size_t i = 0; i < packing->leaf_mbrs.size(); ++i) {
    for (size_t j = i + 1; j < packing->leaf_mbrs.size(); ++j) {
      PICTDB_CHECK(!packing->leaf_mbrs[i].Intersects(packing->leaf_mbrs[j]));
    }
  }

  // Build a real R-tree in the rotated frame and query through the
  // transform (objection (1) from §3.2 made concrete).
  storage::InMemoryDiskManager disk(512);
  storage::BufferPool pool(&disk, 4096);
  rtree::RTreeOptions opts;
  opts.max_entries = 4;
  auto tree = rtree::RTree::Create(&pool, opts);
  PICTDB_CHECK(tree.ok());

  std::vector<storage::Rid> rids;
  for (size_t i = 0; i < pts.size(); ++i) {
    rids.push_back(storage::Rid{static_cast<storage::PageId>(i), 0});
  }
  geom::Transform transform;
  PICTDB_CHECK_OK(pack::PackWithRotation(&*tree, pts, rids, &transform));

  auto quality = rtree::MeasureTree(*tree);
  PICTDB_CHECK(quality.ok());
  std::printf("R-tree in rotated frame: %s (overlap is exactly 0)\n",
              rtree::ToString(*quality).c_str());

  // A query arrives in ORIGINAL coordinates and must be transformed.
  const geom::Point original_query{300, 300};
  const geom::Point rotated_query = transform.Apply(original_query);
  auto hits = tree->SearchPoint(rotated_query);
  PICTDB_CHECK(hits.ok());
  std::printf(
      "query (%.0f, %.0f) -> rotated (%.2f, %.2f) -> %zu hit(s)\n",
      original_query.x, original_query.y, rotated_query.x, rotated_query.y,
      hits->size());

  // Un-transformed queries silently miss: the cost of the rotation trick.
  auto wrong = tree->SearchPoint(original_query);
  PICTDB_CHECK(wrong.ok());
  std::printf("same query without the transform -> %zu hit(s) "
              "(objection (1): the whole database frame is rotated)\n",
              wrong->size());
  return 0;
}
