// Interactive PSQL shell over a persistent pictorial database file.
//
//   ./build/examples/psql_shell [dbfile]
//
// On first run the US-map example database is built, packed and saved to
// `dbfile` (default: usmap.pictdb). Later runs reopen it. Meta commands:
//   \relations      list relations
//   \pictures       list pictures
//   \explain <q>    show the access plan without executing
//   \quit           exit (also Ctrl-D)
// Anything else is executed as a PSQL mapping, e.g.:
//   select city, population, loc from cities on us-map
//     at loc covered-by {-74 +- 6, 41 +- 4} where population > 400000

#include <cstdio>
#include <iostream>
#include <string>

#include "psql/executor.h"
#include "rel/catalog.h"
#include "rel/catalog_io.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/us_catalog.h"

using namespace pictdb;

namespace {

// The catalog root page id is stored at a fixed offset of page 0, which
// is reserved before anything else is allocated.
constexpr storage::PageId kBootPage = 0;

storage::PageId ReadBootRoot(storage::BufferPool* pool) {
  auto page = pool->FetchPage(kBootPage);
  PICTDB_CHECK(page.ok());
  storage::PageId root;
  std::memcpy(&root, page->data(), sizeof(root));
  return root;
}

void WriteBootRoot(storage::BufferPool* pool, storage::PageId root) {
  auto page = pool->FetchPage(kBootPage);
  PICTDB_CHECK(page.ok());
  std::memcpy(page->mutable_data(), &root, sizeof(root));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "usmap.pictdb";

  auto dm = storage::FileDiskManager::Open(path, 1024, /*truncate=*/false);
  PICTDB_CHECK(dm.ok()) << dm.status().ToString();
  const bool fresh = (*dm)->page_count() == 0;
  storage::BufferPool pool(dm->get(), 1 << 14);
  rel::Catalog catalog(&pool);

  if (fresh) {
    std::printf("initializing %s with the US-map example database...\n",
                path.c_str());
    const storage::PageId boot = pool.disk()->AllocatePage();
    PICTDB_CHECK(boot == kBootPage);
    PICTDB_CHECK_OK(workload::BuildUsCatalog(&catalog));
    auto root = rel::SaveCatalog(catalog, &pool);
    PICTDB_CHECK(root.ok()) << root.status().ToString();
    WriteBootRoot(&pool, *root);
    PICTDB_CHECK_OK(pool.FlushAll());
  } else {
    const storage::PageId root = ReadBootRoot(&pool);
    PICTDB_CHECK_OK(rel::LoadCatalog(&pool, root, &catalog));
    std::printf("reopened %s\n", path.c_str());
  }

  psql::Executor exec(&catalog);
  std::printf("PSQL shell — \\relations \\pictures \\explain <q> \\quit\n");
  std::string line;
  for (;;) {
    std::printf("psql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\relations") {
      for (const std::string& name : catalog.RelationNames()) {
        auto rel = catalog.GetRelation(name);
        PICTDB_CHECK(rel.ok());
        std::printf("  %s  (%llu rows)\n",
                    (*rel)->schema().ToString(name).c_str(),
                    static_cast<unsigned long long>(*(*rel)->Count()));
      }
      continue;
    }
    if (line == "\\pictures") {
      for (const rel::Picture* pic : catalog.Pictures()) {
        std::printf("  %s  frame=%s\n", pic->name.c_str(),
                    geom::ToString(pic->frame).c_str());
        for (const auto& [relation, column] : pic->associations) {
          std::printf("    shows %s.%s\n", relation.c_str(),
                      column.c_str());
        }
      }
      continue;
    }
    if (line.rfind("\\explain ", 0) == 0) {
      auto plan = exec.ExplainQuery(line.substr(9));
      if (plan.ok()) {
        std::printf("%s", plan->c_str());
      } else {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      }
      continue;
    }
    auto result = exec.Run(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", result->ToString().c_str());
  }
  PICTDB_CHECK_OK(pool.FlushAll());
  std::printf("\nbye\n");
  return 0;
}
